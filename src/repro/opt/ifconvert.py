"""If-conversion: turn small branch diamonds into straight-line selects.

Pattern (as produced by ``if (a[i] > m) m = a[i];``)::

    B:    ... ; c = cmp ... ; branch c, T, J     (or branch c, J, T)
    T:    <pure side-free instrs> ; r = mov v ; jump J
    J:    (preds exactly {B, T})

becomes::

    B:    ... ; c = cmp ... ; <T's instrs> ; r = select c, v, r ; jump J

and a peephole then rewrites ``r = select (x > y), x, y`` into
``r = max x, y`` (resp. ``min``), which is what the vectorizer and the
branch-averse targets want.

Speculation safety: only pure, non-trapping instructions may be
hoisted.  Loads are hoisted only when an address with the *same
expression structure* was already loaded (with the same type) in ``B``
— re-reading a location that was just read cannot introduce a new
trap.  Structural equality is decided by hashing single-definition
expression chains down to multi-def "leaf" registers, and requires
that no leaf is redefined in either block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as ins
from repro.ir.cfg import predecessors
from repro.ir.function import BasicBlock, Function
from repro.ir.values import Const, Value, VReg
from repro.opt.pass_manager import PassResult

#: Maximum number of instructions worth speculating.
MAX_HOISTED = 8

_SAFE_OPS = {"add", "sub", "mul", "and", "or", "xor", "shl", "shr",
             "min", "max"}


class _ExprKeys:
    """Structural hashing of single-def expression chains."""

    def __init__(self, func: Function):
        counts: Dict[VReg, int] = {p: 2 for p in func.params}
        def_instr: Dict[int, ins.Instr] = {}
        for instr in func.instructions():
            for reg in instr.defs():
                counts[reg] = counts.get(reg, 0) + 1
                def_instr[reg.id] = instr
        self._single = {reg.id for reg, c in counts.items() if c == 1}
        self._def_instr = def_instr
        self._memo: Dict[int, Tuple] = {}

    def key(self, value: Value) -> Tuple:
        if isinstance(value, Const):
            return ("c", value.value, str(value.ty))
        assert isinstance(value, VReg)
        if value.id in self._memo:
            return self._memo[value.id]
        self._memo[value.id] = ("leaf", value.id)     # cycle guard
        result = self._compute(value)
        self._memo[value.id] = result
        return result

    def _compute(self, reg: VReg) -> Tuple:
        if reg.id not in self._single:
            return ("leaf", reg.id)
        instr = self._def_instr.get(reg.id)
        if isinstance(instr, ins.BinOp):
            a, b = self.key(instr.a), self.key(instr.b)
            if instr.op in ("add", "mul", "and", "or", "xor", "min",
                            "max") and b < a:
                a, b = b, a
            return ("bin", instr.op, str(instr.ty), a, b)
        if isinstance(instr, ins.Cast):
            return ("cast", str(instr.from_ty), str(instr.to_ty),
                    self.key(instr.src))
        if isinstance(instr, ins.Move):
            return self.key(instr.src)
        if isinstance(instr, ins.FrameAddr):
            return ("frame", instr.slot)
        return ("leaf", reg.id)

    def leaves(self, key: Tuple) -> Set[int]:
        found: Set[int] = set()
        stack = [key]
        while stack:
            item = stack.pop()
            if isinstance(item, tuple):
                if item and item[0] == "leaf":
                    found.add(item[1])
                else:
                    stack.extend(item)
        return found


def if_convert(func: Function) -> PassResult:
    result = PassResult()
    changed = True
    while changed:
        changed = False
        preds = predecessors(func)
        keys = _ExprKeys(func)
        for block in func.blocks:
            result.work += len(block.instrs)
            if _try_convert(func, block, preds, keys):
                result.changed = True
                changed = True
                break       # CFG changed; recompute preds and keys
    _select_to_minmax(func, result)
    return result


def _try_convert(func: Function, block: BasicBlock,
                 preds: Dict[str, list], keys: _ExprKeys) -> bool:
    term = block.terminator
    if not isinstance(term, ins.Branch):
        return False
    cond = term.cond
    if not isinstance(cond, VReg):
        return False

    for then_label, join_label, negate in (
            (term.then_target, term.else_target, False),
            (term.else_target, term.then_target, True)):
        if then_label == join_label:
            continue
        then_block = func.block(then_label)
        if _convertible(func, block, then_block, then_label,
                        join_label, preds, keys):
            _do_convert(func, block, then_block, cond, join_label, negate)
            return True
    return False


def _convertible(func: Function, block: BasicBlock, then_block: BasicBlock,
                 then_label: str, join_label: str,
                 preds: Dict[str, list], keys: _ExprKeys) -> bool:
    if preds.get(then_label) != [block.label]:
        return False
    if sorted(preds.get(join_label, [])) != sorted(
            [block.label, then_label]):
        return False
    term = then_block.terminator
    if not isinstance(term, ins.Jump) or term.target != join_label:
        return False
    body = then_block.instrs[:-1]
    if not body or len(body) > MAX_HOISTED:
        return False
    final = body[-1]
    if not isinstance(final, ins.Move):
        return False

    defined_here: Set[int] = set()
    for instr in list(block.instrs) + body:
        for reg in instr.defs():
            defined_here.add(reg.id)

    loaded_in_block = {}
    for instr in block.instrs:
        if isinstance(instr, ins.Load):
            loaded_in_block[(keys.key(instr.addr), str(instr.ty))] = instr

    for instr in body[:-1]:
        if isinstance(instr, (ins.Move, ins.Cast, ins.Cmp, ins.FrameAddr,
                              ins.Select, ins.UnOp)):
            continue
        if isinstance(instr, ins.BinOp) and instr.op in _SAFE_OPS:
            continue
        if isinstance(instr, ins.Load):
            addr_key = (keys.key(instr.addr), str(instr.ty))
            if addr_key not in loaded_in_block:
                return False
            # The address expression must not depend on anything either
            # block redefines, or "same expression" is meaningless.
            if keys.leaves(addr_key[0]) & defined_here:
                return False
            continue
        return False

    # Every def in the body except the final conditional Move must be
    # single-def in the function, so speculation cannot clobber a value
    # another path relies on.
    counts: Dict[VReg, int] = {p: 1 for p in func.params}
    for instr in func.instructions():
        for reg in instr.defs():
            counts[reg] = counts.get(reg, 0) + 1
    for instr in body[:-1]:
        for reg in instr.defs():
            if counts.get(reg, 0) != 1:
                return False
    return True


def _do_convert(func: Function, block: BasicBlock, then_block: BasicBlock,
                cond: VReg, join_label: str, negate: bool) -> None:
    body = then_block.instrs[:-1]
    final = body[-1]
    assert isinstance(final, ins.Move)
    target = final.dst
    value = final.src
    block.instrs.pop()                       # drop the branch
    block.instrs.extend(body[:-1])           # speculate the pure prefix
    if negate:
        select = ins.Select(target, cond, target, value, target.ty)
    else:
        select = ins.Select(target, cond, value, target, target.ty)
    block.instrs.append(select)
    block.instrs.append(ins.Jump(join_label))
    func.blocks.remove(then_block)


def _select_to_minmax(func: Function, result: PassResult) -> None:
    """Rewrite ``select (x pred y), x, y`` patterns into min/max."""
    keys = _ExprKeys(func)
    for block in func.blocks:
        last_cmp: Dict[int, ins.Cmp] = {}
        for index, instr in enumerate(block.instrs):
            result.work += 1
            if isinstance(instr, ins.Cmp):
                last_cmp[instr.dst.id] = instr
            elif instr.defs():
                for reg in instr.defs():
                    last_cmp.pop(reg.id, None)
            if not isinstance(instr, ins.Select):
                continue
            if not isinstance(instr.cond, VReg):
                continue
            cmp = last_cmp.get(instr.cond.id)
            if cmp is None or cmp.pred not in ("lt", "le", "gt", "ge"):
                continue
            if cmp.ty != instr.ty:
                continue
            op = _minmax_op(cmp, instr.a, instr.b, keys)
            if op is not None:
                block.instrs[index] = ins.BinOp(op, instr.dst, instr.a,
                                                instr.b, instr.ty)
                result.changed = True


def _minmax_op(cmp: ins.Cmp, a: Value, b: Value,
               keys: _ExprKeys) -> Optional[str]:
    """select(cmp(x pred y), a, b) as min/max, if it is one."""
    greater = cmp.pred in ("gt", "ge")
    ka, kb = keys.key(a), keys.key(b)
    kx, ky = keys.key(cmp.a), keys.key(cmp.b)
    if kx == ka and ky == kb:
        return "max" if greater else "min"
    if kx == kb and ky == ka:
        return "min" if greater else "max"
    return None
