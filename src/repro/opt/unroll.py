"""Loop unrolling for counted loops.

``for (i = init; i < n; i++) body`` becomes::

    u.head: t = i + (F-1) ; c = t < n ; branch c, u.body, orig.head
    u.body: body ; i++ ; body ; i++ ; ... (F times) ; jump u.head
    orig loop                                  // remainder, unchanged

Replication is semantically exact (no reassociation): each copy clones
the body with fresh temporaries while multi-definition registers (the
induction variable, accumulators) stay shared, and the real increment
runs between copies.  Used standalone as an iterative-compilation knob
— note the paper's Table 1 observation that scalarized vector code can
*beat* plain scalar code because "the scalarization involves some
unrolling of tiny loops": this pass lets the benches separate that
unrolling effect from SIMD proper.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, Value, VReg
from repro.opt.licm import _ensure_preheader
from repro.opt.loops import CountedLoop, find_counted_loops
from repro.opt.pass_manager import PassResult

#: Loops with bodies larger than this are not worth unrolling.
MAX_BODY = 40


def clone_instr(func: Function, instr: ins.Instr,
                reg_map: Dict[int, VReg], shared: Set[VReg]) -> ins.Instr:
    """Clone one instruction, renaming non-shared destination registers."""

    def src_of(value: Value) -> Value:
        if isinstance(value, VReg) and value.id in reg_map:
            return reg_map[value.id]
        return value

    def dst_of(reg: VReg) -> VReg:
        if reg in shared:
            return reg
        fresh = func.new_reg(reg.ty, reg.name)
        reg_map[reg.id] = fresh
        return fresh

    if isinstance(instr, ins.BinOp):
        a, b = src_of(instr.a), src_of(instr.b)
        return ins.BinOp(instr.op, dst_of(instr.dst), a, b, instr.ty)
    if isinstance(instr, ins.UnOp):
        a = src_of(instr.a)
        return ins.UnOp(instr.op, dst_of(instr.dst), a, instr.ty)
    if isinstance(instr, ins.Cmp):
        a, b = src_of(instr.a), src_of(instr.b)
        return ins.Cmp(instr.pred, dst_of(instr.dst), a, b, instr.ty)
    if isinstance(instr, ins.Cast):
        s = src_of(instr.src)
        return ins.Cast(dst_of(instr.dst), s, instr.from_ty, instr.to_ty)
    if isinstance(instr, ins.Move):
        s = src_of(instr.src)
        return ins.Move(dst_of(instr.dst), s)
    if isinstance(instr, ins.Select):
        c, a, b = (src_of(instr.cond), src_of(instr.a), src_of(instr.b))
        return ins.Select(dst_of(instr.dst), c, a, b, instr.ty)
    if isinstance(instr, ins.Load):
        addr = src_of(instr.addr)
        return ins.Load(dst_of(instr.dst), addr, instr.ty)
    if isinstance(instr, ins.Store):
        return ins.Store(src_of(instr.addr), src_of(instr.value), instr.ty)
    if isinstance(instr, ins.FrameAddr):
        return ins.FrameAddr(dst_of(instr.dst), instr.slot)
    if isinstance(instr, ins.Call):
        args = [src_of(a) for a in instr.args]
        dst = dst_of(instr.dst) if instr.dst is not None else None
        return ins.Call(dst, instr.callee, args, instr.ret_ty)
    if isinstance(instr, ins.VLoad):
        return ins.VLoad(dst_of(instr.dst), src_of(instr.addr), instr.vty)
    if isinstance(instr, ins.VStore):
        return ins.VStore(src_of(instr.addr), src_of(instr.value),
                          instr.vty)
    if isinstance(instr, ins.VBinOp):
        a, b = src_of(instr.a), src_of(instr.b)
        return ins.VBinOp(instr.op, dst_of(instr.dst), a, b, instr.vty)
    if isinstance(instr, ins.VSplat):
        s = src_of(instr.scalar)
        return ins.VSplat(dst_of(instr.dst), s, instr.vty)
    if isinstance(instr, ins.VReduce):
        s = src_of(instr.src)
        return ins.VReduce(instr.op, dst_of(instr.dst), s, instr.vty,
                           instr.acc_ty)
    raise ValueError(f"cannot clone {type(instr).__name__}")


def unroll(func: Function, factor: int = 4) -> PassResult:
    """Unroll every eligible counted loop by ``factor``."""
    result = PassResult()
    if factor < 2:
        return result
    processed: Set[str] = set()
    for _ in range(8):
        candidate = next(
            (l for l in find_counted_loops(func)
             if l.header not in processed), None)
        if candidate is None:
            break
        processed.add(candidate.header)
        work = func.block(candidate.work)
        result.work += len(work.instrs)
        if _eligible(candidate, work):
            _unroll_loop(func, candidate, factor)
            result.changed = True
    return result


def _eligible(cl: CountedLoop, work) -> bool:
    return (cl.pred == "lt" and cl.step == 1 and
            len(work.instrs) <= MAX_BODY and
            isinstance(cl.ivar.ty, ty.IntType) and
            not any(isinstance(i, ins.Call) for i in work.instrs))


def _unroll_loop(func: Function, cl: CountedLoop, factor: int) -> None:
    work = func.block(cl.work)
    body_and_incr = work.instrs[:-1]           # strip the jump

    shared = _multi_def_regs(func)
    preheader = _ensure_preheader(func, cl.loop)

    u_head = func.new_block("unroll.head")
    u_body = func.new_block("unroll.body")

    ahead = func.new_reg(cl.ivar.ty)
    cond = func.new_reg(ty.I32)
    u_head.append(ins.BinOp("add", ahead, cl.ivar,
                            Const(factor - 1, cl.ivar.ty), cl.ivar.ty))
    u_head.append(ins.Cmp("lt", cond, ahead, cl.bound, cl.ivar.ty))
    u_head.append(ins.Branch(cond, u_body.label, cl.header))

    for _ in range(factor):
        reg_map: Dict[int, VReg] = {}
        for instr in body_and_incr:
            u_body.append(clone_instr(func, instr, reg_map, shared))
    u_body.append(ins.Jump(u_head.label))

    ins.retarget(preheader.terminator, cl.header, u_head.label)
    for block in (u_head, u_body):
        func.blocks.remove(block)
    at = func.blocks.index(func.block(cl.header))
    func.blocks[at:at] = [u_head, u_body]


def _multi_def_regs(func: Function) -> Set[VReg]:
    counts: Dict[VReg, int] = {p: 1 for p in func.params}
    for instr in func.instructions():
        for reg in instr.defs():
            counts[reg] = counts.get(reg, 0) + 1
    return {reg for reg, c in counts.items() if c > 1}
