"""Affine address analysis for counted loops.

Within a loop body, classifies integer registers as affine expressions
``base + ivar*coeff + offset`` where ``base`` is a loop-invariant
register (typically an incoming pointer) and ``coeff``/``offset`` are
byte constants.  This is what lets the vectorizer see that
``a + (u64)i * 4`` walks an f32 array contiguously.

Wrap-around during address arithmetic is ignored (the analysis treats
indices as mathematical integers); MiniC inherits C's blessing that
object indices stay within the object, and the PVI memory bounds-check
at execution anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.values import Const, Value, VReg


@dataclass(frozen=True)
class Affine:
    """``base + ivar*coeff + offset`` (byte units once scaled)."""
    base: Optional[int]       # id of the invariant base register, or None
    coeff: int
    offset: int

    def __add__(self, other: "Affine") -> Optional["Affine"]:
        if self.base is not None and other.base is not None:
            return None           # two symbolic bases: not affine for us
        base = self.base if self.base is not None else other.base
        return Affine(base, self.coeff + other.coeff,
                      self.offset + other.offset)

    def __sub__(self, other: "Affine") -> Optional["Affine"]:
        if other.base is not None:
            return None
        return Affine(self.base, self.coeff - other.coeff,
                      self.offset - other.offset)

    def scaled(self, k: int) -> Optional["Affine"]:
        if self.base is not None:
            return None           # scaling a pointer: not an address form
        return Affine(None, self.coeff * k, self.offset * k)

    @property
    def is_constant(self) -> bool:
        return self.base is None and self.coeff == 0


class AffineMap:
    """Affine classification of the registers in one loop body."""

    def __init__(self, ivar: VReg, invariant_regs: Iterable[VReg]):
        self.entries: Dict[int, Affine] = {
            ivar.id: Affine(None, 1, 0),
        }
        self._invariants = {r.id for r in invariant_regs}
        for reg_id in self._invariants:
            # An invariant register is its own base.
            self.entries.setdefault(reg_id, Affine(reg_id, 0, 0))

    def of(self, value: Value) -> Optional[Affine]:
        if isinstance(value, Const):
            if ty.is_integer(value.ty):
                return Affine(None, 0, int(value.value))
            return None
        return self.entries.get(value.id)

    def is_invariant(self, value: Value) -> bool:
        if isinstance(value, Const):
            return True
        form = self.entries.get(value.id)
        return form is not None and form.coeff == 0

    def visit(self, instr: ins.Instr) -> None:
        """Extend the map with one body instruction (in program order)."""
        if instr.dst is None:
            return
        form = self._derive(instr)
        if form is not None:
            self.entries[instr.dst.id] = form
        else:
            # A redefinition with unknown shape kills prior knowledge.
            self.entries.pop(instr.dst.id, None)

    def _derive(self, instr: ins.Instr) -> Optional[Affine]:
        if isinstance(instr, ins.Move):
            return self.of(instr.src)
        if isinstance(instr, ins.Cast):
            if ty.is_integer(instr.from_ty) and ty.is_integer(instr.to_ty) \
                    and instr.to_ty.bits >= instr.from_ty.bits:
                return self.of(instr.src)
            return None
        if isinstance(instr, ins.BinOp) and ty.is_integer(instr.ty):
            a = self.of(instr.a)
            b = self.of(instr.b)
            if a is None or b is None:
                return None
            if instr.op == "add":
                return a + b
            if instr.op == "sub":
                return a - b
            if instr.op == "mul":
                if b.is_constant:
                    return a.scaled(b.offset)
                if a.is_constant:
                    return b.scaled(a.offset)
                return None
            if instr.op == "shl" and b.is_constant:
                return a.scaled(1 << b.offset)
        return None


def classify_body(instrs, ivar: VReg, invariant_regs) -> AffineMap:
    """Run the affine analysis over a straight-line body."""
    amap = AffineMap(ivar, invariant_regs)
    for instr in instrs:
        amap.visit(instr)
    return amap
