"""Copy and constant propagation.

Two cooperating levels:

* **global**, for single-definition registers: if ``d = mov s`` is the
  only definition of ``d`` and ``s`` is a constant or a never-redefined
  register, every use of ``d`` becomes ``s``.  Single-def dominance is
  guaranteed by the IR verifier, so this needs no extra analysis.
* **block-local**, for everything else (the home registers of mutable
  variables): within a block, track live copies and rewrite uses,
  invalidating entries when either side is redefined.

Together with DCE this removes the snapshot ``mov``s the lowering pass
inserts for every variable read.
"""

from __future__ import annotations

from typing import Dict

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, Value, VReg
from repro.opt.pass_manager import PassResult


def copyprop(func: Function) -> PassResult:
    result = PassResult()
    result += _global_single_def(func)
    result += _block_local(func)
    return result


def _def_counts(func: Function) -> Dict[VReg, int]:
    counts: Dict[VReg, int] = {p: 1 for p in func.params}
    for instr in func.instructions():
        for reg in instr.defs():
            counts[reg] = counts.get(reg, 0) + 1
    return counts


def _global_single_def(func: Function) -> PassResult:
    result = PassResult()
    counts = _def_counts(func)
    replacement: Dict[VReg, Value] = {}
    for instr in func.instructions():
        result.work += 1
        if isinstance(instr, ins.Move) and counts.get(instr.dst, 0) == 1:
            src = instr.src
            if isinstance(src, Const):
                replacement[instr.dst] = src
            elif isinstance(src, VReg) and counts.get(src, 0) == 1:
                replacement[instr.dst] = src
    if not replacement:
        return result

    # Resolve chains (a -> b -> const) up front.
    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, VReg) and value in replacement:
            if value in seen:       # defensive: cycles cannot happen
                break
            seen.add(value)
            value = replacement[value]
        return value

    for instr in func.instructions():
        for reg in list(instr.uses()):
            if reg in replacement:
                instr.replace_use(reg, resolve(reg))
                result.changed = True
    return result


def _block_local(func: Function) -> PassResult:
    result = PassResult()
    for block in func.blocks:
        copies: Dict[VReg, Value] = {}
        for instr in block.instrs:
            result.work += 1
            # Rewrite uses through the live copy table.
            for reg in list(instr.uses()):
                if reg in copies:
                    instr.replace_use(reg, copies[reg])
                    result.changed = True
            # Any definition invalidates entries involving the reg.
            for reg in instr.defs():
                copies.pop(reg, None)
                stale = [k for k, v in copies.items() if v == reg]
                for k in stale:
                    del copies[k]
            # Record new copies (after invalidation).
            if isinstance(instr, ins.Move):
                src = instr.src
                if isinstance(src, Const) or \
                        (isinstance(src, VReg) and src != instr.dst):
                    copies[instr.dst] = src
    return result
