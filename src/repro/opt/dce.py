"""Dead code elimination.

Deletes pure instructions whose results are never used, iterating to a
fixpoint so chains of dead computations disappear in one pass run.
Instructions with side effects (stores, calls, terminators) are always
kept — calls could be refined with purity analysis, which we leave to
the inliner's caller-side knowledge.
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function
from repro.ir.values import VReg
from repro.opt.pass_manager import PassResult


def dce(func: Function) -> PassResult:
    result = PassResult()
    while True:
        used: Set[VReg] = set()
        for instr in func.instructions():
            result.work += 1
            used.update(instr.uses())

        removed_any = False
        for block in func.blocks:
            kept = []
            for instr in block.instrs:
                dead = (not instr.has_side_effects() and
                        instr.dst is not None and
                        instr.dst not in used)
                if dead:
                    removed_any = True
                    result.changed = True
                else:
                    kept.append(instr)
            block.instrs = kept
        if not removed_any:
            return result
