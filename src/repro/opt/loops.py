"""Counted-loop recognition.

After the cleanup pipeline, MiniC ``for`` loops canonicalize to::

    preheader:  ... ; ivar = mov <init> ; jump header
    header:     c = cmp.<pred> ivar, <bound> ; branch c, work, exit
    work:       <straight-line body>
                t = add ivar, <step> ; ivar = mov t ; jump header

:func:`find_counted_loops` recognizes exactly this shape (plus the
degenerate single-block variant) and returns :class:`CountedLoop`
descriptors consumed by the unroller and the vectorizer.  Anything that
does not match is simply not a candidate — the passes are allowed to
be conservative, never wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.cfg import Loop, natural_loops, predecessors
from repro.ir.function import BasicBlock, Function
from repro.ir.values import Const, Value, VReg


@dataclass
class CountedLoop:
    """A recognized ``for (i = init; i pred bound; i += step)`` loop."""
    loop: Loop
    header: str
    work: str                 # the straight-line body block
    exit: str
    ivar: VReg
    pred: str                 # comparison predicate ('lt', 'gt', ...)
    bound: Value              # Const or loop-invariant VReg
    step: int                 # constant increment (signed)
    init: Optional[Value]     # Const/VReg moved into ivar in the preheader
    preheader: Optional[str]

    @property
    def is_simple_forward(self) -> bool:
        """The vectorizable shape: ``for (i = 0; i < n; i++)``."""
        return (self.pred == "lt" and self.step == 1 and
                isinstance(self.init, Const) and self.init.value == 0 and
                isinstance(self.ivar.ty, ty.IntType))


def _defs_in_blocks(func: Function, labels: Set[str]) -> Dict[VReg, int]:
    counts: Dict[VReg, int] = {}
    for block in func.blocks:
        if block.label not in labels:
            continue
        for instr in block.instrs:
            for reg in instr.defs():
                counts[reg] = counts.get(reg, 0) + 1
    return counts


def find_counted_loops(func: Function) -> List[CountedLoop]:
    result: List[CountedLoop] = []
    blocks = func.block_map()
    preds = predecessors(func)
    for loop in natural_loops(func):
        counted = _match(func, blocks, preds, loop)
        if counted is not None:
            result.append(counted)
    return result


def _match(func: Function, blocks: Dict[str, BasicBlock],
           preds: Dict[str, List[str]], loop: Loop) -> Optional[CountedLoop]:
    if len(loop.body) != 2:
        return None
    header = blocks[loop.header]
    work_label = next(label for label in loop.body if label != loop.header)
    work = blocks[work_label]

    # Header: exactly [cmp, branch], branch on the cmp result.
    if len(header.instrs) != 2:
        return None
    cmp, branch = header.instrs
    if not isinstance(cmp, ins.Cmp) or not isinstance(branch, ins.Branch):
        return None
    if branch.cond != cmp.dst:
        return None
    targets = {branch.then_target, branch.else_target}
    if work_label not in targets:
        return None
    exit_label = (targets - {work_label}).pop() if len(targets) == 2 else None
    if exit_label is None or exit_label in loop.body:
        return None
    if branch.then_target != work_label:
        return None      # inverted loops not canonicalized; skip

    # Work block: straight line, ends [add ivar step; mov ivar; jump hdr].
    if not isinstance(work.terminator, ins.Jump) or \
            work.terminator.target != loop.header:
        return None
    if len(work.instrs) < 3:
        return None
    add, mov = work.instrs[-3], work.instrs[-2]
    if not (isinstance(add, ins.BinOp) and add.op in ("add", "sub") and
            isinstance(mov, ins.Move) and mov.src == add.dst):
        return None
    ivar = mov.dst
    if not isinstance(add.a, VReg) or add.a != ivar or \
            not isinstance(add.b, Const):
        return None
    step = add.b.value if add.op == "add" else -add.b.value

    # The compared register must be the induction variable.
    if cmp.a != ivar:
        return None
    bound = cmp.b
    loop_defs = _defs_in_blocks(func, loop.body)
    if isinstance(bound, VReg) and bound in loop_defs:
        return None      # bound changes inside the loop
    # ivar must be defined exactly once inside the loop (the increment).
    if loop_defs.get(ivar, 0) != 1:
        return None
    # No side exits from the work block (already implied by Jump) and no
    # other branches into the middle of the loop.
    outside_preds_of_work = [p for p in preds[work_label]
                             if p not in loop.body]
    if outside_preds_of_work:
        return None

    init = _find_init(func, blocks, loop, ivar)
    return CountedLoop(
        loop=loop, header=loop.header, work=work_label, exit=exit_label,
        ivar=ivar, pred=cmp.pred, bound=bound, step=step, init=init,
        preheader=loop.preheader,
    )


def _find_init(func: Function, blocks: Dict[str, BasicBlock], loop: Loop,
               ivar: VReg) -> Optional[Value]:
    if loop.preheader is None:
        return None
    preheader = blocks.get(loop.preheader)
    if preheader is None:
        return None
    init: Optional[Value] = None
    for instr in preheader.instrs:
        if isinstance(instr, ins.Move) and instr.dst == ivar:
            init = instr.src
        elif ivar in instr.defs():
            init = None
    return init
