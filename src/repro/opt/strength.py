"""Strength reduction: replace expensive integer ops by cheaper ones.

* ``x * 2**k``  ->  ``x << k``
* ``x / 2**k``  ->  ``x >> k``        (unsigned only)
* ``x % 2**k``  ->  ``x & (2**k-1)``  (unsigned only)

The signed variants need rounding fixups that cost as much as they
save on our cost models, so they are left alone.
"""

from __future__ import annotations

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const
from repro.opt.pass_manager import PassResult


def _power_of_two(value) -> int:
    """Return k if value == 2**k and k > 0, else -1."""
    if isinstance(value, int) and value > 1 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return -1


def strength_reduce(func: Function) -> PassResult:
    result = PassResult()
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            result.work += 1
            if not isinstance(instr, ins.BinOp) or \
                    not ty.is_integer(instr.ty):
                continue
            replacement = _reduce(instr)
            if replacement is not None:
                block.instrs[index] = replacement
                result.changed = True
    return result


def _reduce(instr: ins.BinOp):
    b = instr.b
    if not isinstance(b, Const):
        # Commutative multiply: allow the constant on the left.
        if instr.op == "mul" and isinstance(instr.a, Const):
            k = _power_of_two(instr.a.value)
            if k > 0:
                return ins.BinOp("shl", instr.dst, instr.b,
                                 Const(k, instr.ty), instr.ty)
        return None
    k = _power_of_two(b.value)
    if k <= 0:
        return None
    if instr.op == "mul":
        return ins.BinOp("shl", instr.dst, instr.a, Const(k, instr.ty),
                         instr.ty)
    if not instr.ty.signed:
        if instr.op == "div":
            return ins.BinOp("shr", instr.dst, instr.a, Const(k, instr.ty),
                             instr.ty)
        if instr.op == "rem":
            return ins.BinOp("and", instr.dst, instr.a,
                             Const(b.value - 1, instr.ty), instr.ty)
    return None
