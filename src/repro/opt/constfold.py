"""Constant folding and algebraic simplification.

Folds pure instructions whose operands are all constants, using the
*same* evaluation semantics as the execution engines, so folding can
never change observable behaviour.  Also simplifies a few algebraic
identities (integer only — float identities like ``x + 0.0`` are not
safe under signed zero / NaN) and turns constant branches into jumps.
"""

from __future__ import annotations

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, VReg
from repro.opt.pass_manager import PassResult
from repro.semantics import TrapError, eval_binop, eval_cast, eval_cmp, \
    eval_unop


def constfold(func: Function) -> PassResult:
    result = PassResult()
    for block in func.blocks:
        new_instrs = []
        for instr in block.instrs:
            result.work += 1
            folded = _fold(instr)
            new_instrs.append(folded if folded is not None else instr)
            if folded is not None:
                result.changed = True
        block.instrs = new_instrs
    return result


def _all_const(instr: ins.Instr) -> bool:
    return all(isinstance(s, Const) for s in instr.srcs)


def _fold(instr: ins.Instr):
    """Return a replacement instruction, or None to keep the original."""
    if isinstance(instr, ins.BinOp):
        if _all_const(instr):
            try:
                value = eval_binop(instr.op, instr.ty,
                                   instr.a.value, instr.b.value)
            except TrapError:
                return None       # e.g. division by zero: keep the trap
            return ins.Move(instr.dst, Const(value, instr.ty))
        return _fold_identity(instr)
    if isinstance(instr, ins.UnOp) and _all_const(instr):
        value = eval_unop(instr.op, instr.ty, instr.a.value)
        return ins.Move(instr.dst, Const(value, instr.ty))
    if isinstance(instr, ins.Cmp) and _all_const(instr):
        value = eval_cmp(instr.pred, instr.ty, instr.a.value, instr.b.value)
        return ins.Move(instr.dst, Const(value, ty.I32))
    if isinstance(instr, ins.Cast) and _all_const(instr):
        value = eval_cast(instr.src.value, instr.from_ty, instr.to_ty)
        return ins.Move(instr.dst, Const(value, instr.to_ty))
    if isinstance(instr, ins.Branch) and isinstance(instr.cond, Const):
        target = instr.then_target if instr.cond.value != 0 \
            else instr.else_target
        return ins.Jump(target)
    if isinstance(instr, ins.Branch) and \
            instr.then_target == instr.else_target:
        return ins.Jump(instr.then_target)
    return None


def _is_int_const(value, n: int) -> bool:
    return isinstance(value, Const) and ty.is_integer(value.ty) and \
        value.value == n


def _fold_identity(instr: ins.BinOp):
    """Integer algebraic identities that need only one constant operand."""
    if not ty.is_integer(instr.ty):
        return None
    a, b = instr.a, instr.b
    op = instr.op
    if op == "add":
        if _is_int_const(b, 0):
            return ins.Move(instr.dst, a)
        if _is_int_const(a, 0):
            return ins.Move(instr.dst, b)
    elif op == "sub":
        if _is_int_const(b, 0):
            return ins.Move(instr.dst, a)
        if isinstance(a, VReg) and isinstance(b, VReg) and a == b:
            return ins.Move(instr.dst, Const(0, instr.ty))
    elif op == "mul":
        if _is_int_const(b, 1):
            return ins.Move(instr.dst, a)
        if _is_int_const(a, 1):
            return ins.Move(instr.dst, b)
        if _is_int_const(b, 0) or _is_int_const(a, 0):
            return ins.Move(instr.dst, Const(0, instr.ty))
    elif op == "div":
        if _is_int_const(b, 1):
            return ins.Move(instr.dst, a)
    elif op in ("shl", "shr"):
        if _is_int_const(b, 0):
            return ins.Move(instr.dst, a)
    elif op == "and":
        if _is_int_const(b, 0) or _is_int_const(a, 0):
            return ins.Move(instr.dst, Const(0, instr.ty))
        if isinstance(a, VReg) and a == b:
            return ins.Move(instr.dst, a)
    elif op == "or":
        if _is_int_const(b, 0):
            return ins.Move(instr.dst, a)
        if _is_int_const(a, 0):
            return ins.Move(instr.dst, b)
        if isinstance(a, VReg) and a == b:
            return ins.Move(instr.dst, a)
    elif op == "xor":
        if isinstance(a, VReg) and isinstance(b, VReg) and a == b:
            return ins.Move(instr.dst, Const(0, instr.ty))
        if _is_int_const(b, 0):
            return ins.Move(instr.dst, a)
    return None
