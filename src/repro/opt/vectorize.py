"""The offline auto-vectorizer (split compilation, step one).

Transforms simple counted loops into a 128-bit virtual-vector main loop
plus the original scalar loop as epilogue::

    for (i = 0; i < n; i++) body(i)
        =>
    nvec = n & ~(lanes-1)
    for (i = 0; i < nvec; i += lanes) vbody(i)     // portable vec ops
    for (; i < n; i++) body(i)                     // scalar epilogue

Two loop shapes are supported, covering the paper's Table 1 kernels and
the usual BLAS-1 style code:

* **elementwise**: all stores contiguous, value chains lane-parallel
  (``vecadd``, ``saxpy``, ``dscal``);
* **reduction**: a scalar accumulator combined with ``add``/``min``/
  ``max``, optionally widening (``sum u8/u16``, ``max u8`` after
  if-conversion) — emitted as ``vreduce`` into the accumulator type.

Legality uses the affine model of :mod:`repro.opt.affine`; distinct
pointer bases are *assumed not to alias* (the information a C front end
has and bytecode loses — exactly what the paper proposes carrying as
annotations).  The assumption is recorded in the produced
:class:`VecLoopInfo` and surfaces as a bytecode annotation.

Cost: this analysis is what the paper calls too expensive for a JIT;
it runs here offline for free, or inside the JIT for the "online-only"
flow of experiment F1, where its work counter is charged to the
compile-time budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import BasicBlock, Function
from repro.ir.values import Const, Value, VecType, VReg, vec_of
from repro.opt.affine import AffineMap
from repro.opt.licm import _ensure_preheader
from repro.opt.loops import CountedLoop, find_counted_loops
from repro.opt.pass_manager import PassResult

_CHAIN_OPS = {"add", "sub", "mul", "div", "min", "max"}
_REDUCE_OPS = {"add", "min", "max"}


@dataclass
class VecLoopInfo:
    """What the offline step knows and the online step receives.

    Serialized into a bytecode annotation by the offline driver; the
    x86 JIT maps the vector ops directly, other JITs scalarize, and the
    *absence* of the annotation tells the online-only flow it has to
    redo the whole analysis itself.
    """
    function: str
    vector_header: str          # label of the vector loop header
    scalar_header: str          # label of the epilogue (original) loop
    lanes: int
    elem: str
    kind: str                   # 'elementwise' or 'reduction'
    reduce_op: Optional[str] = None
    acc_type: Optional[str] = None
    noalias_bases: List[str] = field(default_factory=list)


@dataclass
class _AccUpdate:
    acc: VReg
    op: str
    operand: Value              # the per-iteration contribution
    binop: ins.BinOp
    move: Optional[ins.Move]    # None when the binop writes acc directly
    widen_cast: Optional[ins.Cast] = None


class _Reject(Exception):
    """Internal: loop cannot be vectorized (not an error)."""


def vectorize(func: Function, allow_fp_reassoc: bool = True) -> PassResult:
    result = PassResult()
    if not hasattr(func, "vector_loops"):
        func.vector_loops = []
    processed: Set[str] = set()
    for _ in range(8):            # re-discover after each transform
        loops = find_counted_loops(func)
        candidate = next((l for l in loops if l.header not in processed),
                         None)
        if candidate is None:
            break
        processed.add(candidate.header)
        result.work += _loop_size(func, candidate)
        try:
            info = _vectorize_loop(func, candidate, allow_fp_reassoc)
        except _Reject:
            continue
        func.vector_loops.append(info)
        result.changed = True
    return result


def _loop_size(func: Function, loop: CountedLoop) -> int:
    return sum(len(b.instrs) for b in func.blocks
               if b.label in loop.loop.body)


def _vectorize_loop(func: Function, cl: CountedLoop,
                    allow_fp_reassoc: bool) -> VecLoopInfo:
    if not cl.is_simple_forward:
        raise _Reject
    if isinstance(cl.bound, VReg) and not isinstance(cl.bound.ty, ty.IntType):
        raise _Reject

    work = func.block(cl.work)
    body = work.instrs[:-3]
    defs_in_loop = _collect_defs(func, cl)
    invariants = _invariant_operands(body, defs_in_loop)

    amap = AffineMap(cl.ivar, invariants)
    for instr in body:
        amap.visit(instr)

    accs = _find_accumulators(func, cl, body, defs_in_loop)
    acc_binops = {id(a.binop) for a in accs}
    acc_moves = {id(a.move) for a in accs if a.move is not None}
    acc_anchors = {id(a.move if a.move is not None else a.binop): a
                   for a in accs}
    widen_casts = {id(a.widen_cast) for a in accs if a.widen_cast}

    elem_ty, bases = _check_memory(body, amap, defs_in_loop)
    lanes = 16 // ty.sizeof(elem_ty)
    vty = vec_of(elem_ty)

    for acc in accs:
        if ty.is_float(acc.acc.ty) and not allow_fp_reassoc:
            raise _Reject
        if acc.op not in _REDUCE_OPS:
            raise _Reject
        if ty.is_integer(acc.acc.ty) != ty.is_integer(elem_ty):
            raise _Reject

    _check_no_outside_uses(func, cl, body, accs)

    # ---- build the vector clone -------------------------------------------
    splat_requests: Dict[Tuple, Tuple[Value, VecType]] = {}
    invariant_loads: List[ins.Load] = []
    vmap: Dict[int, VReg] = {}
    smap: Dict[int, VReg] = {}
    vec_instrs: List[ins.Instr] = []

    def scalar_operand(value: Value) -> Value:
        if isinstance(value, Const):
            return value
        return smap.get(value.id, value)

    def splat_of(value: Value) -> VReg:
        key = ("c", value.value, str(value.ty)) if isinstance(value, Const) \
            else ("r", value.id)
        if key not in splat_requests:
            reg = func.new_reg(vty, "splat")
            splat_requests[key] = (value, reg)
        return splat_requests[key][1]

    def vec_operand(value: Value) -> VReg:
        if isinstance(value, Const):
            if value.ty != elem_ty:
                raise _Reject
            return splat_of(value)
        if value.id in vmap:
            return vmap[value.id]
        if value.ty == elem_ty and amap.is_invariant(value) and \
                value not in defs_in_loop:
            return splat_of(value)
        raise _Reject

    for instr in body:
        if id(instr) in widen_casts:
            continue
        if (id(instr) in acc_binops or id(instr) in acc_moves) and \
                id(instr) not in acc_anchors:
            continue
        if id(instr) in acc_anchors:
            acc = acc_anchors[id(instr)]
            source = acc.widen_cast.src if acc.widen_cast else acc.operand
            vsrc = vec_operand(source)
            reduced = func.new_reg(acc.acc.ty, "red")
            vec_instrs.append(ins.VReduce(acc.op, reduced, vsrc, vty,
                                          acc.acc.ty))
            combined = func.new_reg(acc.acc.ty)
            vec_instrs.append(ins.BinOp(acc.op, combined, acc.acc, reduced,
                                        acc.acc.ty))
            vec_instrs.append(ins.Move(acc.acc, combined))
            continue
        if isinstance(instr, ins.Load):
            form = amap.of(instr.addr)
            if form is None:
                raise _Reject
            if form.coeff == ty.sizeof(instr.ty) and form.base is not None:
                if instr.ty != elem_ty:
                    raise _Reject
                vdst = func.new_reg(vty)
                vec_instrs.append(ins.VLoad(vdst, scalar_operand(instr.addr),
                                            vty))
                vmap[instr.dst.id] = vdst
                continue
            if form.coeff == 0:
                # Invariant load: hoist to the vector preheader and splat.
                if isinstance(instr.addr, VReg) and \
                        instr.addr.id in smap:
                    raise _Reject      # address built from i: not invariant
                if instr.ty != elem_ty:
                    raise _Reject
                invariant_loads.append(instr)
                vmap[instr.dst.id] = splat_of(instr.dst)
                continue
            raise _Reject
        if isinstance(instr, ins.Store):
            form = amap.of(instr.addr)
            if form is None or form.base is None or \
                    form.coeff != ty.sizeof(instr.ty) or instr.ty != elem_ty:
                raise _Reject
            vec_instrs.append(ins.VStore(scalar_operand(instr.addr),
                                         vec_operand(instr.value), vty))
            continue
        if isinstance(instr, (ins.BinOp, ins.Cast, ins.Move)) and \
                instr.dst is not None and amap.of(instr.dst) is not None:
            # Address arithmetic: clone as scalar with fresh registers.
            clone = _clone_scalar(func, instr, scalar_operand)
            smap[instr.dst.id] = clone.dst
            vec_instrs.append(clone)
            continue
        if isinstance(instr, ins.BinOp) and instr.ty == elem_ty and \
                instr.op in _CHAIN_OPS:
            vdst = func.new_reg(vty)
            vec_instrs.append(ins.VBinOp(instr.op, vdst,
                                         vec_operand(instr.a),
                                         vec_operand(instr.b), vty))
            vmap[instr.dst.id] = vdst
            continue
        if isinstance(instr, ins.Move) and instr.src is not None and \
                instr.dst.ty == elem_ty:
            vmap[instr.dst.id] = vec_operand(instr.src)
            continue
        if isinstance(instr, ins.UnOp) and instr.op == "neg" and \
                instr.ty == elem_ty:
            zero = Const(0.0 if ty.is_float(elem_ty) else 0, elem_ty)
            vdst = func.new_reg(vty)
            vec_instrs.append(ins.VBinOp("sub", vdst, splat_of(zero),
                                         vec_operand(instr.a), vty))
            vmap[instr.dst.id] = vdst
            continue
        raise _Reject

    # ---- assemble the CFG ---------------------------------------------------
    preheader = _ensure_preheader(func, cl.loop)
    vec_pre = func.new_block("vec.pre")
    vec_head = func.new_block("vec.head")
    vec_body = func.new_block("vec.body")

    # vec.pre: hoisted invariant loads, splats, vector trip count.
    for load in invariant_loads:
        vec_pre.append(ins.Load(load.dst, load.addr, load.ty))
    for source, reg in splat_requests.values():
        vec_pre.append(ins.VSplat(reg, source, vty))
    bound_ty = cl.bound.ty
    assert isinstance(bound_ty, ty.IntType)
    mask = Const(ty.wrap_int(~(lanes - 1), bound_ty), bound_ty)
    nvec = func.new_reg(bound_ty, "nvec")
    vec_pre.append(ins.BinOp("and", nvec, cl.bound, mask, bound_ty))
    vec_pre.append(ins.Jump(vec_head.label))

    cond = func.new_reg(ty.I32)
    vec_head.append(ins.Cmp("lt", cond, cl.ivar, nvec, bound_ty))
    vec_head.append(ins.Branch(cond, vec_body.label, cl.header))

    vec_body.instrs.extend(vec_instrs)
    stepped = func.new_reg(cl.ivar.ty)
    vec_body.append(ins.BinOp("add", stepped, cl.ivar,
                              Const(lanes, cl.ivar.ty), cl.ivar.ty))
    vec_body.append(ins.Move(cl.ivar, stepped))
    vec_body.append(ins.Jump(vec_head.label))

    ins.retarget(preheader.terminator, cl.header, vec_pre.label)

    # Order blocks: vec blocks just before the (now epilogue) header.
    for block in (vec_pre, vec_head, vec_body):
        func.blocks.remove(block)
    at = func.blocks.index(func.block(cl.header))
    func.blocks[at:at] = [vec_pre, vec_head, vec_body]

    kind = "reduction" if accs else "elementwise"
    return VecLoopInfo(
        function=func.name,
        vector_header=vec_head.label,
        scalar_header=cl.header,
        lanes=lanes,
        elem=str(elem_ty),
        kind=kind,
        reduce_op=accs[0].op if accs else None,
        acc_type=str(accs[0].acc.ty) if accs else None,
        noalias_bases=sorted(bases),
    )


# ---------------------------------------------------------------------------
# analysis helpers
# ---------------------------------------------------------------------------

def _collect_defs(func: Function, cl: CountedLoop) -> Set[VReg]:
    defs: Set[VReg] = set()
    for block in func.blocks:
        if block.label in cl.loop.body:
            for instr in block.instrs:
                defs.update(instr.defs())
    return defs


def _invariant_operands(body, defs_in_loop: Set[VReg]) -> List[VReg]:
    invariants = []
    for instr in body:
        for reg in instr.uses():
            if reg not in defs_in_loop:
                invariants.append(reg)
    return invariants


def _find_accumulators(func: Function, cl: CountedLoop, body,
                       defs_in_loop: Set[VReg]) -> List[_AccUpdate]:
    """Recognize ``acc = acc op x`` chains (with optional widening cast)."""
    use_counts: Dict[int, int] = {}
    for instr in body:
        for reg in instr.uses():
            use_counts[reg.id] = use_counts.get(reg.id, 0) + 1
    defs_by_reg: Dict[int, List[ins.Instr]] = {}
    for instr in body:
        for reg in instr.defs():
            defs_by_reg.setdefault(reg.id, []).append(instr)

    outside_defs = _outside_defs(func, cl)
    accs: List[_AccUpdate] = []
    for instr in body:
        acc: Optional[VReg] = None
        binop: Optional[ins.BinOp] = None
        move: Optional[ins.Move] = None
        if isinstance(instr, ins.Move) and isinstance(instr.src, VReg):
            # acc = mov t  where  t = binop(acc, x)
            source = instr.src
            binops = defs_by_reg.get(source.id, [])
            if len(binops) == 1 and isinstance(binops[0], ins.BinOp) and \
                    use_counts.get(source.id, 0) == 1:
                acc, binop, move = instr.dst, binops[0], instr
        elif isinstance(instr, ins.BinOp):
            # acc = binop(acc, x)  (produced by select->minmax conversion)
            acc, binop, move = instr.dst, instr, None
        if acc is None or binop is None:
            continue
        if acc == cl.ivar or acc not in outside_defs:
            continue
        if len(defs_by_reg.get(acc.id, [])) != 1:
            continue
        if binop.op not in _REDUCE_OPS:
            continue
        if isinstance(binop.a, VReg) and binop.a == acc:
            operand = binop.b
        elif isinstance(binop.b, VReg) and binop.b == acc:
            operand = binop.a
        else:
            continue
        if use_counts.get(acc.id, 0) != 1:
            continue          # acc used beyond its own update: too clever
        widen = None
        if isinstance(operand, VReg):
            operand_defs = defs_by_reg.get(operand.id, [])
            if len(operand_defs) == 1 and \
                    isinstance(operand_defs[0], ins.Cast) and \
                    use_counts.get(operand.id, 0) == 1:
                cast = operand_defs[0]
                if ty.is_integer(cast.from_ty) and \
                        ty.is_integer(cast.to_ty) and \
                        cast.to_ty.bits >= cast.from_ty.bits:
                    widen = cast
        accs.append(_AccUpdate(acc=acc, op=binop.op, operand=operand,
                               binop=binop, move=move, widen_cast=widen))
    return accs


def _outside_defs(func: Function, cl: CountedLoop) -> Set[VReg]:
    outside: Set[VReg] = set(func.params)
    for block in func.blocks:
        if block.label in cl.loop.body:
            continue
        for instr in block.instrs:
            outside.update(instr.defs())
    return outside


def _check_memory(body, amap: AffineMap,
                  defs_in_loop: Set[VReg]) -> Tuple[ty.Type, Set[str]]:
    """Dependence legality; returns (element type, no-alias base names)."""
    loads = [i for i in body if isinstance(i, ins.Load)]
    stores = [i for i in body if isinstance(i, ins.Store)]
    if not loads and not stores:
        raise _Reject

    contiguous_types: List[ty.Type] = []
    store_forms = []
    for store in stores:
        form = amap.of(store.addr)
        if form is None or form.base is None or \
                form.coeff != ty.sizeof(store.ty):
            raise _Reject
        store_forms.append((store, form))
        contiguous_types.append(store.ty)

    load_forms = []
    order = {id(i): n for n, i in enumerate(body)}
    for load in loads:
        form = amap.of(load.addr)
        if form is None:
            raise _Reject
        if form.coeff == ty.sizeof(load.ty) and form.base is not None:
            contiguous_types.append(load.ty)
            load_forms.append((load, form))
        elif form.coeff == 0:
            load_forms.append((load, form))
        else:
            raise _Reject

    if not contiguous_types:
        raise _Reject
    elem_ty = contiguous_types[0]
    if any(t != elem_ty for t in contiguous_types):
        raise _Reject

    # Same-base store/access constraints.
    for store, sform in store_forms:
        for load, lform in load_forms:
            if lform.base != sform.base:
                continue
            if lform.coeff == 0:
                raise _Reject        # invariant load from a stored base
            if lform.offset != sform.offset:
                raise _Reject        # potential loop-carried dependence
            if order[id(load)] > order[id(store)]:
                raise _Reject        # read-after-write within iteration
        for other, oform in store_forms:
            if other is store:
                continue
            if oform.base == sform.base and oform.offset != sform.offset:
                raise _Reject

    bases: Set[str] = set()
    for _, form in store_forms + load_forms:
        if form.base is not None:
            bases.add(f"%{form.base}")
    return elem_ty, bases


def _check_no_outside_uses(func: Function, cl: CountedLoop, body,
                           accs: List[_AccUpdate]) -> None:
    """Registers defined per-iteration must die inside the loop."""
    allowed = {cl.ivar} | {a.acc for a in accs}
    defined: Set[VReg] = set()
    for instr in body:
        defined.update(instr.defs())
    defined -= allowed
    for block in func.blocks:
        if block.label in cl.loop.body:
            continue
        for instr in block.instrs:
            for reg in instr.uses():
                if reg in defined:
                    raise _Reject


def _clone_scalar(func: Function, instr: ins.Instr, scalar_operand) \
        -> ins.Instr:
    if isinstance(instr, ins.BinOp):
        dst = func.new_reg(instr.ty)
        return ins.BinOp(instr.op, dst, scalar_operand(instr.a),
                         scalar_operand(instr.b), instr.ty)
    if isinstance(instr, ins.Cast):
        dst = func.new_reg(instr.to_ty)
        return ins.Cast(dst, scalar_operand(instr.src), instr.from_ty,
                        instr.to_ty)
    if isinstance(instr, ins.Move):
        dst = func.new_reg(instr.dst.ty)
        return ins.Move(dst, scalar_operand(instr.src))
    raise _Reject
