"""Control-flow graph simplification.

* removes unreachable blocks;
* forwards jumps through empty blocks (blocks containing only a jump);
* merges a block into its unique successor when that successor has a
  unique predecessor (straight-line chains collapse);
* folds branches whose two targets are identical into jumps.

Runs to a local fixpoint; cheap enough to run between other passes.
"""

from __future__ import annotations

from typing import Dict

from repro.ir import instructions as ins
from repro.ir.cfg import predecessors, remove_unreachable
from repro.ir.function import Function
from repro.opt.pass_manager import PassResult


def simplify_cfg(func: Function) -> PassResult:
    result = PassResult()
    changed = True
    while changed:
        changed = False
        changed |= remove_unreachable(func) > 0
        changed |= _fold_trivial_branches(func, result)
        changed |= _forward_empty_blocks(func, result)
        changed |= _merge_chains(func, result)
        result.changed = result.changed or changed
    return result


def _fold_trivial_branches(func: Function, result: PassResult) -> bool:
    changed = False
    for block in func.blocks:
        result.work += 1
        term = block.terminator
        if isinstance(term, ins.Branch) and \
                term.then_target == term.else_target:
            block.instrs[-1] = ins.Jump(term.then_target)
            changed = True
    return changed


def _forward_empty_blocks(func: Function, result: PassResult) -> bool:
    """Retarget edges that point at a block containing only ``jump X``."""
    forward: Dict[str, str] = {}
    for block in func.blocks:
        result.work += 1
        if len(block.instrs) == 1 and isinstance(block.instrs[0], ins.Jump):
            forward[block.label] = block.instrs[0].target

    def final_target(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    changed = False
    for block in func.blocks:
        term = block.terminator
        if term is None:
            continue
        for target in list(ins.branch_targets(term)):
            final = final_target(target)
            if final != target and final != block.label:
                ins.retarget(term, target, final)
                changed = True
    if changed:
        remove_unreachable(func)
    return changed


def _merge_chains(func: Function, result: PassResult) -> bool:
    """Merge ``a -> b`` when a's only successor is b and b's only pred is a."""
    changed = False
    preds = predecessors(func)
    for block in func.blocks:
        result.work += 1
        term = block.terminator
        if not isinstance(term, ins.Jump):
            continue
        succ_label = term.target
        if succ_label == block.label:
            continue
        if len(preds.get(succ_label, [])) != 1:
            continue
        succ = func.block(succ_label)
        if succ is func.entry:
            continue
        block.instrs = block.instrs[:-1] + succ.instrs
        func.blocks.remove(succ)
        changed = True
        preds = predecessors(func)   # recompute after mutation
    return changed
