"""Offline optimization passes over the mid-level IR.

``cleanup_passes()`` is the canonicalizing pipeline (run before any
pattern-matching pass), ``standard_passes()`` the -O2-like default used
by the offline compiler, to which the vectorizer is appended by
:mod:`repro.core.offline`.
"""

from repro.opt.pass_manager import PassManager, PassResult, PassStats
from repro.opt.constfold import constfold
from repro.opt.copyprop import copyprop
from repro.opt.dce import dce
from repro.opt.simplify_cfg import simplify_cfg
from repro.opt.cse import cse
from repro.opt.strength import strength_reduce

__all__ = [
    "PassManager", "PassResult", "PassStats",
    "constfold", "copyprop", "dce", "simplify_cfg", "cse",
    "strength_reduce",
    "cleanup_passes", "standard_passes", "run_cleanup", "run_standard",
]


def cleanup_passes():
    """Canonicalization: run before pattern-matching passes."""
    return [
        ("constfold", constfold),
        ("copyprop", copyprop),
        ("cse", cse),
        ("dce", dce),
        ("simplify-cfg", simplify_cfg),
    ]


def standard_passes():
    """The -O2-like scalar pipeline of the offline compiler."""
    from repro.opt.licm import licm
    from repro.opt.ifconvert import if_convert

    return [
        ("constfold", constfold),
        ("copyprop", copyprop),
        ("cse", cse),
        ("dce", dce),
        ("simplify-cfg", simplify_cfg),
        ("if-convert", if_convert),
        ("licm", licm),
        ("strength", strength_reduce),
        ("constfold.2", constfold),
        ("copyprop.2", copyprop),
        ("cse.2", cse),
        ("dce.2", dce),
        ("simplify-cfg.2", simplify_cfg),
    ]


def run_cleanup(func, verify: bool = False) -> PassStats:
    manager = PassManager(cleanup_passes(), verify=verify)
    return manager.run(func)


def run_standard(func, verify: bool = False) -> PassStats:
    manager = PassManager(standard_passes(), verify=verify)
    return manager.run(func)
