"""Offline optimization passes over the mid-level IR.

``cleanup_passes()`` is the canonicalizing pipeline (run before any
pattern-matching pass), ``standard_passes()`` the -O2-like default used
by the offline compiler, to which the vectorizer is appended by
:mod:`repro.core.offline`.

Passes are addressable *by name* through :func:`resolve_passes` so a
pipeline can be described as data (a tuple of names) — the form
:class:`repro.flows.PipelineSpec` stores and the flow registry, the
artifact cache and the iterative search all share.  A ``.N`` suffix
(``"cse.2"``) names a repeated invocation of the same pass.
"""

from typing import Iterable, List, Tuple

from repro.opt.pass_manager import (
    PassManager, PassRecord, PassResult, PassStats, PassSummary,
)
from repro.opt.constfold import constfold
from repro.opt.copyprop import copyprop
from repro.opt.dce import dce
from repro.opt.simplify_cfg import simplify_cfg
from repro.opt.cse import cse
from repro.opt.strength import strength_reduce

__all__ = [
    "PassManager", "PassResult", "PassStats", "PassRecord", "PassSummary",
    "constfold", "copyprop", "dce", "simplify_cfg", "cse",
    "strength_reduce",
    "cleanup_passes", "standard_passes", "run_cleanup", "run_standard",
    "pass_table", "resolve_passes",
    "CLEANUP_PASS_NAMES", "STANDARD_PASS_NAMES",
]

#: the canonicalizing prefix every pipeline starts from
CLEANUP_PASS_NAMES: Tuple[str, ...] = (
    "constfold", "copyprop", "cse", "dce", "simplify-cfg",
)

#: the -O2-like scalar pipeline of the offline compiler
STANDARD_PASS_NAMES: Tuple[str, ...] = (
    "constfold", "copyprop", "cse", "dce", "simplify-cfg",
    "if-convert", "licm", "strength",
    "constfold.2", "copyprop.2", "cse.2", "dce.2", "simplify-cfg.2",
)


def pass_table():
    """name -> pass function, for every registered IR pass."""
    from repro.opt.licm import licm
    from repro.opt.ifconvert import if_convert

    return {
        "constfold": constfold,
        "copyprop": copyprop,
        "cse": cse,
        "dce": dce,
        "simplify-cfg": simplify_cfg,
        "if-convert": if_convert,
        "licm": licm,
        "strength": strength_reduce,
    }


def resolve_passes(names: Iterable[str]) -> List[tuple]:
    """Turn pass names into the ``[(name, fn)]`` list PassManager runs.

    ``"cse.2"`` resolves to the ``cse`` pass but keeps its suffixed
    name, so repeated invocations stay distinguishable in the stats.
    """
    table = pass_table()
    resolved = []
    for name in names:
        base = name.rsplit(".", 1)[0] if "." in name else name
        if base not in table:
            raise KeyError(f"unknown pass {name!r}; "
                           f"known passes: {sorted(table)}")
        resolved.append((name, table[base]))
    return resolved


def cleanup_passes():
    """Canonicalization: run before pattern-matching passes."""
    return resolve_passes(CLEANUP_PASS_NAMES)


def standard_passes():
    """The -O2-like scalar pipeline of the offline compiler."""
    return resolve_passes(STANDARD_PASS_NAMES)


def run_cleanup(func, verify: bool = False) -> PassStats:
    manager = PassManager(cleanup_passes(), verify=verify)
    return manager.run(func)


def run_standard(func, verify: bool = False) -> PassStats:
    manager = PassManager(standard_passes(), verify=verify)
    return manager.run(func)
