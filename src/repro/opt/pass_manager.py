"""Pass management with work accounting and per-pass instrumentation.

Work accounting matters for the paper's argument: split compilation
moves *analysis work* offline.  Every pass reports how many instructions
it visited; the same passes can therefore be run by the offline
compiler (free at run time) or by the JIT (counted against its compile
budget), and experiment F1/S3a simply compares the counters.

Beyond the aggregate counters, every pass invocation is recorded as a
:class:`PassRecord` — wall time, work units, whether it changed the
function, and the IR size delta it caused — so a flow can explain
*where* its offline budget went (``OfflineArtifact.pass_stats``,
surfaced through the service's ``DeployResult``).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.function import Function

#: A pass is a callable ``(Function) -> PassResult``.
PassFn = Callable[[Function], "PassResult"]


@dataclass
class PassResult:
    """Outcome of one pass over one function."""
    changed: bool = False
    work: int = 0            # instructions visited (analysis effort proxy)

    def __iadd__(self, other: "PassResult") -> "PassResult":
        self.changed = self.changed or other.changed
        self.work += other.work
        return self


@dataclass
class PassRecord:
    """One pass invocation: what it cost and what it did."""
    name: str
    work: int = 0
    time: float = 0.0
    changed: bool = False
    ir_before: int = 0           # instruction count entering the pass
    ir_after: int = 0            # instruction count leaving it

    @property
    def ir_delta(self) -> int:
        return self.ir_after - self.ir_before


@dataclass
class PassSummary:
    """All invocations of one pass, aggregated."""
    name: str
    work: int = 0
    time: float = 0.0
    runs: int = 0
    changed_runs: int = 0        # invocations that changed the function
    ir_delta: int = 0            # net instruction-count change

    def absorb(self, record: PassRecord) -> None:
        self.work += record.work
        self.time += record.time
        self.runs += 1
        if record.changed:
            self.changed_runs += 1
        self.ir_delta += record.ir_delta


@dataclass
class PassStats:
    """Accumulated cost of a pipeline run."""
    work_by_pass: Dict[str, int] = field(default_factory=dict)
    time_by_pass: Dict[str, float] = field(default_factory=dict)
    runs: int = 0
    records: List[PassRecord] = field(default_factory=list)
    #: aggregates revived from a persisted artifact (no per-invocation
    #: records survive serialization, only their per-pass summaries)
    restored: Dict[str, PassSummary] = field(default_factory=dict)

    @property
    def total_work(self) -> int:
        return sum(self.work_by_pass.values())

    @property
    def total_time(self) -> float:
        return sum(self.time_by_pass.values())

    def record(self, name: str, work: int, elapsed: float,
               changed: bool = False, ir_before: int = 0,
               ir_after: int = 0) -> None:
        """Log one pass invocation (aggregates + per-invocation row)."""
        self.work_by_pass[name] = self.work_by_pass.get(name, 0) + work
        self.time_by_pass[name] = \
            self.time_by_pass.get(name, 0.0) + elapsed
        self.records.append(PassRecord(
            name=name, work=work, time=elapsed, changed=changed,
            ir_before=ir_before, ir_after=ir_after))

    def merge(self, other: "PassStats") -> "PassStats":
        """Fold another run's accounting into this one."""
        for name, summary in other.restored.items():
            mine = self.restored.setdefault(name, PassSummary(name))
            mine.work += summary.work
            mine.time += summary.time
            mine.runs += summary.runs
            mine.changed_runs += summary.changed_runs
            mine.ir_delta += summary.ir_delta
            self.work_by_pass[name] = \
                self.work_by_pass.get(name, 0) + summary.work
            self.time_by_pass[name] = \
                self.time_by_pass.get(name, 0.0) + summary.time
        for record in other.records:
            self.record(record.name, record.work, record.time,
                        record.changed, record.ir_before, record.ir_after)
        # A legacy PassStats with neither records nor restored
        # summaries still contributes its dicts.
        if not other.records and not other.restored:
            for name, work in other.work_by_pass.items():
                self.work_by_pass[name] = \
                    self.work_by_pass.get(name, 0) + work
            for name, elapsed in other.time_by_pass.items():
                self.time_by_pass[name] = \
                    self.time_by_pass.get(name, 0.0) + elapsed
        self.runs += other.runs
        return self

    def summaries(self) -> Dict[str, PassSummary]:
        """Per-pass aggregation of the invocation records, in first-run
        order (falling back to the work dict for recordless stats)."""
        out: Dict[str, PassSummary] = {
            name: dataclasses.replace(summary)
            for name, summary in self.restored.items()}
        for record in self.records:
            out.setdefault(record.name,
                           PassSummary(record.name)).absorb(record)
        for name, work in self.work_by_pass.items():
            if name not in out:
                out[name] = PassSummary(
                    name, work=work,
                    time=self.time_by_pass.get(name, 0.0))
        return out

    def summary_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-able per-pass aggregate (the persisted form)."""
        return {s.name: {"work": s.work, "time": s.time, "runs": s.runs,
                         "changed": s.changed_runs,
                         "ir_delta": s.ir_delta}
                for s in self.summaries().values()}

    @classmethod
    def from_summary(cls, data: Dict[str, Dict[str, object]]) \
            -> "PassStats":
        """Rebuild stats from :meth:`summary_dict` output; the result
        serializes back to exactly the same summary."""
        stats = cls()
        for name, row in data.items():
            summary = PassSummary(
                name, work=int(row["work"]), time=float(row["time"]),
                runs=int(row["runs"]), changed_runs=int(row["changed"]),
                ir_delta=int(row["ir_delta"]))
            stats.restored[name] = summary
            stats.work_by_pass[name] = summary.work
            stats.time_by_pass[name] = summary.time
        return stats

    def report(self) -> str:
        """Human-readable per-pass table (examples / debugging)."""
        summaries = self.summaries().values()
        width = max([4] + [len(s.name) for s in summaries])
        lines = [f"{'pass':<{width}} {'work':>8} {'ms':>8} {'runs':>5} "
                 f"{'changed':>8} {'ir delta':>9}"]
        for summary in summaries:
            lines.append(
                f"{summary.name:<{width}} {summary.work:>8} "
                f"{summary.time * 1e3:>8.3f} {summary.runs:>5} "
                f"{summary.changed_runs:>8} {summary.ir_delta:>+9}")
        return "\n".join(lines)


def _ir_size(func: Function) -> int:
    return sum(1 for _ in func.instructions())


class PassManager:
    """Runs a named pipeline of passes to a fixpoint (bounded)."""

    def __init__(self, passes: List[tuple],
                 max_iterations: int = 4,
                 verify: bool = False):
        """``passes`` is a list of ``(name, fn)`` tuples.

        With ``verify=True`` the IR verifier runs after every pass —
        slow, but the default in the test suite.
        """
        self.passes = passes
        self.max_iterations = max_iterations
        self.verify = verify
        self.stats = PassStats()

    def run(self, func: Function) -> PassStats:
        from repro.ir.verify import verify_function

        size = _ir_size(func)
        for _ in range(self.max_iterations):
            any_changed = False
            for name, pass_fn in self.passes:
                start = time.perf_counter()
                result = pass_fn(func)
                elapsed = time.perf_counter() - start
                after = _ir_size(func) if result.changed else size
                self.stats.record(name, result.work, elapsed,
                                  result.changed, size, after)
                size = after
                if self.verify:
                    try:
                        verify_function(func)
                    except Exception as exc:
                        raise AssertionError(
                            f"pass {name!r} broke {func.name!r}: {exc}"
                        ) from exc
                any_changed = any_changed or result.changed
            self.stats.runs += 1
            if not any_changed:
                break
        return self.stats
