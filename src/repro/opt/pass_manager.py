"""Pass management with work accounting.

Work accounting matters for the paper's argument: split compilation
moves *analysis work* offline.  Every pass reports how many instructions
it visited; the same passes can therefore be run by the offline
compiler (free at run time) or by the JIT (counted against its compile
budget), and experiment F1/S3a simply compares the counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.function import Function

#: A pass is a callable ``(Function) -> PassResult``.
PassFn = Callable[[Function], "PassResult"]


@dataclass
class PassResult:
    """Outcome of one pass over one function."""
    changed: bool = False
    work: int = 0            # instructions visited (analysis effort proxy)

    def __iadd__(self, other: "PassResult") -> "PassResult":
        self.changed = self.changed or other.changed
        self.work += other.work
        return self


@dataclass
class PassStats:
    """Accumulated cost of a pipeline run."""
    work_by_pass: Dict[str, int] = field(default_factory=dict)
    time_by_pass: Dict[str, float] = field(default_factory=dict)
    runs: int = 0

    @property
    def total_work(self) -> int:
        return sum(self.work_by_pass.values())

    @property
    def total_time(self) -> float:
        return sum(self.time_by_pass.values())


class PassManager:
    """Runs a named pipeline of passes to a fixpoint (bounded)."""

    def __init__(self, passes: List[tuple],
                 max_iterations: int = 4,
                 verify: bool = False):
        """``passes`` is a list of ``(name, fn)`` tuples.

        With ``verify=True`` the IR verifier runs after every pass —
        slow, but the default in the test suite.
        """
        self.passes = passes
        self.max_iterations = max_iterations
        self.verify = verify
        self.stats = PassStats()

    def run(self, func: Function) -> PassStats:
        from repro.ir.verify import verify_function

        for _ in range(self.max_iterations):
            any_changed = False
            for name, pass_fn in self.passes:
                start = time.perf_counter()
                result = pass_fn(func)
                elapsed = time.perf_counter() - start
                self.stats.work_by_pass[name] = \
                    self.stats.work_by_pass.get(name, 0) + result.work
                self.stats.time_by_pass[name] = \
                    self.stats.time_by_pass.get(name, 0.0) + elapsed
                if self.verify:
                    try:
                        verify_function(func)
                    except Exception as exc:
                        raise AssertionError(
                            f"pass {name!r} broke {func.name!r}: {exc}"
                        ) from exc
                any_changed = any_changed or result.changed
            self.stats.runs += 1
            if not any_changed:
                break
        return self.stats
