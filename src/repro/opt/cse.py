"""Local common subexpression elimination (value numbering).

Within each block, pure instructions with identical opcodes and
operands reuse the earlier result instead of recomputing it.  Operand
identity is resolved through a local copy table (so ``a = mov b`` makes
``f(a)`` and ``f(b)`` the same expression), which lets whole address-
computation chains collapse in a single pass instead of one layer per
pipeline iteration.

Loads participate under a simple memory versioning scheme: any store
or call bumps the version, invalidating remembered loads —
conservative but sound without alias analysis.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, Value, VReg
from repro.opt.pass_manager import PassResult

_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "min", "max"}


def cse(func: Function) -> PassResult:
    result = PassResult()
    for block in func.blocks:
        _run_block(block, result)
    return result


def _run_block(block, result: PassResult) -> None:
    available: Dict[Tuple, VReg] = {}
    key_deps: Dict[int, List[Tuple]] = {}   # reg id -> keys mentioning it
    copies: Dict[int, Value] = {}           # reg id -> resolved value
    memory_version = 0

    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, VReg) and value.id in copies:
            if value.id in seen:
                break
            seen.add(value.id)
            value = copies[value.id]
        return value

    def operand_key(value: Value):
        value = resolve(value)
        if isinstance(value, Const):
            return ("c", value.value, str(value.ty))
        return ("r", value.id)

    def invalidate(reg: VReg) -> None:
        for key in key_deps.pop(reg.id, []):
            available.pop(key, None)
        copies.pop(reg.id, None)
        stale = [k for k, v in copies.items()
                 if isinstance(v, VReg) and v.id == reg.id]
        for k in stale:
            del copies[k]

    def remember(key: Tuple, dst: VReg, deps: List[VReg]) -> None:
        available[key] = dst
        for reg in deps:
            key_deps.setdefault(reg.id, []).append(key)
        key_deps.setdefault(dst.id, []).append(key)

    new_instrs = []
    for instr in block.instrs:
        result.work += 1
        key = _key_of(instr, operand_key, memory_version)
        if key is not None and key in available:
            source = available[key]
            if source.ty == instr.dst.ty:
                replacement = ins.Move(instr.dst, source)
                new_instrs.append(replacement)
                result.changed = True
                invalidate(instr.dst)
                copies[instr.dst.id] = source
                continue
        new_instrs.append(instr)
        if isinstance(instr, (ins.Store, ins.VStore, ins.Call)):
            memory_version += 1
        for reg in instr.defs():
            invalidate(reg)
        if isinstance(instr, ins.Move):
            resolved = resolve(instr.src)
            if not (isinstance(resolved, VReg) and
                    resolved.id == instr.dst.id):
                copies[instr.dst.id] = resolved
        elif key is not None:
            deps = [resolve(s) for s in instr.srcs]
            remember(key, instr.dst,
                     [d for d in deps if isinstance(d, VReg)])
    block.instrs = new_instrs


def _key_of(instr: ins.Instr, operand_key, memory_version: int):
    """A hashable identity for pure, repeatable computations."""
    if isinstance(instr, ins.BinOp):
        a, b = operand_key(instr.a), operand_key(instr.b)
        if instr.op in _COMMUTATIVE and b < a:
            a, b = b, a
        return ("bin", instr.op, str(instr.ty), a, b)
    if isinstance(instr, ins.UnOp):
        return ("un", instr.op, str(instr.ty), operand_key(instr.a))
    if isinstance(instr, ins.Cmp):
        return ("cmp", instr.pred, str(instr.ty),
                operand_key(instr.a), operand_key(instr.b))
    if isinstance(instr, ins.Cast):
        return ("cast", str(instr.from_ty), str(instr.to_ty),
                operand_key(instr.src))
    if isinstance(instr, ins.FrameAddr):
        return ("frame", instr.slot)
    if isinstance(instr, ins.Load):
        return ("load", str(instr.ty), operand_key(instr.addr),
                memory_version)
    if isinstance(instr, ins.VLoad):
        return ("vload", str(instr.vty), operand_key(instr.addr),
                memory_version)
    if isinstance(instr, ins.VBinOp):
        a, b = operand_key(instr.a), operand_key(instr.b)
        if instr.op in _COMMUTATIVE and b < a:
            a, b = b, a
        return ("vbin", instr.op, str(instr.vty), a, b)
    if isinstance(instr, ins.VSplat):
        return ("vsplat", str(instr.vty), operand_key(instr.scalar))
    return None
