"""Loop-invariant code motion.

Hoists pure computations whose operands do not change inside a loop to
the loop preheader (creating one if necessary).  In a non-SSA IR the
safety conditions are:

* the instruction is pure and cannot trap (``div``/``rem`` excluded);
* its destination has exactly one definition in the whole function
  (so hoisting cannot clobber another path's value);
* every register operand is either never defined inside the loop, or
  defined by an instruction already hoisted in this round;
* loads additionally require the loop to contain no stores or calls
  (no alias analysis — conservative).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import instructions as ins
from repro.ir.cfg import Loop, natural_loops, predecessors
from repro.ir.function import BasicBlock, Function
from repro.ir.values import VReg
from repro.opt.pass_manager import PassResult


def licm(func: Function) -> PassResult:
    result = PassResult()
    # Innermost-last order lets invariants bubble outward across runs.
    loops = sorted(natural_loops(func), key=lambda l: len(l.body))
    for loop in loops:
        _hoist_loop(func, loop, result)
    return result


def _ensure_preheader(func: Function, loop: Loop) -> BasicBlock:
    """Return a block whose only successor is the loop header and which
    is the only out-of-loop predecessor of the header."""
    preds = predecessors(func)
    outside = [p for p in preds[loop.header] if p not in loop.body]
    if len(outside) == 1:
        candidate = func.block(outside[0])
        if candidate.successors() == [loop.header]:
            return candidate
    preheader = func.new_block("preheader")
    preheader.append(ins.Jump(loop.header))
    for label in outside:
        block = func.block(label)
        ins.retarget(block.terminator, loop.header, preheader.label)
    # Keep the entry block first.
    func.blocks.remove(preheader)
    func.blocks.insert(max(1, func.blocks.index(func.block(loop.header))),
                       preheader)
    return preheader


def _hoist_loop(func: Function, loop: Loop, result: PassResult) -> None:
    loop_blocks = [b for b in func.blocks if b.label in loop.body]

    defs_in_loop: Dict[VReg, int] = {}
    has_memory_effects = False
    for block in loop_blocks:
        for instr in block.instrs:
            result.work += 1
            for reg in instr.defs():
                defs_in_loop[reg] = defs_in_loop.get(reg, 0) + 1
            if isinstance(instr, (ins.Store, ins.VStore, ins.Call)):
                has_memory_effects = True

    func_def_counts: Dict[VReg, int] = {p: 1 for p in func.params}
    for instr in func.instructions():
        for reg in instr.defs():
            func_def_counts[reg] = func_def_counts.get(reg, 0) + 1

    hoisted: List[ins.Instr] = []
    hoisted_regs: Set[VReg] = set()
    changed = True
    while changed:
        changed = False
        for block in loop_blocks:
            for instr in list(block.instrs):
                if not _hoistable(instr, has_memory_effects):
                    continue
                if func_def_counts.get(instr.dst, 0) != 1:
                    continue
                operands_ok = all(
                    reg not in defs_in_loop or reg in hoisted_regs
                    for reg in instr.uses())
                if not operands_ok:
                    continue
                block.instrs.remove(instr)
                hoisted.append(instr)
                hoisted_regs.add(instr.dst)
                defs_in_loop.pop(instr.dst, None)
                changed = True
                result.changed = True

    if hoisted:
        preheader = _ensure_preheader(func, loop)
        preheader.instrs = preheader.instrs[:-1] + hoisted + \
            [preheader.instrs[-1]]


def _hoistable(instr: ins.Instr, loop_has_memory_effects: bool) -> bool:
    if instr.dst is None:
        return False
    if isinstance(instr, ins.BinOp):
        return instr.op not in ("div", "rem")
    if isinstance(instr, (ins.UnOp, ins.Cast, ins.Cmp, ins.FrameAddr,
                          ins.Select, ins.VSplat)):
        return True
    # Loads are never hoisted: the loop may execute zero times, and a
    # speculated load could trap where the original program would not.
    # (The vectorizer hoists invariant loads itself, guarded by the
    # vector-trip-count check.)
    return False
