"""AST-to-IR lowering (the first half of the offline compiler)."""

from repro.frontend.lower import lower_program, lower_source

__all__ = ["lower_program", "lower_source"]
