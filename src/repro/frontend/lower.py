"""Lower the typed MiniC AST into the mid-level register IR.

Conventions:

* pointers become ``u64`` byte addresses (the PVI memory is flat);
* every scalar local has a *home register*; assignment is a ``mov``.
  Arrays and address-taken locals live in frame slots instead and are
  accessed through ``frame_addr`` + ``load``/``store``;
* scalar locals are zero-initialized at their declaration — MiniC
  defines what C leaves undefined, which keeps differential testing
  between the interpreter and the JIT meaningful;
* short-circuit operators and ``?:`` lower to control flow writing a
  shared result register (the IR is not SSA, so multiple definitions
  are fine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.lang import ast
from repro.lang import parse_and_check
from repro.lang import types as ty
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Move
from repro.ir.values import Const, Value, VReg


def irtype(t: ty.Type) -> ty.Type:
    """Map a front-end type to its IR register type."""
    if isinstance(t, ty.PointerType):
        return ty.U64
    if isinstance(t, ty.ArrayType):
        return ty.U64
    return t


def _pointee_size(t: ty.Type) -> int:
    assert isinstance(t, ty.PointerType)
    return ty.sizeof(t.pointee)


#: An lvalue is either a home register or a memory address + type.
LValue = Tuple[str, Union[VReg, Value], ty.Type]


class _FuncLowerer:
    def __init__(self, ast_func: ast.FuncDef):
        self.ast_func = ast_func
        self.func = Function(ast_func.name, ast_func.ret_type)
        self.b = IRBuilder(self.func)
        self.homes: Dict[int, VReg] = {}       # decl uid -> home register
        self.slots: Dict[int, str] = {}        # decl uid -> frame slot name
        self.decl_types: Dict[int, ty.Type] = {}
        self.break_stack: List[BasicBlock] = []
        self.continue_stack: List[BasicBlock] = []
        self.addr_taken = self._find_address_taken()

    def _find_address_taken(self) -> set:
        taken = set()
        for node in ast.walk(self.ast_func):
            if isinstance(node, ast.AddrOf) and \
                    isinstance(node.operand, ast.Ident):
                taken.add(node.operand.decl.uid)
        return taken

    # -- entry ---------------------------------------------------------------

    def run(self) -> Function:
        entry = self.func.new_block("entry")
        self.b.set_block(entry)
        for param in self.ast_func.params:
            reg = self.func.new_param(irtype(param.param_type), param.name)
            self.decl_types[param.uid] = param.param_type
            if param.uid in self.addr_taken:
                slot = self.func.add_frame_slot(
                    param.name, ty.sizeof(irtype(param.param_type)),
                    ty.alignof(irtype(param.param_type)))
                self.slots[param.uid] = slot.name
                addr = self.b.frame_addr(slot.name)
                self.b.store(addr, reg, irtype(param.param_type))
            else:
                self.homes[param.uid] = reg
        self.lower_block(self.ast_func.body)
        self._ensure_terminated()
        return self.func

    def _ensure_terminated(self) -> None:
        if self.b.block.terminator is None:
            if isinstance(self.func.ret_ty, ty.VoidType):
                self.b.ret()
            else:
                zero = Const(0, self.func.ret_ty) \
                    if ty.is_integer(self.func.ret_ty) \
                    else Const(0.0, self.func.ret_ty) \
                    if ty.is_float(self.func.ret_ty) \
                    else Const(0, ty.U64)
                self.b.ret(zero)

    # -- statements ---------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, f"_stmt_{type(stmt).__name__}")
        method(stmt)

    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.lower_stmt(stmt)

    def _stmt_Block(self, stmt: ast.Block) -> None:
        self.lower_block(stmt)

    def _stmt_VarDecl(self, stmt: ast.VarDecl) -> None:
        self.decl_types[stmt.uid] = stmt.var_type
        if isinstance(stmt.var_type, ty.ArrayType):
            slot = self.func.add_frame_slot(
                stmt.name, ty.sizeof(stmt.var_type),
                ty.alignof(stmt.var_type))
            self.slots[stmt.uid] = slot.name
            return
        reg_ty = irtype(stmt.var_type)
        if stmt.uid in self.addr_taken:
            slot = self.func.add_frame_slot(
                stmt.name, ty.sizeof(reg_ty), ty.alignof(reg_ty))
            self.slots[stmt.uid] = slot.name
            init = self.lower_expr(stmt.init) if stmt.init is not None \
                else _zero(reg_ty)
            addr = self.b.frame_addr(slot.name)
            self.b.store(addr, init, reg_ty)
            return
        home = self.func.new_reg(reg_ty, stmt.name)
        self.homes[stmt.uid] = home
        init = self.lower_expr(stmt.init) if stmt.init is not None \
            else _zero(reg_ty)
        self.b.emit(Move(home, init))

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self.lower_expr(stmt.expr)

    def _stmt_If(self, stmt: ast.If) -> None:
        cond = self.truthy(self.lower_expr(stmt.cond))
        then_bb = self.func.new_block("if.then")
        join_bb = self.func.new_block("if.join")
        else_bb = self.func.new_block("if.else") if stmt.otherwise else join_bb
        self.b.branch(cond, then_bb, else_bb)
        self.b.set_block(then_bb)
        self.lower_stmt(stmt.then)
        if self.b.block.terminator is None:
            self.b.jump(join_bb)
        if stmt.otherwise is not None:
            self.b.set_block(else_bb)
            self.lower_stmt(stmt.otherwise)
            if self.b.block.terminator is None:
                self.b.jump(join_bb)
        self.b.set_block(join_bb)

    def _stmt_While(self, stmt: ast.While) -> None:
        head = self.func.new_block("while.head")
        body = self.func.new_block("while.body")
        exit_bb = self.func.new_block("while.exit")
        self.b.jump(head)
        self.b.set_block(head)
        cond = self.truthy(self.lower_expr(stmt.cond))
        self.b.branch(cond, body, exit_bb)
        self.b.set_block(body)
        self.break_stack.append(exit_bb)
        self.continue_stack.append(head)
        self.lower_stmt(stmt.body)
        self.continue_stack.pop()
        self.break_stack.pop()
        if self.b.block.terminator is None:
            self.b.jump(head)
        self.b.set_block(exit_bb)

    def _stmt_DoWhile(self, stmt: ast.DoWhile) -> None:
        body = self.func.new_block("do.body")
        cond_bb = self.func.new_block("do.cond")
        exit_bb = self.func.new_block("do.exit")
        self.b.jump(body)
        self.b.set_block(body)
        self.break_stack.append(exit_bb)
        self.continue_stack.append(cond_bb)
        self.lower_stmt(stmt.body)
        self.continue_stack.pop()
        self.break_stack.pop()
        if self.b.block.terminator is None:
            self.b.jump(cond_bb)
        self.b.set_block(cond_bb)
        cond = self.truthy(self.lower_expr(stmt.cond))
        self.b.branch(cond, body, exit_bb)
        self.b.set_block(exit_bb)

    def _stmt_For(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.func.new_block("for.head")
        body = self.func.new_block("for.body")
        step_bb = self.func.new_block("for.step")
        exit_bb = self.func.new_block("for.exit")
        self.b.jump(head)
        self.b.set_block(head)
        if stmt.cond is not None:
            cond = self.truthy(self.lower_expr(stmt.cond))
            self.b.branch(cond, body, exit_bb)
        else:
            self.b.jump(body)
        self.b.set_block(body)
        self.break_stack.append(exit_bb)
        self.continue_stack.append(step_bb)
        self.lower_stmt(stmt.body)
        self.continue_stack.pop()
        self.break_stack.pop()
        if self.b.block.terminator is None:
            self.b.jump(step_bb)
        self.b.set_block(step_bb)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.b.jump(head)
        self.b.set_block(exit_bb)

    def _stmt_Return(self, stmt: ast.Return) -> None:
        value = self.lower_expr(stmt.value) if stmt.value is not None else None
        self.b.ret(value)
        self.b.set_block(self.func.new_block("dead"))

    def _stmt_Break(self, stmt: ast.Break) -> None:
        self.b.jump(self.break_stack[-1])
        self.b.set_block(self.func.new_block("dead"))

    def _stmt_Continue(self, stmt: ast.Continue) -> None:
        self.b.jump(self.continue_stack[-1])
        self.b.set_block(self.func.new_block("dead"))

    # -- lvalues -----------------------------------------------------------

    def lower_lvalue(self, expr: ast.Expr) -> LValue:
        if isinstance(expr, ast.Ident):
            uid = expr.decl.uid
            if uid in self.homes:
                return ("reg", self.homes[uid], self.decl_types[uid])
            addr = self.b.frame_addr(self.slots[uid])
            return ("mem", addr, self.decl_types[uid])
        if isinstance(expr, ast.Deref):
            addr = self.lower_expr(expr.operand)
            return ("mem", addr, expr.ty)
        if isinstance(expr, ast.Index):
            addr = self.index_address(expr)
            return ("mem", addr, expr.ty)
        raise AssertionError(f"not an lvalue: {expr}")

    def read_lvalue(self, lvalue: LValue) -> Value:
        kind, place, decl_ty = lvalue
        if kind == "reg":
            # Snapshot: the rvalue must not alias the (mutable) home
            # register, or `x++` would observe its own update.
            return self.b.move(place)
        return self.b.load(place, irtype(decl_ty))

    def write_lvalue(self, lvalue: LValue, value: Value) -> None:
        kind, place, decl_ty = lvalue
        if kind == "reg":
            self.b.emit(Move(place, value))
        else:
            self.b.store(place, value, irtype(decl_ty))

    def index_address(self, expr: ast.Index) -> Value:
        base = expr.base
        elem_ty = expr.ty
        if isinstance(base, ast.Ident) and \
                isinstance(base.ty, ty.ArrayType) and \
                base.decl.uid in self.slots:
            base_addr: Value = self.b.frame_addr(self.slots[base.decl.uid])
        else:
            base_addr = self.lower_expr(base)
        index = self.lower_expr(expr.index)          # i64 after sema
        index_u = self._to_u64(index)
        size = ty.sizeof(irtype(elem_ty)) if not isinstance(
            elem_ty, ty.ArrayType) else ty.sizeof(elem_ty)
        scaled = self.b.binop("mul", index_u, Const(size, ty.U64), ty.U64) \
            if size != 1 else index_u
        return self.b.binop("add", base_addr, scaled, ty.U64)

    def _to_u64(self, value: Value) -> Value:
        if value.ty == ty.U64:
            return value
        if isinstance(value, Const):
            return Const(value.value, ty.U64)
        return self.b.cast(value, value.ty, ty.U64)

    # -- expressions -------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Value:
        method = getattr(self, f"_expr_{type(expr).__name__}")
        return method(expr)

    def truthy(self, value: Value) -> Value:
        """A value usable as a branch condition (non-zero = taken)."""
        if ty.is_float(value.ty):
            return self.b.cmp("ne", value, Const(0.0, value.ty), value.ty)
        return value

    def boolean(self, value: Value) -> Value:
        """Normalize to i32 0/1 (for logical operators' results)."""
        zero = Const(0.0, value.ty) if ty.is_float(value.ty) \
            else Const(0, value.ty)
        return self.b.cmp("ne", value, zero, value.ty)

    def _expr_IntLit(self, expr: ast.IntLit) -> Value:
        return Const(expr.value, expr.ty)

    def _expr_FloatLit(self, expr: ast.FloatLit) -> Value:
        return Const(expr.value, expr.ty)

    def _expr_SizeOf(self, expr: ast.SizeOf) -> Value:
        return Const(ty.sizeof(expr.target_type), ty.U64)

    def _expr_Ident(self, expr: ast.Ident) -> Value:
        uid = expr.decl.uid
        if isinstance(expr.ty, ty.ArrayType):
            return self.b.frame_addr(self.slots[uid])
        if uid in self.homes:
            return self.b.move(self.homes[uid])
        addr = self.b.frame_addr(self.slots[uid])
        return self.b.load(addr, irtype(expr.ty))

    def _expr_Unary(self, expr: ast.Unary) -> Value:
        operand = self.lower_expr(expr.operand)
        if expr.op == "-":
            return self.b.unop("neg", operand, irtype(expr.ty))
        if expr.op == "~":
            return self.b.unop("not", operand, irtype(expr.ty))
        if expr.op == "!":
            zero = Const(0.0, operand.ty) if ty.is_float(operand.ty) \
                else Const(0, operand.ty)
            return self.b.cmp("eq", operand, zero, operand.ty)
        raise AssertionError(expr.op)

    _BINOP_MAP = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                  "&": "and", "|": "or", "^": "xor",
                  "<<": "shl", ">>": "shr"}
    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                ">": "gt", ">=": "ge"}

    def _expr_Binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        if op in self._CMP_MAP:
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            operand_ty = irtype(ty.decay(expr.left.ty))
            return self.b.cmp(self._CMP_MAP[op], left, right, operand_ty)

        left_ty = ty.decay(expr.left.ty)
        right_ty = ty.decay(expr.right.ty)
        # Pointer arithmetic: scale the integer side by the pointee size.
        if isinstance(expr.ty, ty.PointerType):
            size = _pointee_size(expr.ty)
            if ty.is_pointer(left_ty):
                base = self.lower_expr(expr.left)
                offset = self._to_u64(self.lower_expr(expr.right))
            else:
                base = self.lower_expr(expr.right)
                offset = self._to_u64(self.lower_expr(expr.left))
            if size != 1:
                offset = self.b.binop("mul", offset, Const(size, ty.U64),
                                      ty.U64)
            ir_op = "add" if op == "+" else "sub"
            return self.b.binop(ir_op, base, offset, ty.U64)
        if op == "-" and ty.is_pointer(left_ty) and ty.is_pointer(right_ty):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            diff = self.b.binop("sub", left, right, ty.U64)
            diff_i = self.b.cast(diff, ty.U64, ty.I64)
            size = _pointee_size(left_ty)
            if size == 1:
                return diff_i
            return self.b.binop("div", diff_i, Const(size, ty.I64), ty.I64)

        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        return self.b.binop(self._BINOP_MAP[op], left, right,
                            irtype(expr.ty))

    def _short_circuit(self, expr: ast.Binary) -> Value:
        result = self.func.new_reg(ty.I32, "sc")
        rhs_bb = self.func.new_block("sc.rhs")
        short_bb = self.func.new_block("sc.short")
        join_bb = self.func.new_block("sc.join")
        left = self.truthy(self.lower_expr(expr.left))
        if expr.op == "&&":
            self.b.branch(left, rhs_bb, short_bb)
            short_value = Const(0, ty.I32)
        else:
            self.b.branch(left, short_bb, rhs_bb)
            short_value = Const(1, ty.I32)
        self.b.set_block(rhs_bb)
        right = self.boolean(self.lower_expr(expr.right))
        self.b.emit(Move(result, right))
        self.b.jump(join_bb)
        self.b.set_block(short_bb)
        self.b.emit(Move(result, short_value))
        self.b.jump(join_bb)
        self.b.set_block(join_bb)
        return result

    def _expr_Assign(self, expr: ast.Assign) -> Value:
        lvalue = self.lower_lvalue(expr.target)
        target_ty = irtype(lvalue[2])
        if expr.op == "=":
            value = self.lower_expr(expr.value)
            self.write_lvalue(lvalue, value)
            return value
        binop = expr.op[:-1]
        old = self.read_lvalue(lvalue)
        rhs = self.lower_expr(expr.value)
        if isinstance(lvalue[2], ty.PointerType):
            size = _pointee_size(lvalue[2])
            offset = self._to_u64(rhs)
            if size != 1:
                offset = self.b.binop("mul", offset, Const(size, ty.U64),
                                      ty.U64)
            ir_op = "add" if binop == "+" else "sub"
            new = self.b.binop(ir_op, old, offset, ty.U64)
            self.write_lvalue(lvalue, new)
            return new
        compute_ty = irtype(expr.compute_ty)
        lhs = old
        if old.ty != compute_ty:
            lhs = self.b.cast(old, old.ty, compute_ty)
        if binop in ("<<", ">>"):
            result = self.b.binop(self._BINOP_MAP[binop], lhs, rhs,
                                  compute_ty) if rhs.ty == compute_ty else \
                self.b.binop(self._BINOP_MAP[binop], lhs,
                             self._coerce(rhs, compute_ty), compute_ty)
        else:
            result = self.b.binop(self._BINOP_MAP[binop], lhs, rhs,
                                  compute_ty)
        if compute_ty != target_ty:
            result = self.b.cast(result, compute_ty, target_ty)
        self.write_lvalue(lvalue, result)
        return result

    def _coerce(self, value: Value, to_ty: ty.Type) -> Value:
        if value.ty == to_ty:
            return value
        if isinstance(value, Const) and ty.is_integer(to_ty) and \
                ty.is_integer(value.ty):
            return Const(value.value, to_ty)
        return self.b.cast(value, value.ty, to_ty)

    def _expr_IncDec(self, expr: ast.IncDec) -> Value:
        lvalue = self.lower_lvalue(expr.target)
        decl_ty = lvalue[2]
        old = self.read_lvalue(lvalue)
        if isinstance(decl_ty, ty.PointerType):
            step = Const(_pointee_size(decl_ty), ty.U64)
            op = "add" if expr.op == "++" else "sub"
            new = self.b.binop(op, old, step, ty.U64)
        elif ty.is_float(decl_ty):
            one = Const(1.0, decl_ty)
            op = "add" if expr.op == "++" else "sub"
            new = self.b.binop(op, old, one, decl_ty)
        else:
            one = Const(1, decl_ty)
            op = "add" if expr.op == "++" else "sub"
            new = self.b.binop(op, old, one, decl_ty)
        self.write_lvalue(lvalue, new)
        return old if expr.is_postfix else new

    def _expr_Conditional(self, expr: ast.Conditional) -> Value:
        result_ty = irtype(ty.decay(expr.ty))
        result = self.func.new_reg(result_ty, "sel")
        then_bb = self.func.new_block("sel.then")
        else_bb = self.func.new_block("sel.else")
        join_bb = self.func.new_block("sel.join")
        cond = self.truthy(self.lower_expr(expr.cond))
        self.b.branch(cond, then_bb, else_bb)
        self.b.set_block(then_bb)
        then_value = self.lower_expr(expr.then)
        self.b.emit(Move(result, then_value))
        self.b.jump(join_bb)
        self.b.set_block(else_bb)
        else_value = self.lower_expr(expr.otherwise)
        self.b.emit(Move(result, else_value))
        self.b.jump(join_bb)
        self.b.set_block(join_bb)
        return result

    def _expr_Call(self, expr: ast.Call) -> Value:
        args = [self.lower_expr(a) for a in expr.args]
        ret_ty = irtype(ty.decay(expr.ty)) if not isinstance(
            expr.ty, ty.VoidType) else expr.ty
        result = self.b.call(expr.name, args, ret_ty)
        return result if result is not None else Const(0, ty.I32)

    def _expr_Index(self, expr: ast.Index) -> Value:
        addr = self.index_address(expr)
        if isinstance(expr.ty, ty.ArrayType):
            return addr          # subarray decays to its address
        return self.b.load(addr, irtype(expr.ty))

    def _expr_Deref(self, expr: ast.Deref) -> Value:
        addr = self.lower_expr(expr.operand)
        return self.b.load(addr, irtype(expr.ty))

    def _expr_AddrOf(self, expr: ast.AddrOf) -> Value:
        operand = expr.operand
        if isinstance(operand, ast.Ident):
            uid = operand.decl.uid
            return self.b.frame_addr(self.slots[uid])
        if isinstance(operand, ast.Index):
            return self.index_address(operand)
        if isinstance(operand, ast.Deref):
            return self.lower_expr(operand.operand)
        raise AssertionError(f"cannot take address of {operand}")

    def _expr_Cast(self, expr: ast.Cast) -> Value:
        operand = self.lower_expr(expr.operand)
        from_ty = irtype(ty.decay(expr.operand.ty))
        to_ty = irtype(expr.target_type)
        if isinstance(expr.target_type, ty.VoidType):
            return operand
        if from_ty == to_ty:
            return operand
        if isinstance(operand, Const) and ty.is_integer(from_ty) and \
                ty.is_integer(to_ty):
            return Const(ty.wrap_int(int(operand.value), to_ty), to_ty)
        return self.b.cast(operand, from_ty, to_ty)


def _zero(reg_ty: ty.Type) -> Const:
    return Const(0.0, reg_ty) if ty.is_float(reg_ty) else Const(0, reg_ty)


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower every defined function of a typed AST program."""
    module = Module(name)
    for func in program.funcs:
        if func.body is not None:
            module.add(_FuncLowerer(func).run())
    return module


def lower_source(source: str, name: str = "module") -> Module:
    """Parse, check and lower MiniC source in one step."""
    return lower_program(parse_and_check(source), name)
