"""The signal-processing pipeline for the KPN experiments (S4c).

Eight actors with deliberately mixed character:

* vector-friendly elementwise stages (``gain``, ``mix``, ``clip``,
  ``square``) that a SIMD core or DSP accelerates;
* control-heavy recursive stages (``biquad``, ``envelope``, ``agc``)
  that belong on a branch-friendly core;
* a reduction (``rms_accum``).

Topology (tee actors fork streams — KPN channels are
single-consumer)::

    in_l -gain-> g_l -biquad-> f_l -\
                                     mix -> m -clip-> c -tee-> (c1, c2)
    in_r -gain-> g_r -biquad-> f_r -/
    c1 -envelope-> e ;  (c2, e) -agc-> a -tee-> (out_main, a2)
    a2 -square-> sq -rms-> out_rms
"""

from __future__ import annotations

from repro.kpn.graph import ProcessNetwork

PIPELINE_SOURCE = """
void gain(float *in, float *out, int n) {
    for (int i = 0; i < n; i++)
        out[i] = 0.7071f * in[i];
}

void biquad(float *in, float *out, int n) {
    /* Direct-form I low-pass; loop-carried state: not vectorizable. */
    float x1 = 0.0f; float x2 = 0.0f;
    float y1 = 0.0f; float y2 = 0.0f;
    for (int i = 0; i < n; i++) {
        float x = in[i];
        float y = 0.2929f * x + 0.5858f * x1 + 0.2929f * x2
                - 0.0f * y1 - 0.1716f * y2;
        x2 = x1; x1 = x;
        y2 = y1; y1 = y;
        out[i] = y;
    }
}

void mix(float *a, float *b, float *out, int n) {
    for (int i = 0; i < n; i++)
        out[i] = 0.5f * a[i] + 0.5f * b[i];
}

void clip(float *in, float *out, int n) {
    for (int i = 0; i < n; i++) {
        float v = in[i];
        if (v > 0.9f) v = 0.9f;
        if (v < -0.9f) v = -0.9f;
        out[i] = v;
    }
}

void envelope(float *in, float *out, int n) {
    /* Attack/release follower: branchy and recursive. */
    float env = 0.0f;
    for (int i = 0; i < n; i++) {
        float v = in[i];
        if (v < 0.0f) v = -v;
        if (v > env)
            env = env + 0.3f * (v - env);
        else
            env = env + 0.05f * (v - env);
        out[i] = env;
    }
}

void agc(float *in, float *env, float *out, int n) {
    for (int i = 0; i < n; i++) {
        float e = env[i];
        float g2 = 1.0f;
        if (e > 0.001f)
            g2 = 0.5f / e;
        if (g2 > 4.0f) g2 = 4.0f;
        out[i] = in[i] * g2;
    }
}

void square(float *in, float *out, int n) {
    for (int i = 0; i < n; i++)
        out[i] = in[i] * in[i];
}

void tee(float *in, float *out1, float *out2, int n) {
    /* KPN channels are single-consumer; forking a stream is an
       explicit copy actor. */
    for (int i = 0; i < n; i++) {
        out1[i] = in[i];
        out2[i] = in[i];
    }
}

void rms_accum(float *in, float *out, int n) {
    float acc = 0.0f;
    for (int i = 0; i < n; i++)
        acc += in[i];
    for (int i = 0; i < n; i++)
        out[i] = acc / (float)n;
}
"""


def build_pipeline(block_size: int = 64) -> ProcessNetwork:
    """The 8-actor stereo pipeline used by the S4c experiment."""
    network = ProcessNetwork("audio-pipeline", block_size=block_size)
    network.add_actor("gain_l", "gain", ["in_l"], ["g_l"])
    network.add_actor("gain_r", "gain", ["in_r"], ["g_r"])
    network.add_actor("filter_l", "biquad", ["g_l"], ["f_l"])
    network.add_actor("filter_r", "biquad", ["g_r"], ["f_r"])
    network.add_actor("mixer", "mix", ["f_l", "f_r"], ["m"])
    network.add_actor("clipper", "clip", ["m"], ["c"])
    network.add_actor("tee1", "tee", ["c"], ["c1", "c2"])
    network.add_actor("env", "envelope", ["c1"], ["e"])
    network.add_actor("agc1", "agc", ["c2", "e"], ["a"])
    network.add_actor("tee2", "tee", ["a"], ["out_main", "a2"])
    network.add_actor("square1", "square", ["a2"], ["sq"])
    network.add_actor("rms", "rms_accum", ["sq"], ["out_rms"])
    return network
