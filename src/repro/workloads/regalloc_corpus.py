"""Register-pressure corpus for the split register allocation experiment.

Functions with many simultaneously live values inside loops — the shape
where the spill-choice policy matters.  Standing in for the paper's
"standard Java benchmarks" (see DESIGN.md substitution table): the 40 %
claim is about allocator quality under pressure, which these exhibit
at every K we sweep.
"""

REGALLOC_CORPUS = {
    # A polynomial evaluator with many live coefficients: the offline
    # ranking keeps the loop-carried powers, the baseline evicts them.
    "poly8": """
int poly8(int *c, int *xs, int n) {
    int acc = 0;
    int c0 = c[0]; int c1 = c[1]; int c2 = c[2]; int c3 = c[3];
    int c4 = c[4]; int c5 = c[5]; int c6 = c[6]; int c7 = c[7];
    for (int i = 0; i < n; i++) {
        int x = xs[i];
        int x2 = x * x;
        int x3 = x2 * x;
        int x4 = x2 * x2;
        int x5 = x4 * x;
        int x6 = x4 * x2;
        int x7 = x6 * x;
        acc += c0 + c1 * x + c2 * x2 + c3 * x3
             + c4 * x4 + c5 * x5 + c6 * x6 + c7 * x7;
    }
    return acc;
}
""",
    # Several running statistics over one pass: many loop accumulators.
    "stats": """
int stats(int *a, int n) {
    int s1 = 0; int s2 = 0; int mn = 2147483647; int mx = -2147483647;
    int even = 0; int odd = 0; int run = 0; int best = 0;
    for (int i = 0; i < n; i++) {
        int v = a[i];
        s1 += v;
        s2 += v * v;
        if (v < mn) mn = v;
        if (v > mx) mx = v;
        if ((v & 1) == 0) even++; else odd++;
        if (v > 0) run++; else run = 0;
        if (run > best) best = run;
    }
    return s1 + s2 + mn + mx + even + odd + best;
}
""",
    # Unrolled-by-hand butterfly with long dependence chains.
    "butterfly": """
void butterfly(int *re, int *im, int n) {
    for (int i = 0; i + 4 <= n; i += 4) {
        int a0 = re[i];     int b0 = im[i];
        int a1 = re[i + 1]; int b1 = im[i + 1];
        int a2 = re[i + 2]; int b2 = im[i + 2];
        int a3 = re[i + 3]; int b3 = im[i + 3];
        int t0 = a0 + a2;   int t1 = a0 - a2;
        int t2 = a1 + a3;   int t3 = a1 - a3;
        int u0 = b0 + b2;   int u1 = b0 - b2;
        int u2 = b1 + b3;   int u3 = b1 - b3;
        re[i]     = t0 + t2;
        re[i + 1] = t1 + u3;
        re[i + 2] = t0 - t2;
        re[i + 3] = t1 - u3;
        im[i]     = u0 + u2;
        im[i + 1] = u1 - t3;
        im[i + 2] = u0 - u2;
        im[i + 3] = u1 + t3;
    }
}
""",
    # A checksum with rotating state registers.
    "checksum": """
unsigned checksum(unsigned char *data, int n) {
    unsigned h1 = 0x12345678u; unsigned h2 = 0x9abcdef0u;
    unsigned h3 = 0x31415926u; unsigned h4 = 0x27182818u;
    for (int i = 0; i + 4 <= n; i += 4) {
        unsigned w1 = data[i];
        unsigned w2 = data[i + 1];
        unsigned w3 = data[i + 2];
        unsigned w4 = data[i + 3];
        h1 = (h1 ^ w1) * 16777619u + h4;
        h2 = (h2 ^ w2) * 16777619u + h1;
        h3 = (h3 ^ w3) * 16777619u + h2;
        h4 = (h4 ^ w4) * 16777619u + h3;
    }
    return h1 ^ h2 ^ h3 ^ h4;
}
""",
    # Matrix 4x4 multiply with fully unrolled accumulators.
    "mat4": """
void mat4(int *a, int *b, int *c) {
    for (int i = 0; i < 4; i++) {
        int a0 = a[i * 4 + 0]; int a1 = a[i * 4 + 1];
        int a2 = a[i * 4 + 2]; int a3 = a[i * 4 + 3];
        for (int j = 0; j < 4; j++) {
            int acc = a0 * b[0 * 4 + j] + a1 * b[1 * 4 + j]
                    + a2 * b[2 * 4 + j] + a3 * b[3 * 4 + j];
            c[i * 4 + j] = acc;
        }
    }
}
""",
}
