"""Workload corpus: MiniC kernels with input builders.

* :data:`TABLE1` — the six kernels of the paper's Table 1;
* :data:`EXTRA_KERNELS` — additional BLAS-1/DSP-style kernels
  exercising the same code paths (vectorizable and not);
* :data:`REGALLOC_CORPUS` — register-pressure-heavy functions for the
  split register allocation experiment (S4a);
* :mod:`repro.workloads.pipeline` — the KPN actor sources for the
  heterogeneous mapping experiment (S4c).
"""

from repro.workloads.kernels import (
    ALL_KERNELS, EXTRA_KERNELS, Kernel, KernelRun, TABLE1, kernel_by_name,
)
from repro.workloads.regalloc_corpus import REGALLOC_CORPUS

__all__ = [
    "Kernel", "KernelRun", "TABLE1", "EXTRA_KERNELS", "ALL_KERNELS",
    "kernel_by_name", "REGALLOC_CORPUS",
]
