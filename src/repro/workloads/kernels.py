"""Kernel definitions and deterministic input builders."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.lang import types as ty
from repro.semantics import Memory

#: (tag, address, count) triples describing output arrays to read back
Output = Tuple[object, int, int]


@dataclass
class KernelRun:
    """One prepared invocation: arguments plus output descriptors."""
    args: List = field(default_factory=list)
    outputs: List[Output] = field(default_factory=list)


@dataclass
class Kernel:
    """A benchmark kernel: source, entry point and input builder."""
    name: str
    source: str
    entry: str
    category: str                     # 'table1' or 'extra'
    elem: str                         # dominant element type
    vectorizable: bool
    make_inputs: Callable[[Memory, int, int], KernelRun]

    def prepare(self, memory: Memory, n: int, seed: int = 7) -> KernelRun:
        return self.make_inputs(memory, n, seed)


def _floats(rng: random.Random, n: int) -> List[float]:
    return [rng.uniform(-8.0, 8.0) for _ in range(n)]


# ---------------------------------------------------------------------------
# Table 1 kernels
# ---------------------------------------------------------------------------

def _vecadd_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    a = memory.alloc_array(ty.F32, _floats(rng, n))
    b = memory.alloc_array(ty.F32, _floats(rng, n))
    c = memory.alloc_array(ty.F32, [0.0] * n)
    return KernelRun(args=[a, b, c, n], outputs=[(ty.F32, c, n)])


def _saxpy_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    x = memory.alloc_array(ty.F32, _floats(rng, n))
    y = memory.alloc_array(ty.F32, _floats(rng, n))
    return KernelRun(args=[n, 2.5, x, y], outputs=[(ty.F32, y, n)])


def _dscal_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    x = memory.alloc_array(ty.F64, _floats(rng, n))
    return KernelRun(args=[n, 1.25, x], outputs=[(ty.F64, x, n)])


def _u8_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    a = memory.alloc_array(ty.U8, [rng.randrange(256) for _ in range(n)])
    return KernelRun(args=[a, n])


def _u16_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    a = memory.alloc_array(ty.U16, [rng.randrange(65536)
                                    for _ in range(n)])
    return KernelRun(args=[a, n])


TABLE1: Dict[str, Kernel] = {}
EXTRA_KERNELS: Dict[str, Kernel] = {}


def _register(table: Dict[str, Kernel], kernel: Kernel) -> Kernel:
    table[kernel.name] = kernel
    return kernel


_register(TABLE1, Kernel(
    name="vecadd_fp",
    entry="vecadd",
    category="table1",
    elem="f32",
    vectorizable=True,
    make_inputs=_vecadd_inputs,
    source="""
void vecadd(float *a, float *b, float *c, int n) {
    for (int i = 0; i < n; i++)
        c[i] = a[i] + b[i];
}
"""))

_register(TABLE1, Kernel(
    name="saxpy_fp",
    entry="saxpy",
    category="table1",
    elem="f32",
    vectorizable=True,
    make_inputs=_saxpy_inputs,
    source="""
void saxpy(int n, float a, float *x, float *y) {
    for (int i = 0; i < n; i++)
        y[i] = a * x[i] + y[i];
}
"""))

_register(TABLE1, Kernel(
    name="dscal_fp",
    entry="dscal",
    category="table1",
    elem="f64",
    vectorizable=True,
    make_inputs=_dscal_inputs,
    source="""
void dscal(int n, double a, double *x) {
    for (int i = 0; i < n; i++)
        x[i] = a * x[i];
}
"""))

_register(TABLE1, Kernel(
    name="max_u8",
    entry="max_u8",
    category="table1",
    elem="u8",
    vectorizable=True,
    make_inputs=_u8_inputs,
    source="""
int max_u8(unsigned char *a, int n) {
    int m = 0;
    for (int i = 0; i < n; i++)
        if (a[i] > m)
            m = a[i];
    return m;
}
"""))

_register(TABLE1, Kernel(
    name="sum_u8",
    entry="sum_u8",
    category="table1",
    elem="u8",
    vectorizable=True,
    make_inputs=_u8_inputs,
    source="""
int sum_u8(unsigned char *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++)
        s += a[i];
    return s;
}
"""))

_register(TABLE1, Kernel(
    name="sum_u16",
    entry="sum_u16",
    category="table1",
    elem="u16",
    vectorizable=True,
    make_inputs=_u16_inputs,
    source="""
int sum_u16(unsigned short *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++)
        s += a[i];
    return s;
}
"""))


# ---------------------------------------------------------------------------
# Extra kernels (same code paths, broader coverage)
# ---------------------------------------------------------------------------

def _sdot_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    x = memory.alloc_array(ty.F32, _floats(rng, n))
    y = memory.alloc_array(ty.F32, _floats(rng, n))
    return KernelRun(args=[x, y, n])


def _fir_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    taps = 8
    signal = memory.alloc_array(ty.F32, _floats(rng, n + taps))
    coeff = memory.alloc_array(ty.F32, _floats(rng, taps))
    out = memory.alloc_array(ty.F32, [0.0] * n)
    return KernelRun(args=[signal, coeff, out, n, taps],
                     outputs=[(ty.F32, out, n)])


def _i32_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    a = memory.alloc_array(ty.I32, [rng.randrange(-1000, 1000)
                                    for _ in range(n)])
    return KernelRun(args=[a, n])


def _prefix_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    a = memory.alloc_array(ty.I32, [rng.randrange(0, 100)
                                    for _ in range(n)])
    return KernelRun(args=[a, n], outputs=[(ty.I32, a, n)])


def _histogram_inputs(memory: Memory, n: int, seed: int) -> KernelRun:
    rng = random.Random(seed)
    data = memory.alloc_array(ty.U8, [rng.randrange(256)
                                      for _ in range(n)])
    bins = memory.alloc_array(ty.I32, [0] * 256)
    return KernelRun(args=[data, bins, n], outputs=[(ty.I32, bins, 256)])


_register(EXTRA_KERNELS, Kernel(
    name="sdot",
    entry="sdot",
    category="extra",
    elem="f32",
    vectorizable=True,
    make_inputs=_sdot_inputs,
    source="""
float sdot(float *x, float *y, int n) {
    float s = 0.0f;
    for (int i = 0; i < n; i++)
        s += x[i] * y[i];
    return s;
}
"""))

_register(EXTRA_KERNELS, Kernel(
    name="fir",
    entry="fir",
    category="extra",
    elem="f32",
    vectorizable=False,          # inner loop too short / not matched
    make_inputs=_fir_inputs,
    source="""
void fir(float *signal, float *coeff, float *out, int n, int taps) {
    for (int i = 0; i < n; i++) {
        float acc = 0.0f;
        for (int k = 0; k < taps; k++)
            acc += signal[i + k] * coeff[k];
        out[i] = acc;
    }
}
"""))

_register(EXTRA_KERNELS, Kernel(
    name="minmax_i32",
    entry="spread",
    category="extra",
    elem="i32",
    vectorizable=True,
    make_inputs=_i32_inputs,
    source="""
int spread(int *a, int n) {
    int lo = 2147483647;
    int hi = -2147483647 - 1;
    for (int i = 0; i < n; i++)
        if (a[i] < lo) lo = a[i];
    for (int i = 0; i < n; i++)
        if (a[i] > hi) hi = a[i];
    return hi - lo;
}
"""))

_register(EXTRA_KERNELS, Kernel(
    name="prefix_sum",
    entry="prefix",
    category="extra",
    elem="i32",
    vectorizable=False,          # loop-carried dependence
    make_inputs=_prefix_inputs,
    source="""
void prefix(int *a, int n) {
    for (int i = 1; i < n; i++)
        a[i] = a[i] + a[i - 1];
}
"""))

_register(EXTRA_KERNELS, Kernel(
    name="histogram",
    entry="hist",
    category="extra",
    elem="u8",
    vectorizable=False,          # indirect store
    make_inputs=_histogram_inputs,
    source="""
void hist(unsigned char *data, int *bins, int n) {
    for (int i = 0; i < n; i++)
        bins[data[i]] = bins[data[i]] + 1;
}
"""))

ALL_KERNELS: Dict[str, Kernel] = {**TABLE1, **EXTRA_KERNELS}


def kernel_by_name(name: str) -> Kernel:
    try:
        return ALL_KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; "
                       f"have {sorted(ALL_KERNELS)}") from None
