"""Reference numbers transcribed from the paper, for side-by-side
reporting.  Table 1 of Cohen & Rohou (DAC 2010): relative speedup of
vectorized over scalar bytecode, per kernel and target (the paper also
reports absolute times at 10^6 iterations on x86 and 10^5 on the
others, which are not comparable to simulated cycles and are therefore
not reproduced as absolutes)."""

#: (kernel, target) -> relative speedup from the paper's Table 1
PAPER_TABLE1_RELATIVE = {
    ("vecadd_fp", "x86"): 2.2,
    ("saxpy_fp", "x86"): 2.1,
    ("dscal_fp", "x86"): 1.6,
    ("max_u8", "x86"): 15.6,
    ("sum_u8", "x86"): 5.3,
    ("sum_u16", "x86"): 2.6,
    ("vecadd_fp", "sparc"): 1.4,
    ("saxpy_fp", "sparc"): 1.2,
    ("dscal_fp", "sparc"): 1.5,
    ("max_u8", "sparc"): 0.95,
    ("sum_u8", "sparc"): 0.94,
    ("sum_u16", "sparc"): 0.78,
    ("vecadd_fp", "ppc"): 1.1,
    ("saxpy_fp", "ppc"): 1.3,
    ("dscal_fp", "ppc"): 1.1,
    ("max_u8", "ppc"): 1.4,
    ("sum_u8", "ppc"): 1.5,
    ("sum_u16", "ppc"): 1.5,
}

#: Paper's absolute run times (milliseconds), for the record only.
PAPER_TABLE1_TIMES = {
    ("vecadd_fp", "x86"): (1197, 537),
    ("saxpy_fp", "x86"): (1544, 724),
    ("dscal_fp", "x86"): (1045, 657),
    ("max_u8", "x86"): (3541, 227),
    ("sum_u8", "x86"): (6707, 1277),
    ("sum_u16", "x86"): (6710, 2547),
    ("vecadd_fp", "sparc"): (2810, 1947),
    ("saxpy_fp", "sparc"): (3812, 3239),
    ("dscal_fp", "sparc"): (2608, 1787),
    ("max_u8", "sparc"): (3032, 3188),
    ("sum_u8", "sparc"): (8019, 8559),
    ("sum_u16", "sparc"): (8788, 11256),
    ("vecadd_fp", "ppc"): (999, 886),
    ("saxpy_fp", "ppc"): (1460, 1101),
    ("dscal_fp", "ppc"): (721, 653),
    ("max_u8", "ppc"): (3011, 2209),
    ("sum_u8", "ppc"): (9933, 6817),
    ("sum_u16", "ppc"): (9941, 6671),
}

#: §4 claim for split register allocation (Diouf et al. [18]).
PAPER_SPILL_SAVING_MAX = 0.40
