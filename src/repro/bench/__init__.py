"""Experiment harness.

Each ``run_*`` function reproduces one artifact of the paper's
evaluation (see DESIGN.md §4 for the experiment index) and returns
structured rows; :mod:`repro.bench.tables` renders them in the paper's
layout.  The pytest-benchmark suite under ``benchmarks/`` and the
EXPERIMENTS.md report both drive these functions.
"""

from repro.bench.tables import format_table
from repro.bench.paperdata import PAPER_TABLE1_RELATIVE
from repro.bench.experiments import (
    default_kpn_platforms, run_code_size, run_iterative,
    run_jit_budget, run_kpn, run_split_flow, run_split_regalloc,
    run_table1, service_stats_snapshot,
)

__all__ = [
    "format_table", "PAPER_TABLE1_RELATIVE",
    "run_table1", "run_split_flow", "run_split_regalloc",
    "run_code_size", "run_iterative", "run_kpn", "run_jit_budget",
    "default_kpn_platforms", "service_stats_snapshot",
]
