"""The experiment implementations (one per paper artifact)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.paperdata import PAPER_TABLE1_RELATIVE
from repro.bytecode.encode import encoded_code_size
from repro.core import (
    Core, DeploymentManager, Platform, compare_flows, deploy,
)
from repro.lang import types as ty
from repro.service import default_service
from repro.semantics import Memory
from repro.targets.machine import TargetDesc
from repro.targets.registry import Targetish, as_target, executor_for
from repro.targets.simulator import SimulationResult
from repro.workloads import REGALLOC_CORPUS, TABLE1, ALL_KERNELS
from repro.workloads.kernels import Kernel

#: Table 1's three machines, as registered names — resolved through
#: the target registry at use, never imported from the catalog.
TABLE1_TARGETS = ("x86", "sparc", "ppc")


def service_stats_snapshot(service=None) -> Dict[str, object]:
    """The service counters in machine-readable form.

    Benches attach this to their ``BENCH_*.json`` payloads so per-PR
    trend tooling sees cache hit rates, per-shard traffic and
    per-executor throughput alongside the timings.  Defaults to the
    process-wide service every experiment routes through.
    """
    if service is None:
        service = default_service()
    return service.stats().as_dict()


# ---------------------------------------------------------------------------
# T1 — Table 1: split automatic vectorization
# ---------------------------------------------------------------------------

@dataclass
class Table1Row:
    kernel: str
    target: str
    scalar_cycles: int
    vector_cycles: int

    @property
    def relative(self) -> float:
        return self.scalar_cycles / self.vector_cycles

    @property
    def paper_relative(self) -> Optional[float]:
        return PAPER_TABLE1_RELATIVE.get((self.kernel, self.target))


def _simulate_kernel(kernel: Kernel, compiled, n: int,
                     seed: int) -> SimulationResult:
    memory = Memory(1 << 21)
    run = kernel.prepare(memory, n, seed)
    return executor_for(compiled, memory).run(kernel.entry, run.args)


def run_table1(n: int = 512, seed: int = 7,
               targets: Sequence[Targetish] = TABLE1_TARGETS,
               kernels: Optional[Sequence[str]] = None) -> List[Table1Row]:
    """Scalar vs split-vectorized cycles for every kernel × target."""
    service = default_service()
    targets = [as_target(t) for t in targets]
    rows: List[Table1Row] = []
    names = kernels if kernels is not None else list(TABLE1)
    for name in names:
        kernel = TABLE1[name]
        artifact = service.artifact(kernel.source)
        assert kernel.entry in artifact.vectorized_functions, \
            f"{name} failed to vectorize offline"
        for target in targets:
            scalar = deploy(artifact, target, "offline-only",
                            service=service)
            vector = deploy(artifact, target, "split", service=service)
            r_scalar = _simulate_kernel(kernel, scalar, n, seed)
            r_vector = _simulate_kernel(kernel, vector, n, seed)
            if r_scalar.value != r_vector.value:
                raise AssertionError(
                    f"{name}@{target.name}: scalar/vector results differ")
            rows.append(Table1Row(name, target.name, r_scalar.cycles,
                                  r_vector.cycles))
    return rows


# ---------------------------------------------------------------------------
# F1 / S3a — split compilation flow and JIT budget
# ---------------------------------------------------------------------------

def run_split_flow(kernel_name: str = "saxpy_fp",
                   target: Targetish = "x86",
                   n: int = 512, seed: int = 7,
                   flows: Optional[Sequence] = None) -> List:
    """The deployment flows of Figure 1 on one kernel.

    ``flows`` defaults to every registered flow (see
    :mod:`repro.flows`) — the paper's three plus ``split-O3`` and
    ``adaptive``, and any flow user code registered.
    """
    service = default_service()
    kernel = TABLE1[kernel_name]
    artifact = service.artifact(kernel.source)

    def make_args(memory: Memory):
        return kernel.prepare(memory, n, seed).args

    return compare_flows(artifact, target, kernel.entry, make_args,
                         flows=flows, service=service)


def run_jit_budget(target: Targetish = "x86", n: int = 256,
                   seed: int = 7) -> List[Tuple[str, int, int, int, float]]:
    """Aggregate online compile cost per flow over all Table 1 kernels.

    Returns rows (flow, online_work, online_analysis_work, cycles,
    online_time_ms).
    """
    from repro.core.online import FLOWS

    totals: Dict[str, List[float]] = {}
    for name in TABLE1:
        for report in run_split_flow(name, target, n, seed,
                                     flows=FLOWS):
            entry = totals.setdefault(report.flow, [0, 0, 0, 0.0])
            entry[0] += report.online_work
            entry[1] += report.online_analysis_work
            entry[2] += report.cycles
            entry[3] += report.online_time
    return [(flow, int(v[0]), int(v[1]), int(v[2]), v[3] * 1000.0)
            for flow, v in totals.items()]


# ---------------------------------------------------------------------------
# S4a — split register allocation
# ---------------------------------------------------------------------------

def _regalloc_inputs(name: str, memory: Memory, n: int,
                     seed: int) -> List:
    rng = random.Random(seed)
    if name == "poly8":
        c = memory.alloc_array(ty.I32, [rng.randrange(-9, 9)
                                        for _ in range(8)])
        xs = memory.alloc_array(ty.I32, [rng.randrange(-99, 99)
                                         for _ in range(n)])
        return [c, xs, n]
    if name == "stats":
        a = memory.alloc_array(ty.I32, [rng.randrange(-999, 999)
                                        for _ in range(n)])
        return [a, n]
    if name == "butterfly":
        re = memory.alloc_array(ty.I32, [rng.randrange(-99, 99)
                                         for _ in range(n)])
        im = memory.alloc_array(ty.I32, [rng.randrange(-99, 99)
                                         for _ in range(n)])
        return [re, im, n]
    if name == "checksum":
        data = memory.alloc_array(ty.U8, [rng.randrange(256)
                                          for _ in range(n)])
        return [data, n]
    if name == "mat4":
        a = memory.alloc_array(ty.I32, [rng.randrange(-9, 9)
                                        for _ in range(16)])
        b = memory.alloc_array(ty.I32, [rng.randrange(-9, 9)
                                        for _ in range(16)])
        c = memory.alloc_array(ty.I32, [0] * 16)
        return [a, b, c]
    raise KeyError(name)


@dataclass
class RegAllocRow:
    function: str
    k: int
    local_spill_ops: int          # 2010-era baseline JIT allocator
    linear_spill_ops: int         # plain linear scan (furthest end)
    annotated_spill_ops: int      # split register allocation
    annotated_static: int = 0

    @property
    def saving_vs_local(self) -> float:
        if self.local_spill_ops == 0:
            return 0.0
        return 1.0 - self.annotated_spill_ops / self.local_spill_ops

    @property
    def saving_vs_linear(self) -> float:
        if self.linear_spill_ops == 0:
            return 0.0
        return 1.0 - self.annotated_spill_ops / self.linear_spill_ops


def run_split_regalloc(k_values: Sequence[int] = (6, 8, 10, 12, 16),
                       n: int = 128, seed: int = 5) -> List[RegAllocRow]:
    """Dynamic spill traffic under three online allocators, per K.

    Vectorization is disabled so the deployments differ only in the
    register allocator.  'local' is the era-appropriate baseline the
    paper's 40 %-fewer-spills claim is measured against: a JIT that
    keeps program variables in memory and allocates registers only
    inside expressions.
    """
    from repro.jit import JITCompiler, JITOptions

    modes = {
        "local": JITOptions(use_annotations=False, regalloc_mode="local"),
        "linear": JITOptions(use_annotations=False,
                             regalloc_mode="linear"),
        "annotated": JITOptions(use_annotations=True,
                                regalloc_mode="annotated"),
    }
    rows: List[RegAllocRow] = []
    for name, source in REGALLOC_CORPUS.items():
        artifact = default_service().artifact(source, do_vectorize=False)
        for k in k_values:
            target = replace(as_target("x86"), name=f"x86k{k}",
                             int_regs=k)
            spills = {}
            static = {}
            values = {}
            for mode, options in modes.items():
                compiled = JITCompiler(target, options).compile_module(
                    artifact.bytecode)
                memory = Memory(1 << 20)
                args = _regalloc_inputs(name, memory, n, seed)
                sim = executor_for(compiled, memory).run(name, args)
                spills[mode] = sim.spill_loads + sim.spill_stores
                static[mode] = sum(f.spill_slot_count
                                   for f in compiled.functions.values())
                values[mode] = sim.value
            assert len(set(map(repr, values.values()))) == 1, \
                f"{name}@K={k}: allocator changed the result"
            rows.append(RegAllocRow(
                function=name, k=k,
                local_spill_ops=spills["local"],
                linear_spill_ops=spills["linear"],
                annotated_spill_ops=spills["annotated"],
                annotated_static=static["annotated"]))
    return rows


# ---------------------------------------------------------------------------
# S2a — code size
# ---------------------------------------------------------------------------

@dataclass
class CodeSizeRow:
    kernel: str
    pvi_bytes: int
    native: Dict[str, int] = field(default_factory=dict)


def run_code_size(targets: Sequence[Targetish] = TABLE1_TARGETS) \
        -> List[CodeSizeRow]:
    service = default_service()
    targets = [as_target(t) for t in targets]
    rows: List[CodeSizeRow] = []
    for name, kernel in ALL_KERNELS.items():
        artifact = service.artifact(kernel.source, do_vectorize=False)
        pvi = sum(encoded_code_size(f) for f in artifact.scalar_bytecode)
        row = CodeSizeRow(kernel=name, pvi_bytes=pvi)
        for target in targets:
            compiled = deploy(artifact, target, "offline-only",
                              service=service)
            row.native[target.name] = compiled.total_code_bytes
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# S4b — iterative compilation
# ---------------------------------------------------------------------------

@dataclass
class IterativeRow:
    kernel: str
    target: str
    default_cycles: int
    best_cycles: int
    best_label: str
    evaluations: int

    @property
    def speedup(self) -> float:
        return self.default_cycles / self.best_cycles


def run_iterative(kernel_names: Optional[Sequence[str]] = None,
                  target: Targetish = "x86", budget: int = 16,
                  n: int = 192) -> List[IterativeRow]:
    from repro.iterative import hill_climb

    target = as_target(target)
    names = kernel_names if kernel_names is not None else \
        ["saxpy_fp", "sum_u8", "sdot", "prefix_sum", "fir"]
    rows = []
    for name in names:
        kernel = ALL_KERNELS[name]
        result = hill_climb(kernel, target, budget=budget, n=n)
        rows.append(IterativeRow(
            kernel=name, target=target.name,
            default_cycles=result.default_cycles,
            best_cycles=result.best_cycles,
            best_label=result.best_label,
            evaluations=result.evaluations))
    return rows


# ---------------------------------------------------------------------------
# S4c — KPN on a heterogeneous platform
# ---------------------------------------------------------------------------

@dataclass
class KPNRow:
    platform: str
    host_only: float
    heterogeneous: float
    assignment: Dict[str, str] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.host_only / self.heterogeneous


def default_kpn_platforms() -> List[Platform]:
    """The three S4c platforms — compositions of registered target
    names (the registry resolves them at Core construction)."""
    return [
        Platform("host x4", [Core("host", 4)]),
        Platform("host + dsp", [Core("host", 2), Core("dsp", 1)]),
        Platform("host + dsp + big", [Core("host", 2), Core("dsp", 1),
                                      Core("x86", 1)]),
    ]


def run_kpn(blocks: int = 64,
            platforms: Optional[Sequence[Platform]] = None) \
        -> List[KPNRow]:
    from repro.kpn import (
        deploy_actor_images, estimate_costs, greedy_map, host_only_map,
        simulate_makespan,
    )
    from repro.workloads.pipeline import PIPELINE_SOURCE, build_pipeline

    service = default_service()
    artifact = service.artifact(PIPELINE_SOURCE)
    network = build_pipeline()
    if platforms is None:
        platforms = default_kpn_platforms()
    rows: List[KPNRow] = []
    for platform in platforms:
        # The three platforms overlap in core kinds; the service memo
        # means each kind's JIT runs once across the whole experiment.
        manager = DeploymentManager(platform, service=service)
        images = manager.install(artifact)
        costs = estimate_costs(network, images, platform)
        baseline = simulate_makespan(
            network, platform, host_only_map(network, platform), costs,
            blocks)
        mapping = greedy_map(network, platform, costs)
        mapped = simulate_makespan(network, platform, mapping, costs,
                                   blocks)
        actor_images = deploy_actor_images(network, artifact, platform,
                                           mapping, service)
        for actor, core in mapping.assignment.items():
            kind = platform.core_list()[core].name
            assert actor_images[actor] is images[kind], \
                "service returned a different image than the install"
        cores = platform.core_list()
        rows.append(KPNRow(
            platform=platform.name,
            host_only=baseline,
            heterogeneous=mapped,
            assignment={actor: cores[core].name
                        for actor, core in mapping.assignment.items()}))
    return rows
