"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
