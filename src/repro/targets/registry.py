"""First-class target registry: processors and backends as data.

The paper's claim is that one virtualized bytecode deploys across a
*heterogeneous* catalog of processors.  This module makes the catalog
an open axis, mirroring :mod:`repro.flows`: a :class:`TargetRegistry`
holds :class:`~repro.targets.machine.TargetDesc` entries by name, and
every layer — ``core.online`` / ``core.platform``, ``compare_flows``,
the compilation service, the KPN mapper, the iterative search and the
experiment harness — resolves targets through it.  Adding a processor
is one :func:`register_target` call; it is immediately deployable,
schedulable and cacheable, with no edits anywhere else.

The second half is the :class:`Backend` protocol.  What used to be
implicit convention — "compile with the JIT, execute with the
simulator, warm with ``warm_module``, cost with ``target.costs``" —
is now an object a target names by its ``backend`` field:

* :meth:`Backend.compile` — the codegen entry point (bytecode +
  target + flow -> executable image);
* :meth:`Backend.executor` — construct an executor for an image
  (something with ``run(name, args) -> SimulationResult``);
* :meth:`Backend.warm` — prepay the image's predecode caches;
* :meth:`Backend.cost_model` / :meth:`Backend.size_model` — the
  models the backend charges against.

The built-in :class:`NativeBackend` is the register-machine JIT +
cycle simulator pipeline; :mod:`repro.targets.stackvm` registers a
second, structurally different backend (a wasm32-style stack machine
whose codegen skips register allocation entirely), proving a backend
can be added without touching ``repro`` internals.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.targets.machine import CostModel, SizeModel, TargetDesc

Targetish = Union[str, TargetDesc]


class UnknownTargetError(KeyError, ValueError):
    """Raised by every entry point handed a target name that is not
    registered; the message lists what *is* registered.

    Subclasses both :class:`KeyError` (what raw catalog lookups used
    to raise, so legacy ``except KeyError`` call sites keep working)
    and :class:`ValueError` (matching ``UnknownFlowError`` ergonomics).
    """

    def __init__(self, name: object, known: Tuple[str, ...]):
        self.target_name = name
        self.known = known
        message = (f"unknown target {name!r}; registered targets: "
                   f"{', '.join(known) if known else '(none)'}")
        ValueError.__init__(self, message)

    def __str__(self) -> str:          # KeyError would repr() the args
        return self.args[0]


class UnknownBackendError(KeyError, ValueError):
    """A target names a backend that is not registered."""

    def __init__(self, name: object, known: Tuple[str, ...]):
        self.backend_name = name
        self.known = known
        message = (f"unknown backend {name!r}; registered backends: "
                   f"{', '.join(known) if known else '(none)'}")
        ValueError.__init__(self, message)

    def __str__(self) -> str:
        return self.args[0]


# ---------------------------------------------------------------------------
# the backend protocol
# ---------------------------------------------------------------------------

class Backend:
    """What a target's toolchain must provide.

    Subclass and override :meth:`compile` and :meth:`executor`; the
    warm hook and the cost/size accessors have sensible defaults.  An
    image returned by :meth:`compile` must expose the accounting
    surface the service and ``compare_flows`` read: ``target_name``,
    ``functions`` (values carrying ``jit_time``), ``total_code_bytes``,
    ``total_jit_work``, ``total_jit_analysis_work`` and
    ``total_jit_pass_work``.  The executor returned by
    :meth:`executor` must expose ``run(name, args)`` returning a
    :class:`~repro.targets.simulator.SimulationResult`-compatible
    object (``value``, ``cycles``, ``instructions``).
    """

    #: the name targets reference via ``TargetDesc.backend``
    name = "backend"

    def compile(self, bytecode, target: TargetDesc, flow):
        """Codegen entry point: bytecode module -> executable image."""
        raise NotImplementedError

    def executor(self, image, memory=None, *, fuel: Optional[int] = None,
                 engine: Optional[str] = None):
        """Construct an executor ready to ``run(name, args)``."""
        raise NotImplementedError

    def warm(self, image):
        """Prepay the image's predecode caches (default: no-op)."""
        return image

    def cost_model(self, target: TargetDesc) -> CostModel:
        return target.costs

    def size_model(self, target: TargetDesc) -> SizeModel:
        return target.sizes


class NativeBackend(Backend):
    """The default toolchain: register-machine JIT + cycle simulator.

    This is the paper's online half verbatim — decode to LIR,
    optional online analyses, scalarize, allocate, emit — packaged
    behind the protocol so non-default backends are peers, not
    special cases.  Imports are deferred: the JIT itself resolves
    targets through this registry.
    """

    name = "native"

    def compile(self, bytecode, target: TargetDesc, flow):
        from repro.jit.compiler import JITCompiler
        return JITCompiler(target, flow.jit).compile_module(bytecode)

    def executor(self, image, memory=None, *, fuel: Optional[int] = None,
                 engine: Optional[str] = None):
        from repro.targets.simulator import DEFAULT_FUEL, Simulator
        return Simulator(image, memory,
                         fuel=DEFAULT_FUEL if fuel is None else fuel,
                         engine=engine)

    def warm(self, image):
        from repro.targets.dispatch import warm_module
        return warm_module(image)


# ---------------------------------------------------------------------------
# the registries
# ---------------------------------------------------------------------------

class _Registry:
    """Thread-safe name -> object map (insertion-ordered).

    Shared machinery of the target and backend registries: subclasses
    set ``kind`` (the registered type, passed through :meth:`get`
    untouched) and ``what`` (for messages), and override
    :meth:`_validate` / :meth:`_missing`.
    """

    kind: type = object
    what: str = "entry"

    def __init__(self):
        self._entries: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _validate(self, entry) -> None:
        """Registration-time check; raise to reject the entry."""

    def _missing(self, name) -> Exception:
        raise NotImplementedError

    def register(self, entry, replace: bool = False):
        if not isinstance(entry, self.kind):
            raise TypeError(f"expected a {self.kind.__name__}, "
                            f"got {type(entry).__name__}")
        self._validate(entry)
        with self._lock:
            if not replace and entry.name in self._entries:
                raise ValueError(f"{self.what} {entry.name!r} is "
                                 f"already registered "
                                 f"(pass replace=True)")
            self._entries[entry.name] = entry
        return entry

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def get(self, name):
        if isinstance(name, self.kind):
            return name
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise self._missing(name)
        return entry

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def values(self) -> Tuple:
        with self._lock:
            return tuple(self._entries.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator:
        return iter(self.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class TargetRegistry(_Registry):
    """Thread-safe name -> :class:`TargetDesc` map (insertion-ordered)."""

    kind = TargetDesc
    what = "target"

    def _validate(self, target: TargetDesc) -> None:
        if target.backend not in BACKENDS:
            raise UnknownBackendError(target.backend, BACKENDS.names())

    def _missing(self, name) -> Exception:
        return UnknownTargetError(name, self.names())

    def targets(self) -> Tuple[TargetDesc, ...]:
        return self.values()


class BackendRegistry(_Registry):
    """Thread-safe name -> :class:`Backend` map."""

    kind = Backend
    what = "backend"

    def _missing(self, name) -> Exception:
        return UnknownBackendError(name, self.names())


#: the process-wide registries every layer resolves targets through
REGISTRY = TargetRegistry()
BACKENDS = BackendRegistry()

BACKENDS.register(NativeBackend())


def register_target(target: TargetDesc,
                    replace: bool = False) -> TargetDesc:
    """Register a target globally; it is immediately deployable via
    the service, comparable in ``compare_flows``, schedulable by the
    KPN mapper and addressable by name everywhere."""
    return REGISTRY.register(target, replace=replace)


def unregister_target(name: str) -> None:
    REGISTRY.unregister(name)


def get_target(name: Targetish) -> TargetDesc:
    return REGISTRY.get(name)


def as_target(target: Targetish) -> TargetDesc:
    """Accept either a registered name or a TargetDesc object (every
    public entry point's contract)."""
    return REGISTRY.get(target)


def target_names() -> Tuple[str, ...]:
    return REGISTRY.names()


def registered_targets() -> Tuple[TargetDesc, ...]:
    return REGISTRY.targets()


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register a backend; targets reference it by ``backend=name``."""
    return BACKENDS.register(backend, replace=replace)


def get_backend(name: Union[str, Backend]) -> Backend:
    return BACKENDS.get(name)


def backend_names() -> Tuple[str, ...]:
    return BACKENDS.names()


def backend_for(target: Targetish) -> Backend:
    """The backend a target's descriptor names."""
    return BACKENDS.get(as_target(target).backend)


def executor_for(image, memory=None, *, fuel: Optional[int] = None,
                 engine: Optional[str] = None):
    """Construct the right executor for a compiled image.

    An image that names its builder (``image.backend_name``, which
    every non-native backend's image should carry) gets that backend
    directly — registered or not.  Otherwise the image's
    ``target_name`` resolves through the registry; images of
    unregistered plain targets (ad-hoc descriptors built with
    ``dataclasses.replace``, hand-assembled test modules) fall back
    to the native backend, which is what produced them.
    """
    backend_name = getattr(image, "backend_name", None)
    if backend_name is not None:
        backend = BACKENDS.get(backend_name)
    else:
        try:
            backend = backend_for(image.target_name)
        except (UnknownTargetError, AttributeError):
            backend = BACKENDS.get(NativeBackend.name)
    return backend.executor(image, memory, fuel=fuel, engine=engine)


# ---------------------------------------------------------------------------
# the built-in catalog
# ---------------------------------------------------------------------------

def _register_builtin_targets() -> None:
    from repro.targets import catalog
    for target in catalog.TARGETS.values():
        REGISTRY.register(target, replace=True)


_register_builtin_targets()
