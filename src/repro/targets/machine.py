"""Target descriptions and cycle cost models."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict

from repro.lang import types as ty


@dataclass(frozen=True)
class CostModel:
    """Cycles per operation class.

    Deliberately simple (static per-opcode costs, no cache or pipeline
    state): Table 1's cross-target *shape* comes from ISA capability
    differences, not microarchitectural detail, and a static model
    keeps every experiment deterministic and explainable.
    """
    alu: int = 1
    mul: int = 3
    div: int = 18
    fp_alu: int = 2
    fp_mul: int = 3
    fp_div: int = 16
    load: int = 2
    store: int = 2
    subword_mem_extra: int = 0    # extra cycles for u8/u16 loads/stores
    move: int = 1
    cmp: int = 1
    select: int = 1
    branch: int = 2               # conditional branch
    jump: int = 1
    call_base: int = 6
    call_per_arg: int = 1
    frame: int = 1
    # SIMD (only meaningful when the target has SIMD)
    vec_alu: int = 1
    vec_mul: int = 2
    vec_div: int = 20
    vec_load: int = 2
    vec_store: int = 2
    vec_splat: int = 2
    vec_reduce: int = 4

    def scalar_op(self, op: str, value_ty) -> int:
        is_float = ty.is_float(value_ty)
        if op in ("add", "sub", "and", "or", "xor", "shl", "shr",
                  "min", "max"):
            return self.fp_alu if is_float else self.alu
        if op == "mul":
            return self.fp_mul if is_float else self.mul
        if op in ("div", "rem"):
            return self.fp_div if is_float else self.div
        return self.alu

    def vector_op(self, op: str) -> int:
        if op == "mul":
            return self.vec_mul
        if op in ("div", "rem"):
            return self.vec_div
        return self.vec_alu

    def mem(self, kind: str, value_ty) -> int:
        base = self.load if kind == "load" else self.store
        if isinstance(value_ty, ty.IntType) and value_ty.bits < 32:
            base += self.subword_mem_extra
        return base


@dataclass(frozen=True)
class SizeModel:
    """Bytes per instruction, for the code-size experiment (S2a)."""
    fixed: int = 0                # 0 = variable length (x86 style)
    alu_bytes: int = 3
    mem_bytes: int = 4
    imm_extra: int = 2            # extra bytes when an immediate operand
    branch_bytes: int = 2
    call_bytes: int = 5
    vec_bytes: int = 5
    #: per-function prologue + epilogue (callee-saved spills, frame
    #: setup/teardown) — absent from bytecode, real in native code
    prologue_bytes: int = 10

    def size_of(self, kind: str, has_imm: bool) -> int:
        if self.fixed:
            return self.fixed
        table = {"alu": self.alu_bytes, "mem": self.mem_bytes,
                 "branch": self.branch_bytes, "call": self.call_bytes,
                 "vec": self.vec_bytes}
        return table.get(kind, self.alu_bytes) + \
            (self.imm_extra if has_imm else 0)


@dataclass(frozen=True)
class TargetDesc:
    """A simulated processor the JIT can compile for.

    Frozen and built from plain values, so descriptors are hashable,
    picklable (they cross the ``ProcessPoolExecutor`` seam with the
    deployment pool) and JSON-describable (the service memo keys on
    :meth:`cache_key`).  ``backend`` names the registered
    :class:`~repro.targets.registry.Backend` that compiles and executes
    code for this target — a *name*, not an object, so descriptors stay
    picklable; the default is the native register-machine JIT.
    """
    name: str
    description: str
    has_simd: bool
    int_regs: int                 # allocatable integer registers
    flt_regs: int                 # allocatable floating-point registers
    vec_regs: int                 # vector registers (SIMD targets)
    costs: CostModel = field(default_factory=CostModel)
    sizes: SizeModel = field(default_factory=SizeModel)
    #: relative clock of this core in a heterogeneous SoC (1.0 = host);
    #: cycles are divided by this when comparing across cores.
    clock_scale: float = 1.0
    #: registered backend name (see :mod:`repro.targets.registry`)
    backend: str = "native"

    def regs_of_class(self, reg_class: str) -> int:
        return {"int": self.int_regs, "flt": self.flt_regs,
                "vec": self.vec_regs}[reg_class]

    def to_dict(self) -> Dict[str, object]:
        """The full configuration as plain JSON-able data."""
        return asdict(self)

    def cache_key(self) -> str:
        """Stable identity for service memo keys: the name plus a
        digest of the full configuration (register files, cost and
        size models, clock, backend), so two targets sharing a name
        but differing anywhere else can never alias a cached image.

        Memoized on the (frozen, therefore immutable) descriptor —
        the deployment memo computes it on every lookup, including
        pure hits, and the digest walk is not free."""
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            payload = json.dumps(self.to_dict(), sort_keys=True)
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            cached = f"{self.name}#{digest[:12]}"
            object.__setattr__(self, "_cache_key", cached)
        return cached
