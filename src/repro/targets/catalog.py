"""The simulated processor catalog.

Register-file sizes are "allocatable registers as a JIT back-end sees
them" (total architectural registers minus ABI-reserved, scratch and
assembler temporaries), in the spirit of Mono's per-ISA back-ends the
paper ran on.  They matter a lot: the scalarizing JITs expand 16-lane
``u8`` vectors into 16 live scalars, which fits PowerPC's 28
allocatable GPRs but thrashes UltraSparc's 16 — reproducing Table 1's
"slightly worse to better than scalar" split without per-kernel tuning.
"""

from repro.targets.machine import CostModel, SizeModel, TargetDesc

#: x86 with 128-bit SIMD (SSE-class).  Variable-length encoding,
#: cheap branches (good predictor), powerful vector unit.
X86 = TargetDesc(
    name="x86",
    description="x86-64 class core with 128-bit SIMD (SSE)",
    has_simd=True,
    int_regs=12,
    flt_regs=14,
    vec_regs=14,
    costs=CostModel(
        # Pipelined L1 loads and fused compare-and-branch retire in one
        # cycle; unaligned 128-bit memory ops split into two halves
        # (SSE-era movups), hence the 3-cycle vector memory cost.
        alu=1, mul=3, div=18, fp_alu=2, fp_mul=3, fp_div=16,
        load=1, store=1, subword_mem_extra=0,
        branch=1, jump=1,
        vec_alu=1, vec_mul=2, vec_load=3, vec_store=3,
        vec_splat=2, vec_reduce=4,
    ),
    sizes=SizeModel(fixed=0, alu_bytes=3, mem_bytes=4, imm_extra=2,
                    branch_bytes=2, call_bytes=5, vec_bytes=5,
                    prologue_bytes=10),
)

#: UltraSparc-class RISC: no SIMD, modest allocatable integer file
#: (register windows reserve a lot), fixed 4-byte encoding, sub-word
#: memory traffic costs extra (alignment fix-ups in the JIT's code).
SPARC = TargetDesc(
    name="sparc",
    description="UltraSparc-class in-order RISC, no SIMD",
    has_simd=False,
    int_regs=16,
    flt_regs=28,
    vec_regs=0,
    costs=CostModel(
        # Sub-word memory traffic costs two extra cycles: UltraSparc's
        # JIT-emitted byte/halfword accesses go through alignment and
        # zero-extension fix-ups.  The scalar loop pays this once per
        # element; the memory-temp vector emulation pays it three times
        # (load lane, park lane, re-read lane), which is where Table
        # 1's sub-1.0 UltraSparc entries come from.
        alu=1, mul=4, div=24, fp_alu=2, fp_mul=3, fp_div=18,
        load=2, store=2, subword_mem_extra=2,
        branch=2, jump=1,
    ),
    sizes=SizeModel(fixed=4, prologue_bytes=24),
)

#: PowerPC-class RISC: no SIMD (pre-AltiVec config, as in the paper's
#: JIT which ignored the builtins), big register file, cheap branches
#: (branch unit), fixed 4-byte encoding.
PPC = TargetDesc(
    name="ppc",
    description="PowerPC-class RISC, vector builtins scalarized",
    has_simd=False,
    int_regs=28,
    flt_regs=28,
    vec_regs=0,
    costs=CostModel(
        alu=1, mul=3, div=20, fp_alu=2, fp_mul=3, fp_div=18,
        load=2, store=2, subword_mem_extra=0,
        branch=1, jump=1,
    ),
    sizes=SizeModel(fixed=4, prologue_bytes=24),
)

#: A VLIW DSP accelerator for the heterogeneous-SoC experiments:
#: SIMD-capable, fast clock-for-clock on dense arithmetic, terrible at
#: branchy control code (no branch prediction, deep exposed pipeline).
DSP = TargetDesc(
    name="dsp",
    description="VLIW DSP accelerator: wide SIMD, expensive control flow",
    has_simd=True,
    int_regs=24,
    flt_regs=24,
    vec_regs=16,
    costs=CostModel(
        alu=1, mul=2, div=30, fp_alu=1, fp_mul=1, fp_div=24,
        load=1, store=1, subword_mem_extra=0,
        branch=6, jump=3, call_base=12,
        vec_alu=1, vec_mul=1, vec_load=1, vec_store=1,
        vec_splat=1, vec_reduce=2,
    ),
    sizes=SizeModel(fixed=8, prologue_bytes=32),  # wide instruction words
    clock_scale=1.5,
)

#: The host microcontroller of the SoC: small, scalar, slow clock.
HOST = TargetDesc(
    name="host",
    description="host microcontroller: scalar in-order, small register file",
    has_simd=False,
    int_regs=10,
    flt_regs=8,
    vec_regs=0,
    costs=CostModel(
        alu=1, mul=5, div=30, fp_alu=4, fp_mul=6, fp_div=30,
        load=2, store=2, subword_mem_extra=0,
        branch=2, jump=1,
    ),
    sizes=SizeModel(fixed=2, prologue_bytes=8),   # compressed 16-bit encoding
    clock_scale=0.5,
)

#: ARM Cortex-A-class embedded core with NEON: 128-bit SIMD like x86,
#: but a RISC register file and fixed 4-byte encoding like PowerPC —
#: the RISC-V/ARM-class embedded cores the related virtualization work
#: targets.  Pure data: this entry is the whole port.
ARM = TargetDesc(
    name="arm",
    description="ARM Cortex-A-class embedded core with 128-bit NEON",
    has_simd=True,
    int_regs=14,
    flt_regs=16,
    vec_regs=16,
    costs=CostModel(
        # NEON-era costs: single-cycle vector ALU, 2-cycle vector
        # multiplies, aligned 128-bit memory ops at 2 cycles (no
        # unaligned split penalty, unlike SSE-era movups).
        alu=1, mul=3, div=20, fp_alu=2, fp_mul=3, fp_div=17,
        load=2, store=2, subword_mem_extra=0,
        branch=1, jump=1,
        vec_alu=1, vec_mul=2, vec_load=2, vec_store=2,
        vec_splat=1, vec_reduce=3,
    ),
    sizes=SizeModel(fixed=4, prologue_bytes=16),
    clock_scale=1.2,
)

#: the built-in native-backend catalog; the authoritative, *open* set
#: lives in :mod:`repro.targets.registry` (which also holds targets on
#: other backends, e.g. the ``wasm32`` stack machine).
TARGETS = {t.name: t for t in (X86, SPARC, PPC, DSP, HOST, ARM)}


def target_by_name(name: str) -> TargetDesc:
    """Legacy lookup, now registry-backed: resolves any *registered*
    target (built-in or user-registered) and raises the unified
    :class:`~repro.targets.registry.UnknownTargetError` (a
    ``KeyError`` subclass, so old call sites keep working)."""
    from repro.targets.registry import get_target
    return get_target(name)
