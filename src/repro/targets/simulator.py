"""Instruction-level simulator for compiled machine code.

Executes :class:`~repro.targets.isa.CompiledModule` against the same
flat :class:`~repro.semantics.Memory` the VM uses, accumulating the
per-instruction cycle costs assigned at code generation.  Simulated
cycles are this reproduction's stand-in for the paper's measured run
times (the substitution is documented in DESIGN.md).

Two engines share this class (see :mod:`repro.engine`): the default
``fast`` engine dispatches through predecoded handler closures over
flat-list register files (:mod:`repro.targets.dispatch`); the
``reference`` engine is the original ladder in :meth:`Simulator._call`,
kept verbatim as the oracle the differential suite compares against.
Cycle counts, instruction counts and traps are identical by
construction — the engines differ only in host speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine import (
    REFERENCE, TIER2, osr_enabled, resolve_engine,
    osr_threshold as engine_osr_threshold,
)
from repro.lang import types as ty
from repro.semantics import (
    Memory, TrapError, eval_binop, eval_cast, eval_cmp, eval_unop,
    vec_binop, vec_reduce, vec_splat,
)
from repro.targets import dispatch
from repro.targets.dispatch import UNSET
from repro.targets.isa import CompiledFunction, CompiledModule, MInst

DEFAULT_FUEL = 200_000_000


@dataclass
class SimulationResult:
    value: object = None
    cycles: int = 0
    instructions: int = 0
    spill_loads: int = 0
    spill_stores: int = 0
    branches: int = 0
    calls: int = 0

    def merge_counts(self, other: "SimulationResult") -> None:
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.spill_loads += other.spill_loads
        self.spill_stores += other.spill_stores
        self.branches += other.branches
        self.calls += other.calls


class Simulator:
    """Executes compiled functions, counting cycles."""

    def __init__(self, module: CompiledModule,
                 memory: Optional[Memory] = None,
                 fuel: int = DEFAULT_FUEL,
                 engine: Optional[str] = None,
                 osr: Optional[bool] = None,
                 osr_threshold: Optional[int] = None):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.fuel = fuel
        self._executed = 0
        self.engine = resolve_engine(engine)
        #: tier-2 promotion policy: the ``tier2`` engine forces the
        #: whole-function compiler for every function; the default
        #: ``fast`` engine promotes only JIT-hinted functions
        self._tier2_all = self.engine == TIER2
        #: on-stack replacement: a call spinning in the block tier
        #: enters tier-2 at a hot loop header (and a deopted call may
        #: re-enter the same way).  ``None`` defers to ``PVI_OSR``.
        self._osr = self.engine != REFERENCE and \
            (osr_enabled() if osr is None else bool(osr))
        self._osr_threshold = engine_osr_threshold() \
            if osr_threshold is None else max(1, int(osr_threshold))
        #: tiering observability: calls entered via tier-2 at pc 0,
        #: successful mid-call OSR entries, and the subset of OSR
        #: entries that re-entered after an earlier tier-2 deopt in
        #: the same call
        self.tier2_promotions = 0
        self.osr_entries = 0
        self.deopt_reentries = 0
        #: per-simulator memo of validated predecodes, by function name
        self._predecoded: Dict[str, dispatch.PredecodedMachine] = {}
        self._ret = None

    def tiering_stats(self) -> Dict[str, int]:
        """The tiering counters in machine-readable form (bench JSON
        attaches these so BENCH files prove the policy fired)."""
        return {"tier2_promotions": self.tier2_promotions,
                "osr_entries": self.osr_entries,
                "deopt_reentries": self.deopt_reentries}

    def run(self, name: str, args: List) -> SimulationResult:
        """Call function ``name``; returns result + counters."""
        func = self.module[name]
        if len(args) != len(func.param_locs):
            raise TrapError(f"{name} expects {len(func.param_locs)} args")
        result = SimulationResult()
        if self.engine == REFERENCE:
            result.value = self._call(func, list(args), result)
        else:
            # Revalidate against the content token at every public run
            # (in-place edits between runs are picked up on a reused
            # simulator; callees stay on the O(1) name memo).
            self._predecoded[func.name] = dispatch.predecode_machine(
                func, self.module)
            result.value = self._call_fast(func, list(args), result)
        return result

    # -- fast engine: predecoded closure threading -----------------------------

    def _predecode(self, func: CompiledFunction):
        pre = self._predecoded.get(func.name)
        if pre is None:
            pre = dispatch.predecode_machine(func, self.module)
            self._predecoded[func.name] = pre
        return pre

    def _call_fast(self, func: CompiledFunction, args: List,
                   counters: SimulationResult):
        pre = self._predecode(func)
        n_int, n_flt, n_vec = pre.reg_counts
        ri: List = [UNSET] * n_int
        rf: List = [UNSET] * n_flt
        rv: List = [UNSET] * n_vec
        slots: Dict[int, object] = {}
        for (cls, index), value in zip(pre.param_locs, args):
            if cls < 0:
                slots[index] = value
            else:
                (ri, rf, rv)[cls][index] = value
        memory = self.memory
        frame_base = memory.push_frame(pre.frame_bytes) \
            if pre.frame_bytes else 0
        handlers = pre.handlers
        pc = 0
        deopted = False
        t2 = None
        try:
            if self._tier2_all or pre.tier2_hint:
                t2 = pre.tier2()
                if t2 is not None:
                    # Whole-function tier: runs to completion (-1) or
                    # deopts by returning a block leader — undebited —
                    # for the block-threaded trampoline below to
                    # continue from (which re-debits and meters the
                    # fuel trap exactly as usual).
                    self.tier2_promotions += 1
                    pc = t2(ri, rf, rv, slots, frame_base, memory,
                            self, counters)
                    deopted = pc >= 0
            if pc >= 0 and self._osr and pre.osr_leaders:
                pc = self._run_osr(pre, t2, pc, deopted, ri, rf, rv,
                                   slots, frame_base, counters)
            while pc >= 0:
                try:
                    pc = handlers[pc](ri, rf, rv, slots, frame_base,
                                      memory, self, counters)
                except dispatch.MeterTrip as trip:
                    pc = self._run_metered(trip.pc, pre.raw, ri, rf, rv,
                                           slots, frame_base, counters)
        finally:
            if pre.frame_bytes:
                memory.pop_frame(frame_base, pre.frame_bytes)
        return self._ret

    #: per-call counter value that retires an OSR leader (a declined
    #: entry can never succeed later in the same call — the counter is
    #: parked so far negative it cannot re-cross the threshold)
    _OSR_DISABLED = -(1 << 62)

    def _run_osr(self, pre, t2, pc: int, deopted: bool, ri, rf, rv,
                 slots, frame_base, counters) -> int:
        """Block-tier trampoline with back-edge hotness counters.

        Identical to the plain loop in :meth:`_call_fast` except that
        every backward transfer to a candidate loop header is counted;
        at the threshold the live register files — plus the spill
        slots and the fuel/cycle counters — *are* the snapshot, and
        ``_t2`` is entered at that leader (on-stack replacement).  The
        tier-2 prologue revalidates its must-written facts from the
        snapshot and declines by returning the entry pc untouched, in
        which case that leader is retired for the rest of the call.  A
        deopted call keeps counting, so hot deopt sites re-enter
        ``_t2`` instead of finishing the call in the block tier.
        Entries and deopts are undebited: instruction/cycle counts and
        traps stay byte-identical to the plain loop."""
        memory = self.memory
        handlers = pre.handlers
        threshold = self._osr_threshold
        leaders = pre.osr_leaders
        counts: Dict[int, int] = {}
        while pc >= 0:
            try:
                new_pc = handlers[pc](ri, rf, rv, slots, frame_base,
                                      memory, self, counters)
            except dispatch.MeterTrip as trip:
                new_pc = self._run_metered(trip.pc, pre.raw, ri, rf,
                                           rv, slots, frame_base,
                                           counters)
            if 0 <= new_pc <= pc and new_pc in leaders:
                count = counts.get(new_pc, 0) + 1
                if count < threshold:
                    counts[new_pc] = count
                else:
                    counts[new_pc] = 0
                    if t2 is None:
                        t2 = pre.tier2()
                        if t2 is None:      # build declined: the call
                            leaders = ()    # stops counting entirely
                            pc = new_pc
                            continue
                    entered = new_pc
                    new_pc = t2(ri, rf, rv, slots, frame_base, memory,
                                self, counters, entered)
                    if new_pc == entered:
                        counts[entered] = self._OSR_DISABLED
                    else:
                        self.osr_entries += 1
                        if deopted:
                            self.deopt_reentries += 1
                        deopted = new_pc >= 0
            pc = new_pc
        return pc

    def _run_metered(self, pc: int, raw, ri, rf, rv, slots, frame_base,
                     counters) -> int:
        """Per-instruction execution with exact fuel accounting — the
        fallback once a block-entry debit crosses the limit.  In
        practice it always ends in a trap within the current block, so
        the (then unobservable) per-instruction counters are skipped."""
        memory = self.memory
        end = len(raw) - 1
        while pc >= 0:
            if pc >= end:
                # falling off the code end is not a counted instruction
                raw[end](ri, rf, rv, slots, frame_base, memory, self,
                         counters)
            executed = self._executed + 1
            self._executed = executed
            if executed > self.fuel:
                raise TrapError("simulation fuel exhausted")
            pc = raw[pc](ri, rf, rv, slots, frame_base, memory, self,
                         counters)
        return pc

    # -- reference engine ------------------------------------------------------

    def _call(self, func: CompiledFunction, args: List,
              counters: SimulationResult):
        regs: Dict[str, Dict[int, object]] = {"int": {}, "flt": {},
                                              "vec": {}}
        # Spill slots park register values in the frame.  They are
        # modeled as a per-frame table (typed, exact) while
        # ``frame_bytes`` still reserves the real stack space, so
        # memory pressure stays honest but parked values cannot be
        # corrupted by type-punning through the byte memory.
        slots: Dict[int, object] = {}
        frame_base = self.memory.push_frame(func.frame_bytes) \
            if func.frame_bytes else 0

        # Place arguments at the callee's parameter homes.
        for loc, value in zip(func.param_locs, args):
            kind, index = loc
            if kind == "slot":
                slots[index] = value
            else:
                regs[kind][index] = value

        memory = self.memory
        code = func.code
        pc = 0

        def read(operand):
            kind, value = operand
            if kind == "imm":
                return value
            if kind == "slot":
                raise TrapError("raw slot operand outside spill op")
            try:
                return regs[kind][value]
            except KeyError:
                raise TrapError(
                    f"{func.name}: read of uninitialized register "
                    f"{kind}{value}")

        try:
            while True:
                if pc >= len(code) or pc < 0:
                    raise TrapError(f"{func.name}: fell off code end")
                instr = code[pc]
                self._executed += 1
                if self._executed > self.fuel:
                    raise TrapError("simulation fuel exhausted")
                counters.instructions += 1
                counters.cycles += instr.cost
                op = instr.op

                if op == "bin":
                    a = read(instr.srcs[0])
                    b = read(instr.srcs[1])
                    regs[instr.dst[0]][instr.dst[1]] = \
                        eval_binop(instr.arg, instr.ty, a, b)
                elif op == "mov":
                    regs[instr.dst[0]][instr.dst[1]] = read(instr.srcs[0])
                elif op == "cmp":
                    a = read(instr.srcs[0])
                    b = read(instr.srcs[1])
                    regs[instr.dst[0]][instr.dst[1]] = \
                        eval_cmp(instr.arg, instr.ty, a, b)
                elif op == "un":
                    regs[instr.dst[0]][instr.dst[1]] = \
                        eval_unop(instr.arg, instr.ty, read(instr.srcs[0]))
                elif op == "cast":
                    from_ty, to_ty = instr.arg
                    regs[instr.dst[0]][instr.dst[1]] = \
                        eval_cast(read(instr.srcs[0]), from_ty, to_ty)
                elif op == "select":
                    cond = read(instr.srcs[0])
                    value = read(instr.srcs[1]) if cond != 0 \
                        else read(instr.srcs[2])
                    regs[instr.dst[0]][instr.dst[1]] = value
                elif op == "load":
                    addr = read(instr.srcs[0])
                    if len(instr.srcs) > 1:
                        addr += read(instr.srcs[1])
                    regs[instr.dst[0]][instr.dst[1]] = \
                        memory.load(instr.ty, addr)
                elif op == "store":
                    addr = read(instr.srcs[0])
                    if len(instr.srcs) > 2:
                        addr += read(instr.srcs[1])
                    memory.store(instr.ty, addr, read(instr.srcs[-1]))
                elif op == "lea.frame":
                    regs[instr.dst[0]][instr.dst[1]] = \
                        frame_base + instr.arg
                elif op == "spill.ld":
                    counters.spill_loads += 1
                    try:
                        regs[instr.dst[0]][instr.dst[1]] = slots[instr.arg]
                    except KeyError:
                        raise TrapError(f"{func.name}: reload of empty "
                                        f"spill slot {instr.arg}")
                elif op == "spill.st":
                    counters.spill_stores += 1
                    slots[instr.arg] = read(instr.srcs[0])
                elif op == "br":
                    counters.branches += 1
                    pc = instr.arg
                    continue
                elif op == "brif":
                    counters.branches += 1
                    if read(instr.srcs[0]) != 0:
                        pc = instr.arg
                        continue
                elif op == "call":
                    counters.calls += 1
                    callee = self.module[instr.arg]
                    values = [slots[s[1]] if s[0] == "slot" else read(s)
                              for s in instr.srcs]
                    result = self._call(callee, values, counters)
                    if instr.dst is not None:
                        regs[instr.dst[0]][instr.dst[1]] = result
                elif op == "ret":
                    if instr.srcs:
                        return read(instr.srcs[0])
                    return None
                elif op == "vload":
                    addr = read(instr.srcs[0])
                    if len(instr.srcs) > 1:
                        addr += read(instr.srcs[1])
                    regs[instr.dst[0]][instr.dst[1]] = memory.load_vec(
                        instr.ty.elem, instr.ty.lanes, addr)
                elif op == "vstore":
                    addr = read(instr.srcs[0])
                    if len(instr.srcs) > 2:
                        addr += read(instr.srcs[1])
                    memory.store_vec(instr.ty.elem, addr,
                                     read(instr.srcs[-1]))
                elif op == "vbin":
                    a = read(instr.srcs[0])
                    b = read(instr.srcs[1])
                    regs[instr.dst[0]][instr.dst[1]] = \
                        vec_binop(instr.arg, instr.ty.elem, a, b)
                elif op == "vsplat":
                    regs[instr.dst[0]][instr.dst[1]] = vec_splat(
                        read(instr.srcs[0]), instr.ty.lanes)
                elif op == "vreduce":
                    reduce_op, acc_ty = instr.arg
                    lanes = [eval_cast(v, instr.ty.elem, acc_ty)
                             for v in read(instr.srcs[0])]
                    regs[instr.dst[0]][instr.dst[1]] = \
                        vec_reduce(reduce_op, acc_ty, lanes)
                else:
                    raise TrapError(f"bad machine opcode {op!r}")
                pc += 1
        finally:
            if func.frame_bytes:
                self.memory.pop_frame(frame_base, func.frame_bytes)

