"""The generic machine instruction form ("native code").

After register allocation the JIT emits a flat list of :class:`MInst`
per function: operands are physical registers, immediates, or spill
slots; branch targets are instruction indices.  Each instruction
carries its cycle cost and encoded size, both assigned at code
generation time from the target's models, so the simulator is a dumb
(and fast) executor.

Register operands are ``(cls, index)`` pairs with ``cls`` in
``{"int", "flt", "vec"}``; other operands are ``("imm", value)`` or
``("slot", byte_offset)`` (spill slots in the current frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

Reg = Tuple[str, int]
Operand = Tuple[str, object]

#: opcodes understood by the simulator
MACHINE_OPS = (
    "mov",          # dst <- src (register or immediate)
    "bin",          # dst <- src0 op src1            arg = op name
    "un",           # dst <- op src0                 arg = op name
    "cmp",          # dst <- src0 pred src1 (0/1)    arg = predicate
    "cast",         # dst <- convert(src0)           arg = (from_ty, to_ty)
    "select",       # dst <- src0 ? src1 : src2
    "load",         # dst <- mem[src0]
    "store",        # mem[src0] <- src1
    "lea.frame",    # dst <- frame_base + arg
    "spill.ld",     # dst <- frame[arg]   (register reload)
    "spill.st",     # frame[arg] <- src0  (register spill)
    "call",         # dst <- callee(srcs) arg = callee name
    "ret",          # return src0 (if any)
    "br",           # arg = target index
    "brif",         # if src0 != 0 goto arg
    "vload", "vstore", "vbin", "vsplat", "vreduce",
)


@dataclass
class MInst:
    op: str
    ty: object = None              # lang type / VecType where relevant
    dst: Optional[Reg] = None
    srcs: List[Operand] = field(default_factory=list)
    arg: object = None
    cost: int = 1
    size: int = 4

    def __repr__(self) -> str:
        def fmt(operand):
            kind, value = operand
            if kind == "imm":
                return f"#{value}"
            if kind == "slot":
                return f"[fp+{value}]"
            return f"{kind[0]}{value}"

        parts = [self.op]
        if self.arg is not None and self.op in ("bin", "un", "cmp", "vbin"):
            parts.append(f".{self.arg}")
        if self.ty is not None:
            parts.append(f".{self.ty}")
        text = "".join(parts)
        pieces = []
        if self.dst is not None:
            pieces.append(fmt(self.dst))
        pieces.extend(fmt(s) for s in self.srcs)
        if self.op in ("br", "brif"):
            pieces.append(f"->{self.arg}")
        elif self.op == "call":
            pieces.append(f"@{self.arg}")
        elif self.op in ("lea.frame", "spill.ld", "spill.st"):
            pieces.append(f"[fp+{self.arg}]")
        return f"{text} " + ", ".join(pieces)


@dataclass
class CompiledFunction:
    """JIT output for one function on one target."""
    name: str
    target_name: str
    code: List[MInst] = field(default_factory=list)
    frame_bytes: int = 0            # bytecode frame slots + spill area
    param_locs: List[Operand] = field(default_factory=list)
    ret_void: bool = True
    code_bytes: int = 0             # encoded size (size model)
    spill_slot_count: int = 0
    jit_work: int = 0               # total effort spent compiling
    jit_analysis_work: int = 0      # optional analysis portion of it
    jit_time: float = 0.0
    #: analysis work by pass name, when the flow ran online analyses
    jit_pass_work: dict = field(default_factory=dict)
    #: the JIT marked this function for tier-2 whole-function
    #: translation (hotness annotation cleared the adaptive threshold,
    #: or an explicit ``JITOptions(tier2=True)``); advisory — not part
    #: of the modeled image, so excluded from equality
    tier2_hint: bool = field(default=False, compare=False)
    #: the JIT allows mid-call (on-stack) promotion of this function;
    #: ``JITOptions(osr=False)`` clears it.  Advisory like
    #: ``tier2_hint`` and likewise excluded from equality, but — unlike
    #: ``tier2_hint`` — baked into the predecode (it decides the OSR
    #: entry-point set), so it participates in ``content_token``.
    osr_hint: bool = field(default=True, compare=False)

    # -- predecode cache hook -------------------------------------------------
    #
    # Same contract as ``BytecodeFunction``: the fast simulator
    # (repro.targets.dispatch) parks its handler closures here, keyed
    # by a structural token of ``code`` so in-place edits invalidate
    # by content.  The JIT warms this at compile time, so images
    # served from the deployment memo dispatch with no decode cost.

    #: bumped whenever the predecode payload shape changes (e.g. the
    #: OSR entry-point set added alongside the handler table, or the
    #: dataflow-plane facts the tier-2 translation is generated
    #: under), so externally persisted tokens from older schemas never
    #: validate.  The analysis plane's facts cache keys through this
    #: token too (``[FACTS_SCHEMA] + content_token()``).
    PREDECODE_SCHEMA = 3

    def content_token(self) -> List:
        """Structural identity of everything the predecode bakes in:
        the code plus the parameter homes and frame size it sizes the
        register files and stack frame from, the OSR eligibility that
        decides the entry-point set, and the payload schema version."""
        return [self.PREDECODE_SCHEMA, self.osr_hint,
                tuple(self.param_locs), self.frame_bytes, self.ret_void,
                [(i.op, i.ty, i.dst, tuple(i.srcs), i.arg, i.cost)
                 for i in self.code]]

    def cached_predecode(self, token, module=None):
        cached = getattr(self, "_predecode_cache", None)
        if cached is not None and cached[0] == token and \
                cached[1] is module:
            return cached[2]
        return None

    def store_predecode(self, token, payload, module=None) -> None:
        self._predecode_cache = (token, module, payload)


@dataclass
class CompiledModule:
    target_name: str
    functions: dict = field(default_factory=dict)

    #: frozen = the function table and code will not change in place;
    #: the fast simulator may bind call targets at predecode time.
    #: The JIT freezes every module it emits.
    _frozen: bool = field(default=False, repr=False, compare=False)

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "CompiledModule":
        self._frozen = True
        return self

    def add(self, func: CompiledFunction) -> CompiledFunction:
        if self._frozen:
            raise ValueError(
                f"compiled module for {self.target_name!r} is frozen")
        self.functions[func.name] = func
        return func

    def __getitem__(self, name: str) -> CompiledFunction:
        return self.functions[name]

    @property
    def total_code_bytes(self) -> int:
        return sum(f.code_bytes for f in self.functions.values())

    @property
    def total_jit_work(self) -> int:
        return sum(f.jit_work for f in self.functions.values())

    @property
    def total_jit_analysis_work(self) -> int:
        return sum(f.jit_analysis_work for f in self.functions.values())

    @property
    def total_jit_pass_work(self) -> dict:
        """Online analysis work by pass, summed over functions."""
        out: dict = {}
        for func in self.functions.values():
            for name, work in func.jit_pass_work.items():
                out[name] = out.get(name, 0) + work
        return out
