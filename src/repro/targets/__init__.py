"""Simulated hardware targets.

Each target is a :class:`~repro.targets.machine.TargetDesc`: an ISA
capability set (SIMD or not), register-file sizes per class, a cycle
cost model and a code-size model.  The JIT compiles PVI bytecode to
:class:`~repro.targets.isa.MInst` "native" instructions for a target;
:class:`~repro.targets.simulator.Simulator` executes them and counts
cycles — the stand-in for the paper's real x86/UltraSparc/PowerPC
machines (see DESIGN.md, substitution table).

The three Table 1 targets plus two extras for the heterogeneous
experiments are exported as ready-made descriptors.
"""

from repro.targets.machine import CostModel, TargetDesc
from repro.targets.isa import MInst, Reg
from repro.targets.simulator import SimulationResult, Simulator
from repro.targets.catalog import (
    DSP, HOST, PPC, SPARC, X86, TARGETS, target_by_name,
)

__all__ = [
    "CostModel", "TargetDesc", "MInst", "Reg",
    "Simulator", "SimulationResult",
    "X86", "SPARC", "PPC", "DSP", "HOST", "TARGETS", "target_by_name",
]
