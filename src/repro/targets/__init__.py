"""Simulated hardware targets.

Each target is a :class:`~repro.targets.machine.TargetDesc`: an ISA
capability set (SIMD or not), register-file sizes per class, a cycle
cost model, a code-size model and the name of the :class:`Backend`
that compiles and executes code for it.  The default ``native``
backend JIT-compiles PVI bytecode to :class:`~repro.targets.isa.MInst`
"native" instructions and executes them on
:class:`~repro.targets.simulator.Simulator` — the stand-in for the
paper's real x86/UltraSparc/PowerPC machines (see DESIGN.md,
substitution table).  The ``stack`` backend
(:mod:`repro.targets.stackvm`) runs the portable stack bytecode
directly, wasm32-style.

The catalog is *open*: the process-wide
:class:`~repro.targets.registry.TargetRegistry` holds the built-in
targets (Table 1's three, the heterogeneous-SoC extras, ``arm`` and
``wasm32``) and anything user code adds with one
:func:`register_target` call — runtime-registered targets deploy
through the service, appear in ``compare_flows`` and are schedulable
by the KPN mapper with no further plumbing.  Every public entry point
accepts a registered name wherever it accepts a descriptor.

The simulator has two engines (see :mod:`repro.engine` and DESIGN.md
§2): ``fast`` (default) executes predecoded, block-compiled handler
closures over flat register files (:mod:`repro.targets.dispatch`);
``reference`` is the original instruction ladder.  Cycle counts are
identical by construction — engines change host speed, never modeled
cost.
"""

from repro.targets.machine import CostModel, SizeModel, TargetDesc
from repro.targets.isa import MInst, Reg
from repro.targets.simulator import SimulationResult, Simulator
from repro.targets.dispatch import warm_module
from repro.targets.catalog import (
    ARM, DSP, HOST, PPC, SPARC, X86, TARGETS, target_by_name,
)
from repro.targets.registry import (
    Backend, NativeBackend, TargetRegistry, UnknownBackendError,
    UnknownTargetError, as_target, backend_for, backend_names,
    executor_for, get_backend, get_target, register_backend,
    register_target, registered_targets, target_names,
    unregister_target,
)
from repro.targets.stackvm import (
    StackBackend, StackExecutor, StackImage, WASM32,
)

__all__ = [
    "CostModel", "SizeModel", "TargetDesc", "MInst", "Reg",
    "Simulator", "SimulationResult", "warm_module",
    "X86", "SPARC", "PPC", "DSP", "HOST", "ARM", "WASM32",
    "TARGETS", "target_by_name",
    "Backend", "NativeBackend", "TargetRegistry",
    "UnknownTargetError", "UnknownBackendError",
    "register_target", "unregister_target", "get_target", "as_target",
    "target_names", "registered_targets",
    "register_backend", "get_backend", "backend_names", "backend_for",
    "executor_for",
    "StackBackend", "StackExecutor", "StackImage",
]
