"""Simulated hardware targets.

Each target is a :class:`~repro.targets.machine.TargetDesc`: an ISA
capability set (SIMD or not), register-file sizes per class, a cycle
cost model and a code-size model.  The JIT compiles PVI bytecode to
:class:`~repro.targets.isa.MInst` "native" instructions for a target;
:class:`~repro.targets.simulator.Simulator` executes them and counts
cycles — the stand-in for the paper's real x86/UltraSparc/PowerPC
machines (see DESIGN.md, substitution table).

The three Table 1 targets plus two extras for the heterogeneous
experiments are exported as ready-made descriptors.

The simulator has two engines (see :mod:`repro.engine` and DESIGN.md
§2): ``fast`` (default) executes predecoded, block-compiled handler
closures over flat register files (:mod:`repro.targets.dispatch`);
``reference`` is the original instruction ladder.  Cycle counts are
identical by construction — engines change host speed, never modeled
cost.
"""

from repro.targets.machine import CostModel, TargetDesc
from repro.targets.isa import MInst, Reg
from repro.targets.simulator import SimulationResult, Simulator
from repro.targets.dispatch import warm_module
from repro.targets.catalog import (
    DSP, HOST, PPC, SPARC, X86, TARGETS, target_by_name,
)

__all__ = [
    "CostModel", "TargetDesc", "MInst", "Reg",
    "Simulator", "SimulationResult", "warm_module",
    "X86", "SPARC", "PPC", "DSP", "HOST", "TARGETS", "target_by_name",
]
