"""Predecoded, block-threaded execution core for the machine simulator.

The reference simulator (``Simulator._call``) re-dispatches every
:class:`~repro.targets.isa.MInst` through a string ladder, keeps
register files as dict-of-dicts, creates a fresh ``read()`` closure
per call and bumps five counters per executed instruction.  This
module translates a :class:`~repro.targets.isa.CompiledFunction`
**once** into handler closures over *flat-list* register files (an
``_UNSET`` sentinel standing in for "never written"), with operand
locations, semantics kernels and cycle costs resolved at decode time.

Structure mirrors :mod:`repro.vm.threaded`: every *fuel block* (ending
at a branch, ``ret`` or ``call``) compiles to one Python function that
debits fuel **and all counters** (instructions, cycles, branches,
spills, calls) on entry — blocks execute linearly to their terminator,
so successful runs reproduce the reference engine's per-instruction
totals exactly.  A debit crossing the fuel limit re-runs the block
instruction-by-instruction via the raw closures
(:class:`repro.engine.MeterTrip` -> ``Simulator._run_metered``), so
the fuel trap lands on precisely the reference engine's instruction.
Blocks whose code generation bails fall back to the raw closures with
the same block-entry debit.

The predecoded form is cached on the function object
(``CompiledFunction.cached_predecode``) keyed by a structural content
token, so the first simulation of an image pays decode exactly once no
matter how many Simulators run it.  Latency-sensitive deployments can
prepay it with :func:`warm_module` (or ``PVI_JIT_PREDECODE=1``, which
makes the JIT warm every image it emits).

When the module is *frozen* (``CompiledModule.freeze()`` — the JIT
freezes every image it emits), ``call`` targets resolve once at
predecode time: the callee :class:`CompiledFunction` is bound
directly into the handlers (per-call inline caching) instead of being
looked up in ``sim.module.functions`` per executed call; the cache
records the binding module and content-token invalidation works
unchanged.
"""

from __future__ import annotations

import re
from typing import Callable, List

from repro.analysis.facts import machine_facts
from repro.engine import (
    CodegenEnv, MASK64_LITERAL, MeterTrip, _ARITH_SYMS, _F32_QUAD,
    backedge_targets, fuel_blocks, inline_binop, inline_cast,
    inline_cmp, inline_unop, keep_osr_guards, normalize_branch_target,
)
from repro.lang import types as ty
from repro.semantics.errors import TrapError
from repro.semantics.kernels import (
    binop_kernel, cast_kernel, cmp_kernel, identity_kernel, unop_kernel,
    vec_binop_kernel,
)
from repro.semantics.memory import (
    NULL_GUARD, PACK_COERCE_ERRORS, scalar_struct, vector_struct,
)
from repro.targets.isa import CompiledFunction, CompiledModule

#: "register never written" sentinel for the flat register files
UNSET = object()

_REG_FILES = {"int": "ri", "flt": "rf", "vec": "rv"}
_CLS_INDEX = {"int": 0, "flt": 1, "vec": 2}

#: handler signature:
#: (ri, rf, rv, slots, fb, mem, sim, res) -> pc   (-1 = returned)
Handler = Callable

#: "tier-2 translation not attempted yet" marker (``None`` = attempted
#: and failed — don't retry per call)
_TIER2_UNBUILT = object()

#: tier-2 build-site accounting: ``warm`` builds happen off the hot
#: path (``warm_module`` — the backend ``warm`` hook); ``request``
#: builds happen inside a serving call.  A warmed image keeps the
#: request bucket at zero — the stat that proves warming prepays
#: whole-function codegen (see the service executors' warm-on-return
#: path).  ``facts_warm``/``facts_request`` count fresh dataflow-plane
#: analyses by the same split (facts provenance), and
#: ``guards_elided``/``guards_kept`` count OSR prologue ``_UNSET``
#: guards the must-written analysis proved redundant (kept only under
#: ``PVI_OSR_GUARDS=1``).
TIER2_BUILDS = {"warm": 0, "request": 0,
                "facts_warm": 0, "facts_request": 0,
                "guards_elided": 0, "guards_kept": 0}


def tier2_build_stats() -> dict:
    """Copy of the tier-2 build-site counters (see TIER2_BUILDS)."""
    return dict(TIER2_BUILDS)


def reset_tier2_build_stats() -> None:
    for key in TIER2_BUILDS:
        TIER2_BUILDS[key] = 0


class PredecodedMachine:
    """One compiled function's decoded form."""

    __slots__ = ("token", "handlers", "raw", "reg_counts", "param_locs",
                 "frame_bytes", "tier2_hint", "osr_leaders", "_tier2",
                 "_tier2_args")

    def __init__(self, token, handlers, raw, reg_counts, param_locs,
                 frame_bytes, tier2_hint=False,
                 osr_leaders=frozenset(), tier2_args=(None, None)):
        self.token = token
        self.handlers = handlers
        self.raw = raw
        self.reg_counts = reg_counts          # (n_int, n_flt, n_vec)
        self.param_locs = param_locs          # [(cls_index | -1, index)]
        self.frame_bytes = frame_bytes
        #: the JIT marked this function for whole-function translation
        #: (hotness annotation cleared the threshold, or an explicit
        #: ``JITOptions(tier2=True)``)
        self.tier2_hint = tier2_hint
        #: back-edge target leaders — candidate on-stack replacement
        #: entry points (empty when the JIT's ``osr_hint`` opted the
        #: function out).  The generated ``_t2`` carries its own entry
        #: whitelist and validates the snapshot itself.
        self.osr_leaders = osr_leaders
        self._tier2 = _TIER2_UNBUILT
        self._tier2_args = tier2_args

    def tier2(self, warm: bool = False):
        """The whole-function tier-2 translation, built lazily on
        first request and cached here (so it rides the predecode
        cache); ``None`` when translation failed.  ``warm`` marks a
        build happening off the serving path, for the build-site
        stats."""
        t2 = self._tier2
        if t2 is _TIER2_UNBUILT:
            func, binding = self._tier2_args
            if func is None:
                t2 = self._tier2 = None
            else:
                TIER2_BUILDS["warm" if warm else "request"] += 1
                t2 = self._tier2 = _build_tier2(func, binding,
                                                warm=warm)
            self._tier2_args = (None, None)
        return t2


def predecode_machine(func: CompiledFunction,
                      module=None) -> PredecodedMachine:
    """The (cached) predecoded form of ``func``.

    With a *frozen* ``module`` supplied (the JIT freezes every image
    it emits), ``call`` targets are resolved once here — the callee
    :class:`CompiledFunction` is bound directly into the handlers
    (per-call inline caching).  The cache records the binding module;
    in-place code edits invalidate via the existing content token.
    """
    binding = module if module is not None and \
        getattr(module, "frozen", False) else None
    token = func.content_token()
    cached = func.cached_predecode(token, binding)
    if cached is not None:
        return cached
    pre = _build(func, token, binding)
    func.store_predecode(token, pre, binding)
    return pre


def warm_module(module: CompiledModule) -> CompiledModule:
    """Predecode every function of an image (JIT/service warm hook).

    Functions the JIT hinted for tier-2 — and every on-stack
    replacement candidate (any function with a loop header, which a
    long-running call may promote mid-loop) — also get their
    whole-function translation built here, so warmed deployments
    dispatch straight into tier-2 code with no in-request compile
    pause (:func:`tier2_build_stats` proves it: serving calls on a
    warmed image leave the ``request`` bucket untouched)."""
    for func in module.functions.values():
        pre = predecode_machine(func, module)
        if pre.tier2_hint or pre.osr_leaders:
            pre.tier2(warm=True)
    return module


def _resolved_callee(binding, name):
    """The callee bound at predecode time, or ``None`` to fall back to
    the dynamic per-call lookup (no frozen module, or a call to a
    missing function — which must keep failing at execution time,
    exactly like the reference engine)."""
    if binding is None:
        return None
    return binding.functions.get(name)


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------

def _build(func: CompiledFunction, token,
           binding=None) -> PredecodedMachine:
    code = func.code
    n = len(code)
    name = func.name

    def tail(ri, rf, rv, slots, fb, mem, sim, res):
        raise TrapError(f"{name}: fell off code end")

    raw: List[Handler] = [None] * (n + 1)
    raw[n] = tail
    for pc, instr in enumerate(code):
        try:
            raw[pc] = _make_raw_handler(name, pc, instr, n, binding)
        except Exception as exc:
            def deferred(ri, rf, rv, slots, fb, mem, sim, res,
                         _exc=exc):
                raise _exc
            raw[pc] = deferred

    handlers = list(raw)
    blocks = fuel_blocks(code)
    env = {"TrapError": TrapError, "MeterTrip": MeterTrip,
           "_PE": PACK_COERCE_ERRORS, "_UNSET": UNSET}
    written_at_entry = _param_regs(func)
    sources = []
    compiled = {}
    for leader, length in blocks.items():
        try:
            sources.append(_gen_block(name, code, leader, length, env,
                                      written_at_entry, binding))
            compiled[leader] = f"_b{leader}"
        except Exception:
            handlers[leader] = _interp_block(code, raw, leader, length)
    if sources:
        try:
            exec(compile("\n".join(sources), f"<pvi-sim:{name}>",
                         "exec"), env)
            for leader, block_name in compiled.items():
                handlers[leader] = env[block_name]
        except Exception:       # defensive: degrade, never break
            for leader in compiled:
                handlers[leader] = _interp_block(code, raw, leader,
                                                 blocks[leader])

    reg_counts, param_locs = _register_layout(func)

    # The JIT's ``osr_hint`` (JITOptions.osr) can opt a function out
    # of mid-call promotion entirely; the candidate set stays empty
    # and the trampoline never counts its back edges.
    osr_leaders = backedge_targets(code, blocks) \
        if getattr(func, "osr_hint", True) else frozenset()

    return PredecodedMachine(token, handlers, raw, reg_counts,
                             param_locs, func.frame_bytes,
                             tier2_hint=getattr(func, "tier2_hint",
                                                False),
                             osr_leaders=osr_leaders,
                             tier2_args=(func, binding))


def _register_layout(func: CompiledFunction):
    """((n_int, n_flt, n_vec), [(cls_index | -1, index)]) — the flat
    register-file sizes and parameter homes a call needs."""
    reg_counts = [0, 0, 0]
    param_locs = []
    for kind, index in func.param_locs:
        if kind == "slot":
            param_locs.append((-1, index))
        else:
            cls = _CLS_INDEX[kind]
            param_locs.append((cls, index))
            reg_counts[cls] = max(reg_counts[cls], index + 1)
    for instr in func.code:
        if instr.dst is not None and instr.dst[0] in _CLS_INDEX:
            cls = _CLS_INDEX[instr.dst[0]]
            reg_counts[cls] = max(reg_counts[cls], instr.dst[1] + 1)
        for kind, value in instr.srcs:
            if kind in _CLS_INDEX and isinstance(value, int):
                cls = _CLS_INDEX[kind]
                reg_counts[cls] = max(reg_counts[cls], value + 1)
    return tuple(reg_counts), param_locs


def _param_regs(func: CompiledFunction) -> set:
    """(kind, index) registers guaranteed written at function entry."""
    return {loc for loc in func.param_locs if loc[0] != "slot"}


def _block_counters(code, leader: int, length: int) -> dict:
    counters = {"cycles": 0, "branches": 0, "spill_loads": 0,
                "spill_stores": 0, "calls": 0}
    for instr in code[leader:leader + length]:
        counters["cycles"] += instr.cost
        if instr.op in ("br", "brif"):
            counters["branches"] += 1
        elif instr.op == "spill.ld":
            counters["spill_loads"] += 1
        elif instr.op == "spill.st":
            counters["spill_stores"] += 1
        elif instr.op == "call":
            counters["calls"] += 1
    return counters


def _debit_lines(code, leader: int, length: int) -> List[str]:
    counters = _block_counters(code, leader, length)
    lines = [
        f"executed = sim._executed + {length}",
        "sim._executed = executed",
        "if executed > sim.fuel:",
        f"    sim._executed = executed - {length}",
        f"    raise MeterTrip({leader})",
        f"res.instructions += {length}",
        f"res.cycles += {counters['cycles']}",
    ]
    for field in ("branches", "spill_loads", "spill_stores", "calls"):
        if counters[field]:
            lines.append(f"res.{field} += {counters[field]}")
    return lines


def _interp_block(code, raw, leader: int, length: int) -> Handler:
    counters = _block_counters(code, leader, length)
    cycles = counters["cycles"]
    branches = counters["branches"]
    spill_loads = counters["spill_loads"]
    spill_stores = counters["spill_stores"]
    calls = counters["calls"]

    def block(ri, rf, rv, slots, fb, mem, sim, res):
        executed = sim._executed + length
        sim._executed = executed
        if executed > sim.fuel:
            sim._executed = executed - length
            raise MeterTrip(leader)
        res.instructions += length
        res.cycles += cycles
        if branches:
            res.branches += branches
        if spill_loads:
            res.spill_loads += spill_loads
        if spill_stores:
            res.spill_stores += spill_stores
        if calls:
            res.calls += calls
        pc = leader
        step = length - 1
        try:
            for step in range(length):
                pc = raw[pc](ri, rf, rv, slots, fb, mem, sim, res)
        except Exception:
            # roll the fuel debit back to the trapping instruction
            # (res counters are unobservable after a trap)
            sim._executed -= length - step - 1
            raise
        return pc
    return block


# ---------------------------------------------------------------------------
# block code generation
# ---------------------------------------------------------------------------

def _gen_block(name: str, code, leader: int, length: int, env_dict,
               written_at_entry: set, binding=None) -> str:
    lines = _gen_block_lines(name, code, leader, length,
                             CodegenEnv(env_dict), written_at_entry,
                             binding)
    debit = "\n".join("    " + line
                      for line in _debit_lines(code, leader, length))
    body = "\n".join("        " + line for line in lines)
    return (f"def _b{leader}(ri, rf, rv, slots, fb, mem, sim, res):\n"
            f"{debit}\n"
            f"    _i = {length - 1}\n"
            f"    try:\n"
            f"{body}\n"
            f"    except Exception:\n"
            f"        # roll the fuel debit back to the trapping\n"
            f"        # instruction (res counters are unobservable\n"
            f"        # after a trap)\n"
            f"        sim._executed -= {length} - _i - 1\n"
            f"        raise\n")


def _gen_block_lines(name: str, code, leader: int, length: int,
                     env: CodegenEnv, written_at_entry: set,
                     binding=None,
                     reg_fmt: str = "{0}[{1}]",
                     check_direct: bool = False,
                     goto_fmt: str = "return {0}",
                     ret_lines=("return -1",),
                     tier2: bool = False,
                     data: str = "mem.data",
                     msize: str = "mem.size") -> List[str]:
    """The per-instruction lowering shared by the block tier and the
    tier-2 whole-function compiler.  ``reg_fmt`` maps a register file
    name + index to its lvalue (flat list vs lowered Python local,
    where ``check_direct`` skips the read-into-temp for the
    uninitialized check); ``goto_fmt``/``ret_lines`` shape transfers
    (``return pc`` per block vs ``pc = ...`` dispatcher assignments).
    Under ``tier2`` the arith/cmp/cast kernels are inlined as Python
    expressions where provably identical, and progress markers are
    elided for instructions that cannot raise; ``data``/``msize``
    name the (hoisted) memory buffer and size expressions.
    """
    lines: List[str] = []
    written = set(written_at_entry)
    counter = [0]
    #: per-instruction can-this-raise flag (tier-2 only): instructions
    #: proven pure need no ``_i`` progress marker, and a block with no
    #: markers at all drops its metered try/except wrapper
    impure = [False]

    def newt() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    def emit(text: str, indent: str = "") -> None:
        lines.append(indent + text)

    def read(operand, indent: str = "") -> str:
        kind, value = operand
        if kind == "imm":
            if type(value) is int:
                return f"({value!r})"
            return env.bind(value, "c")
        if kind == "slot":
            raise ValueError("raw slot operand")      # -> fallback
        location = reg_fmt.format(_REG_FILES[kind], value)
        if (kind, value) in written:
            return location
        impure[0] = True            # the uninitialized-register trap
        message = env.bind(f"{name}: read of uninitialized register "
                           f"{kind}{value}", "m")
        if check_direct:
            emit(f"if {location} is _UNSET:", indent)
            emit(f"raise TrapError({message})", indent + "    ")
            return location
        t = newt()
        emit(f"{t} = {location}", indent)
        emit(f"if {t} is _UNSET:", indent)
        emit(f"raise TrapError({message})", indent + "    ")
        return t

    def dst_of(instr) -> str:
        kind, index = instr.dst
        written.add((kind, index))
        return reg_fmt.format(_REG_FILES[kind], index)

    def addr_of(instr, srcs, indent: str = "") -> str:
        base = read(srcs[0], indent)
        if len(srcs) > 1:
            offset = read(srcs[1], indent)
            t = newt()
            emit(f"{t} = ({base}) + ({offset})", indent)
            base = t
        t = newt()
        emit(f"{t} = ({base}) & {MASK64_LITERAL}", indent)
        return t

    def bounds(addr_var: str, size: int) -> None:
        emit(f"if {addr_var} < {NULL_GUARD} or "
             f"{addr_var} + {size} > {msize}:")
        emit('raise TrapError(f"memory access out of bounds: '
             'addr={' + addr_var + ':#x} size=' + str(size) + '")',
             "    ")

    exit_pc = leader + length

    for pc in range(leader, exit_pc):
        instr = code[pc]
        op = instr.op
        # Progress marker: if this instruction traps mid-block, the
        # except clause rolls the block-entry fuel debit back to
        # exactly the reference engine's per-instruction count.  The
        # block tier conservatively marks everything; tier-2 marks
        # only instructions that can actually raise.
        marker_at = len(lines)
        impure[0] = not tier2

        # NB: sources must be read (and uninitialized-register checked)
        # *before* dst_of marks the destination written — a dst that
        # aliases an unwritten source must still trap.
        if op == "bin":
            template = inline_binop(instr.arg, instr.ty, env) \
                if tier2 else None
            a = read(instr.srcs[0])
            b = read(instr.srcs[1])
            if template is not None:
                expr, pure = template
                if not pure:
                    impure[0] = True
                emit(f"{dst_of(instr)} = {expr.format(a=a, b=b)}")
            else:
                impure[0] = True    # div/rem trap; kernel calls too
                kernel = env.bind(binop_kernel(instr.arg, instr.ty),
                                  "k")
                emit(f"{dst_of(instr)} = {kernel}({a}, {b})")
        elif op == "mov":
            source = read(instr.srcs[0])
            emit(f"{dst_of(instr)} = {source}")
        elif op == "cmp":
            template = inline_cmp(instr.arg, instr.ty) \
                if tier2 else None
            a = read(instr.srcs[0])
            b = read(instr.srcs[1])
            if template is not None:
                emit(f"{dst_of(instr)} = "
                     f"{template.format(a=a, b=b)}")
            else:
                impure[0] = True    # undefined predicates trap
                kernel = env.bind(cmp_kernel(instr.arg, instr.ty), "k")
                emit(f"{dst_of(instr)} = {kernel}({a}, {b})")
        elif op == "un":
            template = inline_unop(instr.arg, instr.ty, env) \
                if tier2 else None
            source = read(instr.srcs[0])
            if template is not None:
                expr, pure = template
                if not pure:
                    impure[0] = True
                emit(f"{dst_of(instr)} = {expr.format(a=source)}")
            else:
                impure[0] = True
                kernel = env.bind(unop_kernel(instr.arg, instr.ty),
                                  "k")
                emit(f"{dst_of(instr)} = {kernel}({source})")
        elif op == "cast":
            from_ty, to_ty = instr.arg
            kernel = cast_kernel(from_ty, to_ty)
            template = inline_cast(from_ty, to_ty, env) \
                if tier2 and kernel is not identity_kernel else None
            source = read(instr.srcs[0])
            if kernel is identity_kernel:
                emit(f"{dst_of(instr)} = {source}")
            elif template is not None:
                expr, pure = template
                if not pure:
                    impure[0] = True
                emit(f"{dst_of(instr)} = {expr.format(a=source)}")
            else:
                impure[0] = True    # float->int: NaN/inf trap
                emit(f"{dst_of(instr)} = "
                     f"{env.bind(kernel, 'k')}({source})")
        elif op == "select":
            # Lazy like the reference: only the chosen operand is read
            # (and only it gets the uninitialized-register check); the
            # destination counts as written only after both branches
            # are generated, so a dst-aliasing operand still checks.
            cond = read(instr.srcs[0])
            kind, index = instr.dst
            dst = reg_fmt.format(_REG_FILES[kind], index)
            emit(f"if ({cond}) != 0:")
            taken = read(instr.srcs[1], "    ")
            emit(f"{dst} = {taken}", "    ")
            emit("else:")
            untaken = read(instr.srcs[2], "    ")
            emit(f"{dst} = {untaken}", "    ")
            written.add((kind, index))
        elif op == "load":
            impure[0] = True
            packer = scalar_struct(instr.ty)
            unpack = env.bind(packer.unpack_from, "u")
            addr = addr_of(instr, instr.srcs)
            bounds(addr, packer.size)
            emit(f"{dst_of(instr)} = {unpack}({data}, {addr})[0]")
        elif op == "store":
            impure[0] = True
            packer = scalar_struct(instr.ty)
            pack = env.bind(packer.pack_into, "p")
            if isinstance(instr.ty, ty.IntType):
                coerce = env.bind(
                    lambda v, _t=instr.ty: ty.wrap_int(int(v), _t), "w")
            else:
                coerce = "float"
            addr = addr_of(instr, instr.srcs[:-1])
            value = read(instr.srcs[-1])
            bounds(addr, packer.size)
            emit("try:")
            emit(f"{pack}({data}, {addr}, {value})", "    ")
            emit("except _PE:")
            emit(f"{pack}({data}, {addr}, {coerce}({value}))", "    ")
        elif op == "lea.frame":
            emit(f"{dst_of(instr)} = fb + {instr.arg}")
        elif op == "spill.ld":
            impure[0] = True        # empty-slot trap
            message = env.bind(f"{name}: reload of empty spill slot "
                               f"{instr.arg}", "m")
            emit("try:")
            emit(f"{dst_of(instr)} = slots[{instr.arg}]", "    ")
            emit("except KeyError:")
            emit(f"raise TrapError({message})", "    ")
        elif op == "spill.st":
            emit(f"slots[{instr.arg}] = {read(instr.srcs[0])}")
        elif op == "br":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            emit(goto_fmt.format(target))
        elif op == "brif":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            cond = read(instr.srcs[0])
            test = f"({cond}) != 0"
            if tier2 and lines:
                # Peephole: a register just written by an inlined
                # comparison — branch on the comparison itself (the
                # register write stays, for deopt and later reads).
                prefix = f"{cond} = (1 if "
                if lines[-1].startswith(prefix) \
                        and lines[-1].endswith(" else 0)"):
                    inner = lines[-1][len(prefix):-len(" else 0)")]
                    if not re.search(rf"\b{re.escape(cond)}\b", inner):
                        test = inner
            emit(goto_fmt.format(
                f"{target} if {test} else {exit_pc}"))
        elif op == "call":
            impure[0] = True
            resolved = _resolved_callee(binding, instr.arg)
            values = []
            for operand in instr.srcs:
                if operand[0] == "slot":
                    # KeyError propagates raw, exactly like the
                    # reference's direct slots[...] access; read into
                    # a temp so operand traps keep their source order
                    t = newt()
                    emit(f"{t} = slots[{operand[1]}]")
                    values.append(t)
                else:
                    values.append(read(operand))
            result = newt()
            if resolved is not None:
                # Inline cache: the frozen module pins the callee.
                emit(f"{result} = sim._call_fast("
                     f"{env.bind(resolved, 'f')}, "
                     f"[{', '.join(values)}], res)")
            else:
                callee = env.bind(instr.arg, "n")
                emit(f"{result} = sim._call_fast(sim.module.functions"
                     f"[{callee}], [{', '.join(values)}], res)")
            if instr.dst is not None:
                emit(f"{dst_of(instr)} = {result}")
            emit(goto_fmt.format(exit_pc))
        elif op == "ret":
            if instr.srcs:
                emit(f"sim._ret = {read(instr.srcs[0])}")
            else:
                emit("sim._ret = None")
            for line in ret_lines:
                emit(line)
        elif op == "vload":
            impure[0] = True
            packer = vector_struct(instr.ty.elem, instr.ty.lanes)
            unpack = env.bind(packer.unpack_from, "u")
            addr = addr_of(instr, instr.srcs)
            bounds(addr, packer.size)
            emit(f"{dst_of(instr)} = list({unpack}({data}, {addr}))")
        elif op == "vstore":
            impure[0] = True
            lanes = instr.ty.lanes
            packer = vector_struct(instr.ty.elem, lanes)
            pack = env.bind(packer.pack_into, "p")
            elem_name = env.bind(instr.ty.elem, "e")
            addr = addr_of(instr, instr.srcs[:-1])
            value = read(instr.srcs[-1])
            emit(f"if len({value}) == {lanes} and "
                 f"{addr} >= {NULL_GUARD} and "
                 f"{addr} + {packer.size} <= {msize}:")
            emit("try:", "    ")
            emit(f"{pack}({data}, {addr}, *{value})", "        ")
            emit("except _PE:", "    ")
            emit(f"mem.store_vec({elem_name}, {addr}, {value})",
                 "        ")
            emit("else:")
            emit(f"mem.store_vec({elem_name}, {addr}, {value})", "    ")
        elif op == "vbin":
            impure[0] = True        # lane-count mismatch traps, and
            a = read(instr.srcs[0])  # the f32 repack can overflow
            b = read(instr.srcs[1])
            bop = instr.arg
            elem = instr.ty.elem
            if tier2 and isinstance(elem, ty.FloatType) \
                    and elem.bits == 32 \
                    and bop in ("add", "sub", "mul", "min", "max"):
                # Inline the 4-lane f32 batch kernel: one quad
                # pack/unpack round trip instead of a kernel call plus
                # per-lane rounding — identical arithmetic, including
                # the left-to-right product rounding order.  Any other
                # shape falls back to the kernel in the else arm.
                qp = env.bind(_F32_QUAD.pack, "qp")
                qu = env.bind(_F32_QUAD.unpack, "qu")
                sym = _ARITH_SYMS.get(bop)
                if sym is not None:
                    cores = ", ".join(f"_a{i} {sym} _b{i}"
                                      for i in range(4))
                else:
                    cores = ", ".join(f"{bop}(_a{i}, _b{i})"
                                      for i in range(4))
                kernel = env.bind(vec_binop_kernel(bop, elem), "v")
                dst = dst_of(instr)
                emit(f"if len({a}) == 4 and len({b}) == 4:")
                emit(f"_a0, _a1, _a2, _a3 = {a}", "    ")
                emit(f"_b0, _b1, _b2, _b3 = {b}", "    ")
                emit(f"{dst} = list({qu}({qp}({cores})))", "    ")
                emit("else:")
                emit(f"{dst} = {kernel}({a}, {b})", "    ")
            else:
                kernel = env.bind(vec_binop_kernel(bop, elem), "v")
                emit(f"{dst_of(instr)} = {kernel}({a}, {b})")
        elif op == "vsplat":
            source = read(instr.srcs[0])
            emit(f"{dst_of(instr)} = [{source}] * {instr.ty.lanes}")
        elif op == "vreduce":
            impure[0] = True        # empty-vector trap
            reduce_op, acc_ty = instr.arg
            if reduce_op not in ("add", "max", "min"):
                raise ValueError("undefined reduce op")   # -> fallback
            widen_kernel = cast_kernel(instr.ty.elem, acc_ty)
            widen_tpl = fold_tpl = None
            if tier2:
                if widen_kernel is identity_kernel:
                    widen_tpl = ("{a}", True)
                else:
                    widen_tpl = inline_cast(instr.ty.elem, acc_ty, env)
                fold_tpl = inline_binop(reduce_op, acc_ty, env)
            vec = read(instr.srcs[0])
            acc, lane = newt(), newt()
            emit(f"if not {vec}:")
            emit("raise TrapError('reduce of empty vector')", "    ")
            if widen_tpl is not None and widen_tpl[1] \
                    and fold_tpl is not None and fold_tpl[1]:
                # Inline the whole fold: no kernel call per lane.
                wexpr = widen_tpl[0]
                emit(f"{acc} = {wexpr.format(a=f'{vec}[0]')}")
                emit(f"for {lane} in {vec}[1:]:")
                emit(f"{acc} = "
                     f"{fold_tpl[0].format(a=acc, b=wexpr.format(a=lane))}",
                     "    ")
            else:
                widen = env.bind(widen_kernel, "k")
                fold = env.bind(binop_kernel(reduce_op, acc_ty), "k")
                emit(f"{acc} = {widen}({vec}[0])")
                emit(f"for {lane} in {vec}[1:]:")
                emit(f"{acc} = {fold}({acc}, {widen}({lane}))", "    ")
            emit(f"{dst_of(instr)} = {acc}")
        else:
            raise ValueError(f"bad machine opcode {op!r}")  # fallback

        if len(lines) > marker_at and impure[0]:
            lines.insert(marker_at, f"_i = {pc - leader}")

    if code[exit_pc - 1].op not in ("br", "brif", "ret", "call"):
        emit(goto_fmt.format(exit_pc))

    return lines


# ---------------------------------------------------------------------------
# tier-2: whole-function translation
# ---------------------------------------------------------------------------
#
# One generated Python function covers every fuel block: a ``while 1``
# dispatcher over block leaders, the flat register files lowered to
# Python locals (``ri3`` instead of ``ri[3]``), and the same per-op
# lowering as the block tier (shared via ``_gen_block_lines``).  The
# contract matches a block handler exactly —
# ``_t2(ri, rf, rv, slots, fb, mem, sim, res) -> pc`` — so the
# trampoline in ``Simulator._call_fast`` treats its return value like
# any block's:
#
# * ``-1``   — the function returned (``sim._ret`` holds the value);
# * leader pc — a *deopt*: a fuel debit would cross the limit, or the
#   block resisted translation.  The tier-2 code writes its lowered
#   registers back into the flat files, leaves the block **undebited**
#   (fuel and res counters both) and hands the leader to the
#   block-threaded trampoline, which re-debits and (on fuel
#   exhaustion) meters per instruction — so cycle/instruction counts
#   and trap messages stay byte-identical to the reference.
#
# Fuel accounting comes in two shapes: functions containing calls keep
# ``sim._executed`` live at every block debit (the callee's debits
# must interleave with the caller's exactly as per-instruction
# accounting would), while call-free functions carry the counter in a
# local and flush it on every exit path.  The res counters are debited
# per block either way — they are only read after the run completes.

def _build_tier2(func: CompiledFunction, binding=None,
                 warm: bool = False):
    """The must-written register facts come proven from the dataflow
    plane (:func:`repro.analysis.facts.machine_facts`, the worklist
    solve that used to live here as ``_written_at_block_entry``); a
    function the plane declines gets no tier-2 at all."""
    facts, fresh = machine_facts(func)
    if fresh:
        TIER2_BUILDS["facts_warm" if warm else "facts_request"] += 1
    if facts is None:
        return None
    try:
        source, env = _gen_tier2(func, binding, facts)
        exec(compile(source, f"<pvi-sim-t2:{func.name}>", "exec"), env)
        t2 = env["_t2"]
        #: the per-leader entry whitelist, for introspection/tests
        t2.osr_entries = env.get("_OSR_ENTRIES", frozenset())
        t2.guards_elided = env.get("_GUARDS_ELIDED", 0)
        t2.guards_kept = env.get("_GUARDS_KEPT", 0)
        TIER2_BUILDS["guards_elided"] += t2.guards_elided
        TIER2_BUILDS["guards_kept"] += t2.guards_kept
        return t2
    except Exception:
        return None


def _gen_tier2(func: CompiledFunction, binding=None, facts=None):
    code = func.code
    n = len(code)
    name = func.name
    blocks = fuel_blocks(code)
    env_dict = {"TrapError": TrapError, "_PE": PACK_COERCE_ERRORS,
                "_UNSET": UNSET}
    env = CodegenEnv(env_dict)
    param_regs = _param_regs(func)
    reg_counts, _ = _register_layout(func)
    has_calls = any(instr.op == "call" for instr in code)
    counters_by_block = {leader: _block_counters(code, leader, length)
                         for leader, length in blocks.items()}

    named = [(file_name, count) for file_name, count
             in zip(("ri", "rf", "rv"), reg_counts) if count]
    load_regs = "; ".join(f"{f}{k} = {f}[{k}]"
                          for f, count in named for k in range(count))
    writeback = ["; ".join(f"{f}[{k}] = {f}{k}"
                           for f, count in named for k in range(count))] \
        if named else []

    # Res counters: functions containing calls keep them live on the
    # shared result object (the callee's debits interleave); call-free
    # functions carry them in locals and flush on every exit — they
    # are only read after the run completes (and are unobservable
    # after a trap, so the raise paths skip the flush).
    if has_calls:
        res_fields = []
    else:
        res_fields = ["instructions", "cycles"] + \
            [field for field in ("branches", "spill_loads",
                                 "spill_stores", "calls")
             if any(c[field] for c in counters_by_block.values())]
    res_load = "; ".join(f"_r_{f} = res.{f}" for f in res_fields)
    res_flush = "; ".join(f"res.{f} = _r_{f}" for f in res_fields)
    if has_calls:
        counter_flush = []
        ret_lines = ("return -1",)
    else:
        counter_flush = ["sim._executed = executed", res_flush]
        ret_lines = ("sim._executed = executed", res_flush,
                     "return -1")

    out: List[str] = []

    def w(line: str, indent: int = 0) -> None:
        out.append(" " * indent + line)

    # Loop blocks head the dispatch ladder: every block inside a
    # back-edge span is checked before the straight-line entry/exit
    # blocks, so iterations match on the first arms instead of
    # scanning the whole elif chain once per transfer.
    hot = set()
    for src, instr in enumerate(code):
        if instr.op in ("br", "brif") and isinstance(instr.arg, int) \
                and 0 <= instr.arg <= src:
            hot.update(b for b in blocks if instr.arg <= b <= src)
    ordered = [b for b in blocks if b in hot] \
        + [b for b in blocks if b not in hot]

    # Pre-translate every block under the whole-function dataflow
    # facts; an untranslatable block keeps no dispatch arm — its
    # leader falls through to the else arm, a per-block deopt point.
    # The per-leader must-written register sets come proven from the
    # dataflow plane (``repro.analysis.passes.written_at_block_entry``
    # — the same forward must-solve this module used to run
    # privately): along any internal edge the whole predecessor block
    # executed (a mid-block trap propagates out, a fuel deopt returns
    # to the block trampoline), so every destination it names is
    # written.
    if facts is None:
        facts, _ = machine_facts(func)
        if facts is None:
            raise ValueError(
                f"analysis declined {func.name!r}; no tier-2 facts")
    entry_written = facts.written_at_entry
    bodies = {}
    for leader in blocks:
        try:
            bodies[leader] = _gen_block_lines(
                name, code, leader, blocks[leader], env,
                entry_written.get(leader, param_regs), binding,
                reg_fmt="{0}{1}", check_direct=True,
                goto_fmt="pc = {0}", ret_lines=ret_lines,
                tier2=True, data="_md", msize="_ms")
        except Exception:
            bodies[leader] = None

    # Two-block natural loops — a header ending in ``brif`` and a
    # lone latch ending in ``br header`` — run as a native ``while``
    # inside the header's dispatch arm, so loop iterations pay no
    # dispatch at all.  Fuel/counter debits and deopt returns stay
    # per block, byte-identical to the ladder form.
    loops = {}
    dropped = set()
    for src, instr in enumerate(code):
        if instr.op != "br" or not isinstance(instr.arg, int):
            continue
        header = instr.arg
        if header not in blocks or header > src:
            continue
        latch = max(b for b in blocks if b <= src)
        if latch == header or src != latch + blocks[latch] - 1:
            continue
        hbody, lbody = bodies.get(header), bodies.get(latch)
        if not hbody or not lbody or lbody[-1] != f"pc = {header}":
            continue
        branch = re.fullmatch(r"pc = (\d+) if (.+) else (\d+)",
                              hbody[-1])
        if branch is None:
            continue
        taken, fall = int(branch.group(1)), int(branch.group(3))
        if taken == fall or latch not in (taken, fall):
            continue
        if header in loops:
            dropped.add(header)     # two latches: keep the ladder form
        loops[header] = (latch, branch.group(2), taken, fall)
    for header in dropped:
        del loops[header]
    loops = {header: entry for header, entry in loops.items()
             if header not in {e[0] for e in loops.values()}
             and entry[0] not in loops}
    fused_latches = {entry[0] for entry in loops.values()}

    # On-stack replacement entry points: translated back-edge targets
    # (loop headers) outside fused latches.  The trampoline may call
    # ``_t2`` with ``pc`` at one of these, handing over the live
    # block-tier register files mid-call.
    osr_entries = sorted(t for t in backedge_targets(code, blocks)
                         if bodies.get(t) and t not in fused_latches)
    env_dict["_OSR_ENTRIES"] = frozenset(osr_entries)

    w("def _t2(ri, rf, rv, slots, fb, mem, sim, res, pc=0):")
    w("fuel = sim.fuel", 4)
    w("_md = mem.data; _ms = mem.size", 4)
    if load_regs:
        w(load_regs, 4)
    # OSR entry guard: only whitelisted leaders may enter mid-call.
    # The must-written facts hold for the block tier's register files
    # too (same block graph, same all-or-nothing block execution), so
    # the per-entry ``_UNSET`` re-checks of every register assumed
    # written at the leader are always false on a handed-over
    # snapshot and are elided; ``PVI_OSR_GUARDS=1`` keeps them
    # (differential escape hatch — both modes must observe
    # byte-identical runs).  Either way the counts are surfaced in
    # ``tier2_build_stats()``.
    if osr_entries:
        osr_name = env.bind(frozenset(osr_entries), "osr")
        w("if pc:", 4)
        w(f"if pc not in {osr_name}:", 8)
        w("return pc", 12)
        keep = keep_osr_guards()
        for leader in osr_entries:
            assumed = entry_written.get(leader, param_regs) - param_regs
            names = sorted(f"{_REG_FILES[kind]}{index}"
                           for kind, index in assumed)
            if not names:
                continue
            if not keep:
                env_dict["_GUARDS_ELIDED"] = \
                    env_dict.get("_GUARDS_ELIDED", 0) + len(names)
                continue
            env_dict["_GUARDS_KEPT"] = \
                env_dict.get("_GUARDS_KEPT", 0) + len(names)
            unset = " or ".join(f"{reg} is _UNSET" for reg in names)
            w(f"if pc == {leader} and ({unset}):", 8)
            w("return pc", 12)
    else:
        w("if pc:", 4)
        w("return pc", 8)
    if not has_calls:
        w("executed = sim._executed", 4)
        if res_load:
            w(res_load, 4)
    w("while 1:", 4)

    def emit_block(leader: int, base: int, body) -> None:
        """Fuel/counter debits + (possibly metered) body at indent
        ``base``."""
        length = blocks[leader]
        counters = counters_by_block[leader]
        if has_calls:
            w(f"executed = sim._executed + {length}", base)
            w("if executed > fuel:", base)
            for line in writeback:
                w(line, base + 4)
            w(f"return {leader}", base + 4)
            w("sim._executed = executed", base)
            w(f"res.instructions += {length}", base)
            w(f"res.cycles += {counters['cycles']}", base)
            for field in ("branches", "spill_loads", "spill_stores",
                          "calls"):
                if counters[field]:
                    w(f"res.{field} += {counters[field]}", base)
        else:
            w(f"executed += {length}", base)
            w("if executed > fuel:", base)
            w(f"executed -= {length}", base + 4)
            for line in writeback:
                w(line, base + 4)
            w("sim._executed = executed", base + 4)
            if res_flush:
                w(res_flush, base + 4)
            w(f"return {leader}", base + 4)
            debits = [f"_r_instructions += {length}",
                      f"_r_cycles += {counters['cycles']}"]
            debits += [f"_r_{field} += {counters[field]}"
                       for field in ("branches", "spill_loads",
                                     "spill_stores", "calls")
                       if counters[field]]
            w("; ".join(debits), base)
        # A block with no ``_i`` markers has no instruction that can
        # raise — the rollback handler is dead, so elide it.
        if not any(line.startswith("_i = ") for line in body):
            for line in body:
                w(line, base)
            return
        w(f"_i = {length - 1}", base)
        w("try:", base)
        for line in body:
            w(line, base + 4)
        w("except Exception:", base)
        # roll the debit back to the trapping instruction, exactly
        # like the block tier's except clause
        if has_calls:
            w(f"sim._executed -= {length} - _i - 1", base + 4)
        else:
            w(f"sim._executed = executed - ({length} - _i - 1)",
              base + 4)
        w("raise", base + 4)

    keyword = "if"
    for leader in ordered:
        body = bodies[leader]
        if body is None or leader in fused_latches:
            continue
        w(f"{keyword} pc == {leader}:", 8)
        keyword = "elif"
        if leader not in loops:
            emit_block(leader, 12, body)
            continue
        latch, cond, taken, fall = loops[leader]
        # The header's terminal branch becomes the loop exit; the
        # latch's terminal ``pc = header`` becomes the implicit
        # back edge.
        if latch == taken:
            exits = [f"if not ({cond}):", f"    pc = {fall}",
                     "    break"]
        else:
            exits = [f"if {cond}:", f"    pc = {taken}", "    break"]
        w("while 1:", 12)
        emit_block(leader, 16, body[:-1] + exits)
        emit_block(latch, 16, bodies[latch][:-1])

    fell = env.bind(f"{name}: fell off code end", "m")
    w(f"{keyword} pc == {n}:", 8)
    if not has_calls:
        w("sim._executed = executed", 12)
    w(f"raise TrapError({fell})", 12)
    w("else:", 8)
    for line in writeback:
        w(line, 12)
    for line in counter_flush:
        if line:
            w(line, 12)
    w("return pc", 12)

    return "\n".join(out), env_dict


# ---------------------------------------------------------------------------
# raw per-instruction handlers (metered path + codegen fallback)
# ---------------------------------------------------------------------------

def _reader(operand, name: str) -> Callable:
    """A closure reading one operand from the flat register files."""
    kind, value = operand
    if kind == "imm":
        def r(ri, rf, rv, _v=value):
            return _v
        return r
    if kind == "slot":
        def r(ri, rf, rv):
            raise TrapError("raw slot operand outside spill op")
        return r
    if kind not in _CLS_INDEX:
        # The reference's regs[kind] KeyError funnels into its
        # uninitialized-register trap; match that.
        def r(ri, rf, rv):
            raise TrapError(f"{name}: read of uninitialized register "
                            f"{kind}{value}")
        return r
    cls = _CLS_INDEX[kind]

    def r(ri, rf, rv, _c=cls, _i=value):
        v = (ri, rf, rv)[_c][_i]
        if v is UNSET:
            raise TrapError(f"{name}: read of uninitialized register "
                            f"{kind}{value}")
        return v
    return r


def _make_raw_handler(name: str, pc: int, instr,
                      n: int, binding=None) -> Handler:
    op = instr.op
    nxt = pc + 1
    dst = instr.dst
    if dst is not None and dst[0] in _CLS_INDEX:
        dst_cls = _CLS_INDEX[dst[0]]
        dst_index = dst[1]
    else:
        dst_cls = dst_index = None

    def write(ri, rf, rv, value):
        (ri, rf, rv)[dst_cls][dst_index] = value

    if op == "bin":
        kernel = binop_kernel(instr.arg, instr.ty)
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv), rb(ri, rf, rv)))
            return nxt
    elif op == "mov":
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, ra(ri, rf, rv))
            return nxt
    elif op == "cmp":
        kernel = cmp_kernel(instr.arg, instr.ty)
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv), rb(ri, rf, rv)))
            return nxt
    elif op == "un":
        kernel = unop_kernel(instr.arg, instr.ty)
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv)))
            return nxt
    elif op == "cast":
        from_ty, to_ty = instr.arg
        kernel = cast_kernel(from_ty, to_ty)
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv)))
            return nxt
    elif op == "select":
        rc = _reader(instr.srcs[0], name)
        ra = _reader(instr.srcs[1], name)
        rb = _reader(instr.srcs[2], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            value = ra(ri, rf, rv) if rc(ri, rf, rv) != 0 \
                else rb(ri, rf, rv)
            write(ri, rf, rv, value)
            return nxt
    elif op == "load":
        value_ty = instr.ty
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 1 \
            else None

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            write(ri, rf, rv, mem.load(value_ty, addr))
            return nxt
    elif op == "store":
        value_ty = instr.ty
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 2 \
            else None
        rs = _reader(instr.srcs[-1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            mem.store(value_ty, addr, rs(ri, rf, rv))
            return nxt
    elif op == "lea.frame":
        offset = instr.arg

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, fb + offset)
            return nxt
    elif op == "spill.ld":
        slot = instr.arg

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            try:
                value = slots[slot]
            except KeyError:
                raise TrapError(f"{name}: reload of empty spill "
                                f"slot {slot}")
            write(ri, rf, rv, value)
            return nxt
    elif op == "spill.st":
        slot = instr.arg
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            slots[slot] = ra(ri, rf, rv)
            return nxt
    elif op == "br":
        target = normalize_branch_target(instr.arg, n)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            return target
    elif op == "brif":
        target = normalize_branch_target(instr.arg, n)
        rc = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            return target if rc(ri, rf, rv) != 0 else nxt
    elif op == "call":
        callee_name = instr.arg
        resolved = _resolved_callee(binding, callee_name)
        getters = []
        for operand in instr.srcs:
            if operand[0] == "slot":
                def getter(ri, rf, rv, slots, _index=operand[1]):
                    return slots[_index]
            else:
                def getter(ri, rf, rv, slots,
                           _r=_reader(operand, name)):
                    return _r(ri, rf, rv)
            getters.append(getter)

        if resolved is not None:
            def handler(ri, rf, rv, slots, fb, mem, sim, res,
                        _callee=resolved):
                values = [g(ri, rf, rv, slots) for g in getters]
                result = sim._call_fast(_callee, values, res)
                if dst_cls is not None:
                    write(ri, rf, rv, result)
                return nxt
        else:
            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                values = [g(ri, rf, rv, slots) for g in getters]
                callee = sim.module.functions[callee_name]
                result = sim._call_fast(callee, values, res)
                if dst_cls is not None:
                    write(ri, rf, rv, result)
                return nxt
    elif op == "ret":
        if instr.srcs:
            ra = _reader(instr.srcs[0], name)

            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                sim._ret = ra(ri, rf, rv)
                return -1
        else:
            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                sim._ret = None
                return -1
    elif op == "vload":
        elem = instr.ty.elem
        lanes = instr.ty.lanes
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 1 \
            else None

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            write(ri, rf, rv, mem.load_vec(elem, lanes, addr))
            return nxt
    elif op == "vstore":
        elem = instr.ty.elem
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 2 \
            else None
        rs = _reader(instr.srcs[-1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            mem.store_vec(elem, addr, rs(ri, rf, rv))
            return nxt
    elif op == "vbin":
        kernel = vec_binop_kernel(instr.arg, instr.ty.elem)
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv), rb(ri, rf, rv)))
            return nxt
    elif op == "vsplat":
        lanes = instr.ty.lanes
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, [ra(ri, rf, rv)] * lanes)
            return nxt
    elif op == "vreduce":
        reduce_op, acc_ty = instr.arg
        widen = cast_kernel(instr.ty.elem, acc_ty)
        ra = _reader(instr.srcs[0], name)
        if reduce_op in ("add", "max", "min"):
            fold = binop_kernel(reduce_op, acc_ty)

            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                vec = ra(ri, rf, rv)
                if not vec:
                    raise TrapError("reduce of empty vector")
                acc = widen(vec[0])
                for lane in vec[1:]:
                    acc = fold(acc, widen(lane))
                write(ri, rf, rv, acc)
                return nxt
        else:
            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                raise TrapError(f"reduce op {reduce_op!r} undefined")
    else:
        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            raise TrapError(f"bad machine opcode {op!r}")

    return handler
