"""Predecoded, block-threaded execution core for the machine simulator.

The reference simulator (``Simulator._call``) re-dispatches every
:class:`~repro.targets.isa.MInst` through a string ladder, keeps
register files as dict-of-dicts, creates a fresh ``read()`` closure
per call and bumps five counters per executed instruction.  This
module translates a :class:`~repro.targets.isa.CompiledFunction`
**once** into handler closures over *flat-list* register files (an
``_UNSET`` sentinel standing in for "never written"), with operand
locations, semantics kernels and cycle costs resolved at decode time.

Structure mirrors :mod:`repro.vm.threaded`: every *fuel block* (ending
at a branch, ``ret`` or ``call``) compiles to one Python function that
debits fuel **and all counters** (instructions, cycles, branches,
spills, calls) on entry — blocks execute linearly to their terminator,
so successful runs reproduce the reference engine's per-instruction
totals exactly.  A debit crossing the fuel limit re-runs the block
instruction-by-instruction via the raw closures
(:class:`repro.engine.MeterTrip` -> ``Simulator._run_metered``), so
the fuel trap lands on precisely the reference engine's instruction.
Blocks whose code generation bails fall back to the raw closures with
the same block-entry debit.

The predecoded form is cached on the function object
(``CompiledFunction.cached_predecode``) keyed by a structural content
token, so the first simulation of an image pays decode exactly once no
matter how many Simulators run it.  Latency-sensitive deployments can
prepay it with :func:`warm_module` (or ``PVI_JIT_PREDECODE=1``, which
makes the JIT warm every image it emits).

When the module is *frozen* (``CompiledModule.freeze()`` — the JIT
freezes every image it emits), ``call`` targets resolve once at
predecode time: the callee :class:`CompiledFunction` is bound
directly into the handlers (per-call inline caching) instead of being
looked up in ``sim.module.functions`` per executed call; the cache
records the binding module and content-token invalidation works
unchanged.
"""

from __future__ import annotations

from typing import Callable, List

from repro.engine import (
    CodegenEnv, MASK64_LITERAL, MeterTrip, fuel_blocks,
    normalize_branch_target,
)
from repro.lang import types as ty
from repro.semantics.errors import TrapError
from repro.semantics.kernels import (
    binop_kernel, cast_kernel, cmp_kernel, identity_kernel, unop_kernel,
    vec_binop_kernel,
)
from repro.semantics.memory import (
    NULL_GUARD, PACK_COERCE_ERRORS, scalar_struct, vector_struct,
)
from repro.targets.isa import CompiledFunction, CompiledModule

#: "register never written" sentinel for the flat register files
UNSET = object()

_REG_FILES = {"int": "ri", "flt": "rf", "vec": "rv"}
_CLS_INDEX = {"int": 0, "flt": 1, "vec": 2}

#: handler signature:
#: (ri, rf, rv, slots, fb, mem, sim, res) -> pc   (-1 = returned)
Handler = Callable


class PredecodedMachine:
    """One compiled function's decoded form."""

    __slots__ = ("token", "handlers", "raw", "reg_counts", "param_locs",
                 "frame_bytes")

    def __init__(self, token, handlers, raw, reg_counts, param_locs,
                 frame_bytes):
        self.token = token
        self.handlers = handlers
        self.raw = raw
        self.reg_counts = reg_counts          # (n_int, n_flt, n_vec)
        self.param_locs = param_locs          # [(cls_index | -1, index)]
        self.frame_bytes = frame_bytes


def predecode_machine(func: CompiledFunction,
                      module=None) -> PredecodedMachine:
    """The (cached) predecoded form of ``func``.

    With a *frozen* ``module`` supplied (the JIT freezes every image
    it emits), ``call`` targets are resolved once here — the callee
    :class:`CompiledFunction` is bound directly into the handlers
    (per-call inline caching).  The cache records the binding module;
    in-place code edits invalidate via the existing content token.
    """
    binding = module if module is not None and \
        getattr(module, "frozen", False) else None
    token = func.content_token()
    cached = func.cached_predecode(token, binding)
    if cached is not None:
        return cached
    pre = _build(func, token, binding)
    func.store_predecode(token, pre, binding)
    return pre


def warm_module(module: CompiledModule) -> CompiledModule:
    """Predecode every function of an image (JIT/service warm hook)."""
    for func in module.functions.values():
        predecode_machine(func, module)
    return module


def _resolved_callee(binding, name):
    """The callee bound at predecode time, or ``None`` to fall back to
    the dynamic per-call lookup (no frozen module, or a call to a
    missing function — which must keep failing at execution time,
    exactly like the reference engine)."""
    if binding is None:
        return None
    return binding.functions.get(name)


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------

def _build(func: CompiledFunction, token,
           binding=None) -> PredecodedMachine:
    code = func.code
    n = len(code)
    name = func.name

    def tail(ri, rf, rv, slots, fb, mem, sim, res):
        raise TrapError(f"{name}: fell off code end")

    raw: List[Handler] = [None] * (n + 1)
    raw[n] = tail
    for pc, instr in enumerate(code):
        try:
            raw[pc] = _make_raw_handler(name, pc, instr, n, binding)
        except Exception as exc:
            def deferred(ri, rf, rv, slots, fb, mem, sim, res,
                         _exc=exc):
                raise _exc
            raw[pc] = deferred

    handlers = list(raw)
    blocks = fuel_blocks(code)
    env = {"TrapError": TrapError, "MeterTrip": MeterTrip,
           "_PE": PACK_COERCE_ERRORS, "_UNSET": UNSET}
    written_at_entry = _param_regs(func)
    sources = []
    compiled = {}
    for leader, length in blocks.items():
        try:
            sources.append(_gen_block(name, code, leader, length, env,
                                      written_at_entry, binding))
            compiled[leader] = f"_b{leader}"
        except Exception:
            handlers[leader] = _interp_block(code, raw, leader, length)
    if sources:
        try:
            exec(compile("\n".join(sources), f"<pvi-sim:{name}>",
                         "exec"), env)
            for leader, block_name in compiled.items():
                handlers[leader] = env[block_name]
        except Exception:       # defensive: degrade, never break
            for leader in compiled:
                handlers[leader] = _interp_block(code, raw, leader,
                                                 blocks[leader])

    reg_counts = [0, 0, 0]
    param_locs = []
    for kind, index in func.param_locs:
        if kind == "slot":
            param_locs.append((-1, index))
        else:
            cls = _CLS_INDEX[kind]
            param_locs.append((cls, index))
            reg_counts[cls] = max(reg_counts[cls], index + 1)
    for instr in code:
        if instr.dst is not None and instr.dst[0] in _CLS_INDEX:
            cls = _CLS_INDEX[instr.dst[0]]
            reg_counts[cls] = max(reg_counts[cls], instr.dst[1] + 1)
        for kind, value in instr.srcs:
            if kind in _CLS_INDEX and isinstance(value, int):
                cls = _CLS_INDEX[kind]
                reg_counts[cls] = max(reg_counts[cls], value + 1)

    return PredecodedMachine(token, handlers, raw, tuple(reg_counts),
                             param_locs, func.frame_bytes)


def _param_regs(func: CompiledFunction) -> set:
    """(kind, index) registers guaranteed written at function entry."""
    return {loc for loc in func.param_locs if loc[0] != "slot"}


def _block_counters(code, leader: int, length: int) -> dict:
    counters = {"cycles": 0, "branches": 0, "spill_loads": 0,
                "spill_stores": 0, "calls": 0}
    for instr in code[leader:leader + length]:
        counters["cycles"] += instr.cost
        if instr.op in ("br", "brif"):
            counters["branches"] += 1
        elif instr.op == "spill.ld":
            counters["spill_loads"] += 1
        elif instr.op == "spill.st":
            counters["spill_stores"] += 1
        elif instr.op == "call":
            counters["calls"] += 1
    return counters


def _debit_lines(code, leader: int, length: int) -> List[str]:
    counters = _block_counters(code, leader, length)
    lines = [
        f"executed = sim._executed + {length}",
        "sim._executed = executed",
        "if executed > sim.fuel:",
        f"    sim._executed = executed - {length}",
        f"    raise MeterTrip({leader})",
        f"res.instructions += {length}",
        f"res.cycles += {counters['cycles']}",
    ]
    for field in ("branches", "spill_loads", "spill_stores", "calls"):
        if counters[field]:
            lines.append(f"res.{field} += {counters[field]}")
    return lines


def _interp_block(code, raw, leader: int, length: int) -> Handler:
    counters = _block_counters(code, leader, length)
    cycles = counters["cycles"]
    branches = counters["branches"]
    spill_loads = counters["spill_loads"]
    spill_stores = counters["spill_stores"]
    calls = counters["calls"]

    def block(ri, rf, rv, slots, fb, mem, sim, res):
        executed = sim._executed + length
        sim._executed = executed
        if executed > sim.fuel:
            sim._executed = executed - length
            raise MeterTrip(leader)
        res.instructions += length
        res.cycles += cycles
        if branches:
            res.branches += branches
        if spill_loads:
            res.spill_loads += spill_loads
        if spill_stores:
            res.spill_stores += spill_stores
        if calls:
            res.calls += calls
        pc = leader
        step = length - 1
        try:
            for step in range(length):
                pc = raw[pc](ri, rf, rv, slots, fb, mem, sim, res)
        except Exception:
            # roll the fuel debit back to the trapping instruction
            # (res counters are unobservable after a trap)
            sim._executed -= length - step - 1
            raise
        return pc
    return block


# ---------------------------------------------------------------------------
# block code generation
# ---------------------------------------------------------------------------

def _gen_block(name: str, code, leader: int, length: int, env_dict,
               written_at_entry: set, binding=None) -> str:
    env = CodegenEnv(env_dict)
    lines: List[str] = []
    written = set(written_at_entry)
    counter = [0]

    def newt() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    def emit(text: str, indent: str = "") -> None:
        lines.append(indent + text)

    def read(operand, indent: str = "") -> str:
        kind, value = operand
        if kind == "imm":
            if type(value) is int:
                return f"({value!r})"
            return env.bind(value, "c")
        if kind == "slot":
            raise ValueError("raw slot operand")      # -> fallback
        reg_file = _REG_FILES[kind]
        if (kind, value) in written:
            return f"{reg_file}[{value}]"
        t = newt()
        emit(f"{t} = {reg_file}[{value}]", indent)
        emit(f"if {t} is _UNSET:", indent)
        message = env.bind(f"{name}: read of uninitialized register "
                           f"{kind}{value}", "m")
        emit(f"raise TrapError({message})", indent + "    ")
        return t

    def dst_of(instr) -> str:
        kind, index = instr.dst
        written.add((kind, index))
        return f"{_REG_FILES[kind]}[{index}]"

    def addr_of(instr, srcs, indent: str = "") -> str:
        base = read(srcs[0], indent)
        if len(srcs) > 1:
            offset = read(srcs[1], indent)
            t = newt()
            emit(f"{t} = ({base}) + ({offset})", indent)
            base = t
        t = newt()
        emit(f"{t} = ({base}) & {MASK64_LITERAL}", indent)
        return t

    def bounds(addr_var: str, size: int) -> None:
        emit(f"if {addr_var} < {NULL_GUARD} or "
             f"{addr_var} + {size} > mem.size:")
        emit('raise TrapError(f"memory access out of bounds: '
             'addr={' + addr_var + ':#x} size=' + str(size) + '")',
             "    ")

    exit_pc = leader + length

    for pc in range(leader, exit_pc):
        instr = code[pc]
        op = instr.op
        # Progress marker: if this instruction traps mid-block, the
        # except clause rolls the block-entry fuel debit back to
        # exactly the reference engine's per-instruction count.
        marker_at = len(lines)

        # NB: sources must be read (and uninitialized-register checked)
        # *before* dst_of marks the destination written — a dst that
        # aliases an unwritten source must still trap.
        if op == "bin":
            kernel = env.bind(binop_kernel(instr.arg, instr.ty), "k")
            a = read(instr.srcs[0])
            b = read(instr.srcs[1])
            emit(f"{dst_of(instr)} = {kernel}({a}, {b})")
        elif op == "mov":
            source = read(instr.srcs[0])
            emit(f"{dst_of(instr)} = {source}")
        elif op == "cmp":
            kernel = env.bind(cmp_kernel(instr.arg, instr.ty), "k")
            a = read(instr.srcs[0])
            b = read(instr.srcs[1])
            emit(f"{dst_of(instr)} = {kernel}({a}, {b})")
        elif op == "un":
            kernel = env.bind(unop_kernel(instr.arg, instr.ty), "k")
            source = read(instr.srcs[0])
            emit(f"{dst_of(instr)} = {kernel}({source})")
        elif op == "cast":
            from_ty, to_ty = instr.arg
            kernel = cast_kernel(from_ty, to_ty)
            source = read(instr.srcs[0])
            if kernel is identity_kernel:
                emit(f"{dst_of(instr)} = {source}")
            else:
                emit(f"{dst_of(instr)} = "
                     f"{env.bind(kernel, 'k')}({source})")
        elif op == "select":
            # Lazy like the reference: only the chosen operand is read
            # (and only it gets the uninitialized-register check); the
            # destination counts as written only after both branches
            # are generated, so a dst-aliasing operand still checks.
            cond = read(instr.srcs[0])
            kind, index = instr.dst
            dst = f"{_REG_FILES[kind]}[{index}]"
            emit(f"if ({cond}) != 0:")
            taken = read(instr.srcs[1], "    ")
            emit(f"{dst} = {taken}", "    ")
            emit("else:")
            untaken = read(instr.srcs[2], "    ")
            emit(f"{dst} = {untaken}", "    ")
            written.add((kind, index))
        elif op == "load":
            packer = scalar_struct(instr.ty)
            unpack = env.bind(packer.unpack_from, "u")
            addr = addr_of(instr, instr.srcs)
            bounds(addr, packer.size)
            emit(f"{dst_of(instr)} = {unpack}(mem.data, {addr})[0]")
        elif op == "store":
            packer = scalar_struct(instr.ty)
            pack = env.bind(packer.pack_into, "p")
            if isinstance(instr.ty, ty.IntType):
                coerce = env.bind(
                    lambda v, _t=instr.ty: ty.wrap_int(int(v), _t), "w")
            else:
                coerce = "float"
            addr = addr_of(instr, instr.srcs[:-1])
            value = read(instr.srcs[-1])
            bounds(addr, packer.size)
            emit("try:")
            emit(f"{pack}(mem.data, {addr}, {value})", "    ")
            emit("except _PE:")
            emit(f"{pack}(mem.data, {addr}, {coerce}({value}))", "    ")
        elif op == "lea.frame":
            emit(f"{dst_of(instr)} = fb + {instr.arg}")
        elif op == "spill.ld":
            message = env.bind(f"{name}: reload of empty spill slot "
                               f"{instr.arg}", "m")
            emit("try:")
            emit(f"{dst_of(instr)} = slots[{instr.arg}]", "    ")
            emit("except KeyError:")
            emit(f"raise TrapError({message})", "    ")
        elif op == "spill.st":
            emit(f"slots[{instr.arg}] = {read(instr.srcs[0])}")
        elif op == "br":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            emit(f"return {target}")
        elif op == "brif":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            cond = read(instr.srcs[0])
            emit(f"return {target} if ({cond}) != 0 else {exit_pc}")
        elif op == "call":
            resolved = _resolved_callee(binding, instr.arg)
            values = []
            for operand in instr.srcs:
                if operand[0] == "slot":
                    # KeyError propagates raw, exactly like the
                    # reference's direct slots[...] access; read into
                    # a temp so operand traps keep their source order
                    t = newt()
                    emit(f"{t} = slots[{operand[1]}]")
                    values.append(t)
                else:
                    values.append(read(operand))
            result = newt()
            if resolved is not None:
                # Inline cache: the frozen module pins the callee.
                emit(f"{result} = sim._call_fast("
                     f"{env.bind(resolved, 'f')}, "
                     f"[{', '.join(values)}], res)")
            else:
                callee = env.bind(instr.arg, "n")
                emit(f"{result} = sim._call_fast(sim.module.functions"
                     f"[{callee}], [{', '.join(values)}], res)")
            if instr.dst is not None:
                emit(f"{dst_of(instr)} = {result}")
            emit(f"return {exit_pc}")
        elif op == "ret":
            if instr.srcs:
                emit(f"sim._ret = {read(instr.srcs[0])}")
            else:
                emit("sim._ret = None")
            emit("return -1")
        elif op == "vload":
            packer = vector_struct(instr.ty.elem, instr.ty.lanes)
            unpack = env.bind(packer.unpack_from, "u")
            addr = addr_of(instr, instr.srcs)
            bounds(addr, packer.size)
            emit(f"{dst_of(instr)} = list({unpack}(mem.data, {addr}))")
        elif op == "vstore":
            lanes = instr.ty.lanes
            packer = vector_struct(instr.ty.elem, lanes)
            pack = env.bind(packer.pack_into, "p")
            elem_name = env.bind(instr.ty.elem, "e")
            addr = addr_of(instr, instr.srcs[:-1])
            value = read(instr.srcs[-1])
            emit(f"if len({value}) == {lanes} and "
                 f"{addr} >= {NULL_GUARD} and "
                 f"{addr} + {packer.size} <= mem.size:")
            emit("try:", "    ")
            emit(f"{pack}(mem.data, {addr}, *{value})", "        ")
            emit("except _PE:", "    ")
            emit(f"mem.store_vec({elem_name}, {addr}, {value})",
                 "        ")
            emit("else:")
            emit(f"mem.store_vec({elem_name}, {addr}, {value})", "    ")
        elif op == "vbin":
            kernel = env.bind(
                vec_binop_kernel(instr.arg, instr.ty.elem), "v")
            a = read(instr.srcs[0])
            b = read(instr.srcs[1])
            emit(f"{dst_of(instr)} = {kernel}({a}, {b})")
        elif op == "vsplat":
            source = read(instr.srcs[0])
            emit(f"{dst_of(instr)} = [{source}] * {instr.ty.lanes}")
        elif op == "vreduce":
            reduce_op, acc_ty = instr.arg
            if reduce_op not in ("add", "max", "min"):
                raise ValueError("undefined reduce op")   # -> fallback
            widen = env.bind(cast_kernel(instr.ty.elem, acc_ty), "k")
            fold = env.bind(binop_kernel(reduce_op, acc_ty), "k")
            vec = read(instr.srcs[0])
            acc, lane = newt(), newt()
            emit(f"if not {vec}:")
            emit("raise TrapError('reduce of empty vector')", "    ")
            emit(f"{acc} = {widen}({vec}[0])")
            emit(f"for {lane} in {vec}[1:]:")
            emit(f"{acc} = {fold}({acc}, {widen}({lane}))", "    ")
            emit(f"{dst_of(instr)} = {acc}")
        else:
            raise ValueError(f"bad machine opcode {op!r}")  # fallback

        if len(lines) > marker_at:       # instruction emits real code
            lines.insert(marker_at, f"_i = {pc - leader}")

    if not lines or not lines[-1].lstrip().startswith("return"):
        emit(f"return {exit_pc}")

    debit = "\n".join("    " + line
                      for line in _debit_lines(code, leader, length))
    body = "\n".join("        " + line for line in lines)
    return (f"def _b{leader}(ri, rf, rv, slots, fb, mem, sim, res):\n"
            f"{debit}\n"
            f"    _i = {length - 1}\n"
            f"    try:\n"
            f"{body}\n"
            f"    except Exception:\n"
            f"        # roll the fuel debit back to the trapping\n"
            f"        # instruction (res counters are unobservable\n"
            f"        # after a trap)\n"
            f"        sim._executed -= {length} - _i - 1\n"
            f"        raise\n")


# ---------------------------------------------------------------------------
# raw per-instruction handlers (metered path + codegen fallback)
# ---------------------------------------------------------------------------

def _reader(operand, name: str) -> Callable:
    """A closure reading one operand from the flat register files."""
    kind, value = operand
    if kind == "imm":
        def r(ri, rf, rv, _v=value):
            return _v
        return r
    if kind == "slot":
        def r(ri, rf, rv):
            raise TrapError("raw slot operand outside spill op")
        return r
    if kind not in _CLS_INDEX:
        # The reference's regs[kind] KeyError funnels into its
        # uninitialized-register trap; match that.
        def r(ri, rf, rv):
            raise TrapError(f"{name}: read of uninitialized register "
                            f"{kind}{value}")
        return r
    cls = _CLS_INDEX[kind]

    def r(ri, rf, rv, _c=cls, _i=value):
        v = (ri, rf, rv)[_c][_i]
        if v is UNSET:
            raise TrapError(f"{name}: read of uninitialized register "
                            f"{kind}{value}")
        return v
    return r


def _make_raw_handler(name: str, pc: int, instr,
                      n: int, binding=None) -> Handler:
    op = instr.op
    nxt = pc + 1
    dst = instr.dst
    if dst is not None and dst[0] in _CLS_INDEX:
        dst_cls = _CLS_INDEX[dst[0]]
        dst_index = dst[1]
    else:
        dst_cls = dst_index = None

    def write(ri, rf, rv, value):
        (ri, rf, rv)[dst_cls][dst_index] = value

    if op == "bin":
        kernel = binop_kernel(instr.arg, instr.ty)
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv), rb(ri, rf, rv)))
            return nxt
    elif op == "mov":
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, ra(ri, rf, rv))
            return nxt
    elif op == "cmp":
        kernel = cmp_kernel(instr.arg, instr.ty)
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv), rb(ri, rf, rv)))
            return nxt
    elif op == "un":
        kernel = unop_kernel(instr.arg, instr.ty)
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv)))
            return nxt
    elif op == "cast":
        from_ty, to_ty = instr.arg
        kernel = cast_kernel(from_ty, to_ty)
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv)))
            return nxt
    elif op == "select":
        rc = _reader(instr.srcs[0], name)
        ra = _reader(instr.srcs[1], name)
        rb = _reader(instr.srcs[2], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            value = ra(ri, rf, rv) if rc(ri, rf, rv) != 0 \
                else rb(ri, rf, rv)
            write(ri, rf, rv, value)
            return nxt
    elif op == "load":
        value_ty = instr.ty
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 1 \
            else None

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            write(ri, rf, rv, mem.load(value_ty, addr))
            return nxt
    elif op == "store":
        value_ty = instr.ty
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 2 \
            else None
        rs = _reader(instr.srcs[-1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            mem.store(value_ty, addr, rs(ri, rf, rv))
            return nxt
    elif op == "lea.frame":
        offset = instr.arg

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, fb + offset)
            return nxt
    elif op == "spill.ld":
        slot = instr.arg

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            try:
                value = slots[slot]
            except KeyError:
                raise TrapError(f"{name}: reload of empty spill "
                                f"slot {slot}")
            write(ri, rf, rv, value)
            return nxt
    elif op == "spill.st":
        slot = instr.arg
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            slots[slot] = ra(ri, rf, rv)
            return nxt
    elif op == "br":
        target = normalize_branch_target(instr.arg, n)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            return target
    elif op == "brif":
        target = normalize_branch_target(instr.arg, n)
        rc = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            return target if rc(ri, rf, rv) != 0 else nxt
    elif op == "call":
        callee_name = instr.arg
        resolved = _resolved_callee(binding, callee_name)
        getters = []
        for operand in instr.srcs:
            if operand[0] == "slot":
                def getter(ri, rf, rv, slots, _index=operand[1]):
                    return slots[_index]
            else:
                def getter(ri, rf, rv, slots,
                           _r=_reader(operand, name)):
                    return _r(ri, rf, rv)
            getters.append(getter)

        if resolved is not None:
            def handler(ri, rf, rv, slots, fb, mem, sim, res,
                        _callee=resolved):
                values = [g(ri, rf, rv, slots) for g in getters]
                result = sim._call_fast(_callee, values, res)
                if dst_cls is not None:
                    write(ri, rf, rv, result)
                return nxt
        else:
            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                values = [g(ri, rf, rv, slots) for g in getters]
                callee = sim.module.functions[callee_name]
                result = sim._call_fast(callee, values, res)
                if dst_cls is not None:
                    write(ri, rf, rv, result)
                return nxt
    elif op == "ret":
        if instr.srcs:
            ra = _reader(instr.srcs[0], name)

            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                sim._ret = ra(ri, rf, rv)
                return -1
        else:
            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                sim._ret = None
                return -1
    elif op == "vload":
        elem = instr.ty.elem
        lanes = instr.ty.lanes
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 1 \
            else None

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            write(ri, rf, rv, mem.load_vec(elem, lanes, addr))
            return nxt
    elif op == "vstore":
        elem = instr.ty.elem
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name) if len(instr.srcs) > 2 \
            else None
        rs = _reader(instr.srcs[-1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            addr = ra(ri, rf, rv)
            if rb is not None:
                addr += rb(ri, rf, rv)
            mem.store_vec(elem, addr, rs(ri, rf, rv))
            return nxt
    elif op == "vbin":
        kernel = vec_binop_kernel(instr.arg, instr.ty.elem)
        ra = _reader(instr.srcs[0], name)
        rb = _reader(instr.srcs[1], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, kernel(ra(ri, rf, rv), rb(ri, rf, rv)))
            return nxt
    elif op == "vsplat":
        lanes = instr.ty.lanes
        ra = _reader(instr.srcs[0], name)

        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            write(ri, rf, rv, [ra(ri, rf, rv)] * lanes)
            return nxt
    elif op == "vreduce":
        reduce_op, acc_ty = instr.arg
        widen = cast_kernel(instr.ty.elem, acc_ty)
        ra = _reader(instr.srcs[0], name)
        if reduce_op in ("add", "max", "min"):
            fold = binop_kernel(reduce_op, acc_ty)

            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                vec = ra(ri, rf, rv)
                if not vec:
                    raise TrapError("reduce of empty vector")
                acc = widen(vec[0])
                for lane in vec[1:]:
                    acc = fold(acc, widen(lane))
                write(ri, rf, rv, acc)
                return nxt
        else:
            def handler(ri, rf, rv, slots, fb, mem, sim, res):
                raise TrapError(f"reduce op {reduce_op!r} undefined")
    else:
        def handler(ri, rf, rv, slots, fb, mem, sim, res):
            raise TrapError(f"bad machine opcode {op!r}")

    return handler
