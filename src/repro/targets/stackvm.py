"""A wasm32-style stack-machine backend: the second registered Backend.

The native backend compiles PVI bytecode down to register-machine
code (decode, scalarize, allocate, emit) and simulates it at modeled
cycle costs.  This backend is the structurally different alternative
the registry exists for: a wasm32-class device executes the portable
*stack* bytecode directly (a baseline interpreter / one-pass compiler
in the wasm tier-1 mold), so its codegen **skips register allocation
entirely** — ``compile`` is a linear validation + cost-assignment walk
and the "image" is the bytecode itself plus per-function accounting.

Execution delegates to the PVI VM (both engines), which is exactly
what makes the backend differentially verifiable: values and traps
are the VM's by construction, and the differential suite pins that
down across every workload kernel.  Cycles are modeled as a flat
interpretive dispatch cost per executed bytecode instruction
(``branch + load + alu`` of the target's cost model, i.e. the
dispatch branch, the operand touch and the op itself), so vectorized
bytecode — fewer, wider instructions — is cheaper here too and the
split-flow story survives the backend swap.

Registered on import as backend ``"stack"`` together with the
built-in :data:`WASM32` target that names it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bytecode.encode import encoded_code_size
from repro.bytecode.module import BytecodeModule
from repro.targets.machine import CostModel, SizeModel, TargetDesc
from repro.targets.registry import (
    Backend, register_backend, register_target,
)
from repro.targets.simulator import SimulationResult


@dataclass
class StackFunction:
    """Per-function accounting of one stack-backend compilation.

    Mirrors the surface the service and ``compare_flows`` read off
    :class:`~repro.targets.isa.CompiledFunction`; there is no machine
    code because the device runs the bytecode as-is.
    """
    name: str
    code_bytes: int = 0
    jit_work: int = 0
    jit_analysis_work: int = 0
    jit_time: float = 0.0
    jit_pass_work: dict = field(default_factory=dict)
    spill_slot_count: int = 0


@dataclass
class StackImage:
    """A deployed stack-machine module: the bytecode plus accounting."""
    target_name: str
    module: BytecodeModule
    functions: Dict[str, StackFunction] = field(default_factory=dict)
    #: modeled cycles per executed bytecode instruction
    dispatch_cost: int = 1
    #: which backend built (and can execute) this image —
    #: ``executor_for`` trusts this over a registry name lookup, so an
    #: image of an *unregistered* stack target still gets the right
    #: executor instead of the native-backend fallback
    backend_name: str = "stack"

    def __getitem__(self, name: str) -> StackFunction:
        return self.functions[name]

    @property
    def total_code_bytes(self) -> int:
        return sum(f.code_bytes for f in self.functions.values())

    @property
    def total_jit_work(self) -> int:
        return sum(f.jit_work for f in self.functions.values())

    @property
    def total_jit_analysis_work(self) -> int:
        return sum(f.jit_analysis_work for f in self.functions.values())

    @property
    def total_jit_pass_work(self) -> dict:
        out: dict = {}
        for func in self.functions.values():
            for name, work in func.jit_pass_work.items():
                out[name] = out.get(name, 0) + work
        return out


class StackExecutor:
    """Runs a :class:`StackImage` on the PVI VM, counting cycles.

    Values and traps are the VM's own (that is the point — see the
    module docstring); cycles and instruction counts come from the
    VM's fuel accounting scaled by the image's dispatch cost.
    """

    def __init__(self, image: StackImage, memory=None,
                 fuel: Optional[int] = None,
                 engine: Optional[str] = None):
        from repro.vm.interpreter import DEFAULT_FUEL, VM
        self.image = image
        self.vm = VM(image.module, memory, verify=False,
                     fuel=DEFAULT_FUEL if fuel is None else fuel,
                     engine=engine)

    @property
    def memory(self):
        return self.vm.memory

    def run(self, name: str, args) -> SimulationResult:
        before = self.vm.instructions_executed
        value = self.vm.call(name, list(args))
        executed = self.vm.instructions_executed - before
        return SimulationResult(
            value=value,
            cycles=executed * self.image.dispatch_cost,
            instructions=executed,
        )


class StackBackend(Backend):
    """Backend protocol implementation for stack-machine targets."""

    name = "stack"

    def compile(self, bytecode: BytecodeModule, target: TargetDesc,
                flow) -> StackImage:
        costs = target.costs
        image = StackImage(
            target_name=target.name,
            module=bytecode,
            dispatch_cost=costs.branch + costs.load + costs.alu,
        )
        for func in bytecode:
            start = time.perf_counter()
            # One linear walk: the baseline-compiler stand-in.  Work
            # is instructions visited — the whole online budget, and
            # none of it analysis (nothing here to re-derive).
            work = len(func.code)
            entry = StackFunction(
                name=func.name,
                code_bytes=encoded_code_size(func) +
                target.sizes.prologue_bytes,
                jit_work=work,
            )
            entry.jit_time = time.perf_counter() - start
            image.functions[func.name] = entry
        return image

    def executor(self, image: StackImage, memory=None, *,
                 fuel: Optional[int] = None,
                 engine: Optional[str] = None) -> StackExecutor:
        return StackExecutor(image, memory, fuel=fuel, engine=engine)

    def warm(self, image: StackImage) -> StackImage:
        from repro.vm import threaded
        for func in image.module:
            threaded.predecode(func, image.module)
        return image


#: wasm32-class stack-machine target: SIMD128-capable (the VM executes
#: PVI vector bytecode natively), no meaningful register file (the
#: operand stack is the register file), compact variable-length
#: encoding.  ``int_regs``/``flt_regs`` are nominal — the stack
#: backend never allocates registers.
WASM32 = TargetDesc(
    name="wasm32",
    description="wasm32-class stack machine: portable bytecode "
                "executed by a baseline interpreter tier",
    has_simd=True,
    int_regs=0,
    flt_regs=0,
    vec_regs=0,
    costs=CostModel(
        # dispatch_cost = branch + load + alu = 4 cycles per op: the
        # dispatch branch, the operand-stack touch, the op itself.
        alu=1, load=2, store=2, branch=1, jump=1,
    ),
    sizes=SizeModel(fixed=0, alu_bytes=2, mem_bytes=2, imm_extra=2,
                    branch_bytes=2, call_bytes=3, vec_bytes=2,
                    prologue_bytes=4),
    clock_scale=1.0,
    backend="stack",
)

register_backend(StackBackend())
register_target(WASM32)
