"""Search over optimization configurations, evaluated by simulation.

The space is the cross product of the offline pipeline's knobs::

    unroll    in {1, 2, 4, 8}
    vectorize in {off, on}
    licm      in {off, on}
    cse       in {off, on}
    strength  in {off, on}
    ifconvert in {off, on}

128 points — small enough to enumerate for one kernel, large enough
that the fixed "-O2" default is beaten somewhere, which is the point
of the experiment (S4b).  Random sampling and hill climbing are
provided for when the space grows (they are what [21] calls
"quick and practical" evaluation).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.bytecode.emit import emit_module
from repro.frontend import lower_source
from repro.jit import compile_for_target
from repro.opt import (
    PassManager, constfold, copyprop, cse as cse_pass, dce, simplify_cfg,
    strength_reduce,
)
from repro.opt.ifconvert import if_convert
from repro.opt.licm import licm
from repro.opt.unroll import unroll
from repro.opt.vectorize import vectorize
from repro.semantics import Memory
from repro.targets.machine import TargetDesc
from repro.targets.simulator import Simulator
from repro.workloads.kernels import Kernel

UNROLL_CHOICES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Configuration:
    unroll: int = 1
    vectorize: bool = True
    licm: bool = True
    cse: bool = True
    strength: bool = True
    ifconvert: bool = True

    def label(self) -> str:
        flags = "".join(flag for flag, on in [
            ("V", self.vectorize), ("L", self.licm), ("C", self.cse),
            ("S", self.strength), ("I", self.ifconvert)] if on)
        return f"u{self.unroll}{flags or '-'}"


def default_configuration() -> Configuration:
    """What the fixed -O2-style pipeline does (no unrolling)."""
    return Configuration()


def all_configurations() -> List[Configuration]:
    points = []
    for unroll_factor, vec, licm_on, cse_on, strength_on, ifc in \
            itertools.product(UNROLL_CHOICES, (False, True),
                              (False, True), (False, True),
                              (False, True), (False, True)):
        points.append(Configuration(unroll_factor, vec, licm_on, cse_on,
                                    strength_on, ifc))
    return points


def _build_pipeline(config: Configuration) -> List[tuple]:
    passes = [("constfold", constfold), ("copyprop", copyprop)]
    if config.cse:
        passes.append(("cse", cse_pass))
    passes += [("dce", dce), ("simplify-cfg", simplify_cfg)]
    if config.ifconvert:
        passes.append(("if-convert", if_convert))
    if config.licm:
        passes.append(("licm", licm))
    if config.strength:
        passes.append(("strength", strength_reduce))
    passes += [("constfold.2", constfold), ("copyprop.2", copyprop)]
    if config.cse:
        passes.append(("cse.2", cse_pass))
    passes += [("dce.2", dce), ("simplify-cfg.2", simplify_cfg)]
    return passes


def compile_with(kernel: Kernel, config: Configuration,
                 target: TargetDesc):
    """Offline-compile ``kernel`` under ``config`` for ``target``."""
    module = lower_source(kernel.source)
    for func in module:
        PassManager(_build_pipeline(config)).run(func)
        if config.unroll > 1:
            unroll(func, config.unroll)
        if config.vectorize:
            vectorize(func)
    bytecode, _ = emit_module(module)
    return compile_for_target(bytecode, target, "split")


def evaluate(kernel: Kernel, config: Configuration, target: TargetDesc,
             n: int = 256, seed: int = 13) -> int:
    """Cycles for one run of ``kernel`` under ``config``."""
    compiled = compile_with(kernel, config, target)
    memory = Memory(1 << 21)
    run = kernel.prepare(memory, n, seed)
    result = Simulator(compiled, memory).run(kernel.entry, run.args)
    return result.cycles


@dataclass
class SearchResult:
    best: Configuration
    best_cycles: int
    default_cycles: int
    evaluations: int
    history: List[Tuple[Configuration, int]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Speedup of best-found over the fixed default pipeline."""
        return self.default_cycles / self.best_cycles


def _search(kernel: Kernel, target: TargetDesc,
            candidates: List[Configuration], n: int,
            seed: int) -> SearchResult:
    default_cycles = evaluate(kernel, default_configuration(), target,
                              n, seed)
    best: Optional[Configuration] = default_configuration()
    best_cycles = default_cycles
    history: List[Tuple[Configuration, int]] = []
    for config in candidates:
        cycles = evaluate(kernel, config, target, n, seed)
        history.append((config, cycles))
        if cycles < best_cycles:
            best, best_cycles = config, cycles
    return SearchResult(best=best, best_cycles=best_cycles,
                        default_cycles=default_cycles,
                        evaluations=len(candidates) + 1,
                        history=history)


def exhaustive_search(kernel: Kernel, target: TargetDesc,
                      n: int = 256, seed: int = 13) -> SearchResult:
    return _search(kernel, target, all_configurations(), n, seed)


def random_search(kernel: Kernel, target: TargetDesc, budget: int = 24,
                  n: int = 256, seed: int = 13) -> SearchResult:
    rng = random.Random(seed)
    candidates = rng.sample(all_configurations(),
                            min(budget, len(all_configurations())))
    return _search(kernel, target, candidates, n, seed)


def hill_climb(kernel: Kernel, target: TargetDesc, budget: int = 24,
               n: int = 256, seed: int = 13) -> SearchResult:
    """Greedy neighbourhood descent from the default configuration."""
    current = default_configuration()
    current_cycles = evaluate(kernel, current, target, n, seed)
    default_cycles = current_cycles
    evaluations = 1
    history = [(current, current_cycles)]

    improved = True
    while improved and evaluations < budget:
        improved = False
        for neighbour in _neighbours(current):
            if evaluations >= budget:
                break
            cycles = evaluate(kernel, neighbour, target, n, seed)
            evaluations += 1
            history.append((neighbour, cycles))
            if cycles < current_cycles:
                current, current_cycles = neighbour, cycles
                improved = True
                break
    return SearchResult(best=current, best_cycles=current_cycles,
                        default_cycles=default_cycles,
                        evaluations=evaluations, history=history)


def _neighbours(config: Configuration) -> List[Configuration]:
    out = []
    index = UNROLL_CHOICES.index(config.unroll)
    if index + 1 < len(UNROLL_CHOICES):
        out.append(replace(config, unroll=UNROLL_CHOICES[index + 1]))
    if index > 0:
        out.append(replace(config, unroll=UNROLL_CHOICES[index - 1]))
    for flag in ("vectorize", "licm", "cse", "strength", "ifconvert"):
        out.append(replace(config, **{flag: not getattr(config, flag)}))
    return out
