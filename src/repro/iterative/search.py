"""Search over optimization configurations, evaluated by simulation.

The space is the cross product of the offline pipeline's knobs::

    unroll    in {1, 2, 4, 8}
    vectorize in {off, on}
    licm      in {off, on}
    cse       in {off, on}
    strength  in {off, on}
    ifconvert in {off, on}

128 points — small enough to enumerate for one kernel, large enough
that the fixed "-O2" default is beaten somewhere, which is the point
of the experiment (S4b).  Random sampling and hill climbing are
provided for when the space grows (they are what [21] calls
"quick and practical" evaluation).

Every candidate is a :class:`repro.flows.PipelineSpec` under the hood:
a :class:`Configuration` is just a point in the knob cube that renders
to a spec, and the *registered flows'* pipeline specs join the search
space automatically (``search_space()``), so a custom
``register_flow(...)`` is immediately a candidate the search will
evaluate — no private pass list to keep in sync with ``repro.opt``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple, Union

from repro.bytecode.emit import emit_module
from repro.flows import (
    Flow, PipelineSpec, get_flow, registered_flows, run_pipeline,
)
from repro.frontend import lower_source
from repro.jit import compile_for_target
from repro.semantics import Memory
from repro.targets.registry import Targetish, as_target, backend_for
from repro.workloads.kernels import Kernel

UNROLL_CHOICES = (1, 2, 4, 8)

#: anything the search can evaluate
Candidate = Union["Configuration", PipelineSpec, Flow, str]


@dataclass(frozen=True)
class Configuration:
    unroll: int = 1
    vectorize: bool = True
    licm: bool = True
    cse: bool = True
    strength: bool = True
    ifconvert: bool = True

    def label(self) -> str:
        flags = "".join(flag for flag, on in [
            ("V", self.vectorize), ("L", self.licm), ("C", self.cse),
            ("S", self.strength), ("I", self.ifconvert)] if on)
        return f"u{self.unroll}{flags or '-'}"

    def pipeline(self) -> PipelineSpec:
        """Render the knob point as a declarative pipeline spec."""
        names = ["constfold", "copyprop"]
        if self.cse:
            names.append("cse")
        names += ["dce", "simplify-cfg"]
        if self.ifconvert:
            names.append("if-convert")
        if self.licm:
            names.append("licm")
        if self.strength:
            names.append("strength")
        names += ["constfold.2", "copyprop.2"]
        if self.cse:
            names.append("cse.2")
        names += ["dce.2", "simplify-cfg.2"]
        return PipelineSpec(passes=tuple(names), unroll=self.unroll,
                            vectorize=self.vectorize,
                            annotate_regalloc=False, annotate_hw=False)


def default_configuration() -> Configuration:
    """What the fixed -O2-style pipeline does (no unrolling)."""
    return Configuration()


def all_configurations() -> List[Configuration]:
    points = []
    for unroll_factor, vec, licm_on, cse_on, strength_on, ifc in \
            itertools.product(UNROLL_CHOICES, (False, True),
                              (False, True), (False, True),
                              (False, True), (False, True)):
        points.append(Configuration(unroll_factor, vec, licm_on, cse_on,
                                    strength_on, ifc))
    return points


def _compile_key(spec: PipelineSpec) -> tuple:
    """What actually distinguishes candidates to ``compile_with`` —
    the annotation knobs do not apply there."""
    return (spec.passes, spec.unroll, spec.vectorize)


def search_space() -> List[Candidate]:
    """The knob cube plus every registered flow's pipeline spec.

    Flows whose pipelines compile identically to a cube point (all the
    built-in flows, typically) are not duplicated; a custom flow with
    a genuinely new pipeline joins as its own candidate.
    """
    space: List[Candidate] = list(all_configurations())
    seen = {_compile_key(config.pipeline()) for config in space}
    for flow in registered_flows():
        key = _compile_key(flow.pipeline)
        if key not in seen:
            space.append(flow)
            seen.add(key)
    return space


def pipeline_of(candidate: Candidate) -> PipelineSpec:
    if isinstance(candidate, Configuration):
        return candidate.pipeline()
    if isinstance(candidate, PipelineSpec):
        return candidate
    return get_flow(candidate).pipeline


def label_of(candidate: Candidate) -> str:
    if isinstance(candidate, str):
        candidate = get_flow(candidate)
    if isinstance(candidate, Flow):
        return f"flow:{candidate.name}"
    return candidate.label()


def compile_with(kernel: Kernel, candidate: Candidate,
                 target: Targetish):
    """Offline-compile ``kernel`` under ``candidate`` for ``target``
    (a descriptor or a registered name, on any backend)."""
    spec = pipeline_of(candidate)
    module = lower_source(kernel.source)
    for func in module:
        run_pipeline(func, spec)
    bytecode, _ = emit_module(module)
    return compile_for_target(bytecode, as_target(target), "split")


def evaluate(kernel: Kernel, candidate: Candidate, target: Targetish,
             n: int = 256, seed: int = 13) -> int:
    """Cycles for one run of ``kernel`` under ``candidate``."""
    target = as_target(target)
    compiled = compile_with(kernel, candidate, target)
    memory = Memory(1 << 21)
    run = kernel.prepare(memory, n, seed)
    result = backend_for(target).executor(compiled, memory).run(
        kernel.entry, run.args)
    return result.cycles


@dataclass
class SearchResult:
    best: Candidate
    best_cycles: int
    default_cycles: int
    evaluations: int
    history: List[Tuple[Candidate, int]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Speedup of best-found over the fixed default pipeline."""
        return self.default_cycles / self.best_cycles

    @property
    def best_label(self) -> str:
        return label_of(self.best)


def _search(kernel: Kernel, target: Targetish,
            candidates: List[Candidate], n: int,
            seed: int) -> SearchResult:
    default_cycles = evaluate(kernel, default_configuration(), target,
                              n, seed)
    best: Candidate = default_configuration()
    best_cycles = default_cycles
    history: List[Tuple[Candidate, int]] = []
    for config in candidates:
        cycles = evaluate(kernel, config, target, n, seed)
        history.append((config, cycles))
        if cycles < best_cycles:
            best, best_cycles = config, cycles
    return SearchResult(best=best, best_cycles=best_cycles,
                        default_cycles=default_cycles,
                        evaluations=len(candidates) + 1,
                        history=history)


def exhaustive_search(kernel: Kernel, target: Targetish,
                      n: int = 256, seed: int = 13) -> SearchResult:
    return _search(kernel, target, search_space(), n, seed)


def random_search(kernel: Kernel, target: Targetish, budget: int = 24,
                  n: int = 256, seed: int = 13) -> SearchResult:
    rng = random.Random(seed)
    space = search_space()
    candidates = rng.sample(space, min(budget, len(space)))
    return _search(kernel, target, candidates, n, seed)


def hill_climb(kernel: Kernel, target: Targetish, budget: int = 24,
               n: int = 256, seed: int = 13) -> SearchResult:
    """Greedy neighbourhood descent from the default configuration."""
    current = default_configuration()
    current_cycles = evaluate(kernel, current, target, n, seed)
    default_cycles = current_cycles
    evaluations = 1
    history: List[Tuple[Candidate, int]] = [(current, current_cycles)]

    improved = True
    while improved and evaluations < budget:
        improved = False
        for neighbour in _neighbours(current):
            if evaluations >= budget:
                break
            cycles = evaluate(kernel, neighbour, target, n, seed)
            evaluations += 1
            history.append((neighbour, cycles))
            if cycles < current_cycles:
                current, current_cycles = neighbour, cycles
                improved = True
                break
    return SearchResult(best=current, best_cycles=current_cycles,
                        default_cycles=default_cycles,
                        evaluations=evaluations, history=history)


def _neighbours(config: Configuration) -> List[Configuration]:
    out = []
    index = UNROLL_CHOICES.index(config.unroll)
    if index + 1 < len(UNROLL_CHOICES):
        out.append(replace(config, unroll=UNROLL_CHOICES[index + 1]))
    if index > 0:
        out.append(replace(config, unroll=UNROLL_CHOICES[index - 1]))
    for flag in ("vectorize", "licm", "cse", "strength", "ifconvert"):
        out.append(replace(config, **{flag: not getattr(config, flag)}))
    return out
