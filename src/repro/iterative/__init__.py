"""Iterative compilation (§4, first direction).

"Iterative compilation avoids the intrinsic limitations of
profitability models" — instead of predicting whether an optimization
helps, *run* each candidate configuration and measure.  The paper
suggests virtual machine monitors as the natural engine for this
adaptive tuning; here the offline compiler plays that role, searching
per (kernel, target) and shipping the winner as bytecode.
"""

from repro.iterative.search import (
    Configuration, SearchResult, default_configuration, evaluate,
    exhaustive_search, hill_climb, random_search, search_space,
)

__all__ = [
    "Configuration", "SearchResult", "default_configuration",
    "evaluate", "exhaustive_search", "random_search", "hill_climb",
    "search_space",
]
