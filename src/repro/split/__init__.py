"""Split optimizations: the offline halves.

Each module here is the expensive offline half of an optimization whose
cheap online half lives in the JIT:

* :mod:`repro.split.regalloc_offline` — loop-structure-aware spill
  priorities (the online half is the annotated policy in
  :mod:`repro.jit.regalloc`);
* the auto-vectorizer's offline half is :mod:`repro.opt.vectorize`
  (its online half is trivial: the JIT maps or scalarizes the vector
  builtins).
"""

from repro.split.regalloc_offline import (
    compute_spill_priorities, regalloc_annotation,
)

__all__ = ["compute_spill_priorities", "regalloc_annotation"]
