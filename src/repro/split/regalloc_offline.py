"""Offline register-allocation analysis (split register allocation).

Following Diouf et al. [18], the expensive, target-independent part of
register allocation runs offline: rank every value by how much it hurts
to spill it.  The ranking uses loop structure — information that is
cheap here (the offline compiler has the CFG and natural loops) and
gone by the time the JIT sees stack bytecode.

``weight(v) = Σ over defs/uses of v at depth d:  10^min(d, 3)``

so a value touched inside a doubly nested loop outweighs one touched a
hundred times in straight-line code.  The ranking is independent of any
register count K: the online allocator simply evicts the lowest-ranked
candidate whenever *its* K runs out.  One offline analysis therefore
serves every core of a heterogeneous platform — which is the paper's
portability argument in miniature.

The companion :func:`optimal_spill_set` (scipy MILP) computes, for one
given K, the provably cost-minimal set of values to keep; it is used by
the benchmarks as the "offline optimal" reference point of experiment
S4a and validates that the greedy ranking stays close to it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode.annotations import RegAllocAnnotation
from repro.bytecode.module import BytecodeFunction
from repro.ir.cfg import natural_loops
from repro.ir.function import Function
from repro.ir.liveness import live_ranges
from repro.ir.values import VReg

#: loop-depth weighting base and cap
DEPTH_BASE = 10
DEPTH_CAP = 3


def _block_depths(func: Function) -> Dict[str, int]:
    depths: Dict[str, int] = {b.label: 0 for b in func.blocks}
    for loop in natural_loops(func):
        for label in loop.body:
            depths[label] = depths.get(label, 0) + 1
    return depths


def compute_spill_priorities(func: Function) -> Dict[int, int]:
    """Spill priority (higher = keep) per virtual register id."""
    depths = _block_depths(func)
    weights: Dict[int, int] = {p.id: 1 for p in func.params}
    for block in func.blocks:
        factor = DEPTH_BASE ** min(depths[block.label], DEPTH_CAP)
        for instr in block.instrs:
            for reg in list(instr.uses()) + list(instr.defs()):
                weights[reg.id] = weights.get(reg.id, 1) + factor
    return weights


def regalloc_annotation(func: Function,
                        bc_func: BytecodeFunction) -> RegAllocAnnotation:
    """Package the ranking as a portable bytecode annotation.

    The priorities list covers the bytecode's parameters first, then
    its locals, in slot order — the layout the JIT's consumer
    (:meth:`repro.jit.compiler.JITCompiler._annotation_priorities`)
    expects.
    """
    weights = compute_spill_priorities(func)
    local_map: Dict[int, int] = getattr(bc_func, "local_map", {})

    priorities: List[int] = []
    for param in func.params:
        priorities.append(weights.get(param.id, 1))
    by_local: Dict[int, int] = {}
    for reg_id, local_index in local_map.items():
        by_local[local_index] = weights.get(reg_id, 1)
    for index in range(len(bc_func.local_types)):
        priorities.append(by_local.get(index, 1))
    return RegAllocAnnotation(function=func.name, priorities=priorities)


def optimal_spill_set(func: Function, k: int,
                      weights: Optional[Dict[int, int]] = None) \
        -> Optional[List[int]]:
    """MILP reference: choose which values to keep in ``k`` registers
    minimizing total spill weight, subject to MAXLIVE constraints.

    Returns the list of vreg ids to *spill*, or None when scipy's MILP
    is unavailable or the instance is degenerate.  Exponential-ish in
    spirit but fine at our function sizes — exactly the kind of
    analysis the paper says belongs offline.
    """
    try:
        import numpy as np
        from scipy.optimize import LinearConstraint, milp
    except ImportError:      # pragma: no cover - scipy is installed
        return None

    ranges = live_ranges(func)
    if not ranges:
        return []
    regs: List[VReg] = sorted(ranges, key=lambda r: r.id)
    if weights is None:
        weights = compute_spill_priorities(func)

    # Decision variable x_i = 1 when reg i stays in a register.
    # At every program point, sum of live x_i <= k.
    points = sorted({p for (s, e) in ranges.values() for p in (s, e)})
    rows = []
    for point in points:
        row = [1.0 if ranges[reg][0] <= point <= ranges[reg][1] else 0.0
               for reg in regs]
        if sum(row) > k:
            rows.append(row)
    cost = np.array([-float(weights.get(reg.id, 1)) for reg in regs])
    if not rows:
        return []
    constraints = LinearConstraint(np.array(rows), -np.inf, float(k))
    result = milp(c=cost, constraints=constraints,
                  integrality=np.ones(len(regs)),
                  bounds=((0, 1)))
    if not result.success:
        return None
    kept = result.x > 0.5
    return [reg.id for reg, keep in zip(regs, kept) if not keep]
