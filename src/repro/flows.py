"""First-class deployment flows: the registry the whole stack consumes.

The paper's claim is that one portable artifact serves many deployment
flows on heterogeneous targets.  A :class:`Flow` makes a deployment
configuration *data* instead of code: the offline pipeline spec (pass
names plus vectorize/annotation knobs), the online :class:`JITOptions`,
and which bytecode flavour ships to the device.  The global
:class:`FlowRegistry` holds the three paper flows plus two extended
ones, and every layer — ``core.offline`` / ``core.online``,
``compare_flows``, the JIT facade, the iterative search and the
compilation service — resolves flows through it.  Adding a flow is one
:func:`register_flow` call; it immediately appears in flow comparisons,
the search space and the service cache, with no edits elsewhere.

Flows and pipeline specs are plain frozen dataclasses: hashable,
picklable and JSON-describable (the service cache keys on
:meth:`Flow.cache_key`).  Picklability is what lets a flow cross the
``ProcessExecutor`` seam — the service's process-pool deployment
backend ships ``Flow`` objects to worker processes verbatim, and
replicates the registry into workers at pool start (see
:mod:`repro.service.executors`).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.jit import JITOptions
from repro.opt import (
    PassManager, PassStats, STANDARD_PASS_NAMES, resolve_passes,
)

#: bytecode flavours a flow may ship (see ``OfflineArtifact``)
BYTECODE_FLAVOURS = ("vector", "scalar")


class UnknownFlowError(ValueError):
    """Raised by every entry point handed a flow name that is not
    registered; the message lists what *is* registered."""

    def __init__(self, name: object, known: Tuple[str, ...]):
        self.flow_name = name
        self.known = known
        super().__init__(
            f"unknown flow {name!r}; registered flows: "
            f"{', '.join(known) if known else '(none)'}")


@dataclass(frozen=True)
class PipelineSpec:
    """Declarative description of the offline (µproc-independent) side.

    ``passes`` are names resolved through :func:`repro.opt.resolve_passes`
    (a ``.N`` suffix marks a repeated invocation); ``unroll`` and
    ``vectorize`` run after the pass pipeline, exactly as the iterative
    search orders them.  The annotation knobs decide what the offline
    compiler attaches to the vector bytecode.
    """
    passes: Tuple[str, ...] = STANDARD_PASS_NAMES
    unroll: int = 1
    vectorize: bool = True
    annotate_regalloc: bool = True
    annotate_hw: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {"passes": list(self.passes), "unroll": self.unroll,
                "vectorize": self.vectorize,
                "annotate_regalloc": self.annotate_regalloc,
                "annotate_hw": self.annotate_hw}

    def label(self) -> str:
        """Compact tag for search histories and reports."""
        bits = [f"p{len(self.passes)}"]
        if self.unroll > 1:
            bits.append(f"u{self.unroll}")
        if self.vectorize:
            bits.append("V")
        return "".join(bits)

    def validate(self) -> "PipelineSpec":
        resolve_passes(self.passes)       # raises KeyError on a typo
        if self.unroll < 1:
            raise ValueError(f"unroll factor must be >= 1, "
                             f"got {self.unroll}")
        return self


#: the -O2-like default the paper flows share
DEFAULT_PIPELINE = PipelineSpec()


def run_pipeline(func, spec: PipelineSpec,
                 verify: bool = False) -> PassStats:
    """Run one function through a pipeline spec, fully instrumented.

    The returned :class:`PassStats` covers the pass pipeline plus the
    ``unroll`` and ``vectorize`` stages (recorded as pseudo-passes), so
    its total work is exactly the offline analysis effort spent on
    ``func``.
    """
    from repro.opt.unroll import unroll as unroll_pass
    from repro.opt.vectorize import vectorize as vectorize_pass

    manager = PassManager(resolve_passes(spec.passes), verify=verify)
    stats = manager.run(func)
    size = sum(1 for _ in func.instructions())
    if spec.unroll > 1:
        start = time.perf_counter()
        result = unroll_pass(func, spec.unroll)
        after = sum(1 for _ in func.instructions())
        stats.record("unroll", result.work, time.perf_counter() - start,
                     result.changed, size, after)
        size = after
        if result.changed and spec.passes:
            # Rerun the pipeline over the unrolled body — this is the
            # point of unrolling offline: LICM/CSE/folding across what
            # used to be separate iterations, before vectorization.
            post = PassManager(resolve_passes(spec.passes),
                               verify=verify).run(func)
            for record in post.records:
                stats.record(f"post:{record.name}", record.work,
                             record.time, record.changed,
                             record.ir_before, record.ir_after)
            size = sum(1 for _ in func.instructions())
    if spec.vectorize:
        start = time.perf_counter()
        result = vectorize_pass(func)
        after = sum(1 for _ in func.instructions())
        stats.record("vectorize", result.work,
                     time.perf_counter() - start, result.changed,
                     size, after)
    return stats


@dataclass(frozen=True)
class Flow:
    """One deployment flow: offline spec + online options + flavour."""
    name: str
    pipeline: PipelineSpec = DEFAULT_PIPELINE
    jit: JITOptions = field(default_factory=JITOptions)
    #: which bytecode flavour ships to the device: 'vector' (annotated,
    #: vectorized) or 'scalar' (the portable baseline)
    bytecode: str = "vector"
    description: str = ""

    @property
    def charges_offline(self) -> bool:
        """Does this flow's deployment benefit from the offline
        analyses (and therefore charge ``offline_work`` to its
        budget report)?  Shipping the annotated vector flavour is
        what moves the analysis results across."""
        return self.bytecode == "vector"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "pipeline": self.pipeline.to_dict(),
                "jit": asdict(self.jit), "bytecode": self.bytecode}

    def cache_key(self) -> str:
        """Stable identity for service memo keys: the name plus a
        digest of the full configuration, so re-registering a name
        with different knobs can never alias a cached image."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return f"{self.name}#{digest[:12]}"

    def validate(self) -> "Flow":
        if self.bytecode not in BYTECODE_FLAVOURS:
            raise ValueError(
                f"flow {self.name!r}: bytecode flavour must be one of "
                f"{BYTECODE_FLAVOURS}, got {self.bytecode!r}")
        self.pipeline.validate()
        return self


class FlowRegistry:
    """Thread-safe name -> :class:`Flow` map (insertion-ordered)."""

    def __init__(self):
        self._flows: Dict[str, Flow] = {}
        self._lock = threading.Lock()

    def register(self, flow: Flow, replace: bool = False) -> Flow:
        flow.validate()
        with self._lock:
            if not replace and flow.name in self._flows:
                raise ValueError(f"flow {flow.name!r} is already "
                                 f"registered (pass replace=True)")
            self._flows[flow.name] = flow
        return flow

    def unregister(self, name: str) -> None:
        with self._lock:
            self._flows.pop(name, None)

    def get(self, name: Union[str, Flow]) -> Flow:
        if isinstance(name, Flow):
            return name
        with self._lock:
            flow = self._flows.get(name)
        if flow is None:
            raise UnknownFlowError(name, self.names())
        return flow

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._flows)

    def flows(self) -> Tuple[Flow, ...]:
        with self._lock:
            return tuple(self._flows.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._flows

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows())

    def __len__(self) -> int:
        with self._lock:
            return len(self._flows)


#: the process-wide registry every layer resolves flows through
REGISTRY = FlowRegistry()


def register_flow(flow: Flow, replace: bool = False) -> Flow:
    """Register a flow globally; it is immediately deployable, appears
    in ``compare_flows``, the iterative search space, and is cached
    under its own key by the compilation service."""
    return REGISTRY.register(flow, replace=replace)


def unregister_flow(name: str) -> None:
    REGISTRY.unregister(name)


def get_flow(name: Union[str, Flow]) -> Flow:
    return REGISTRY.get(name)


def as_flow(flow: Union[str, Flow]) -> Flow:
    """Accept either a registered name or a Flow object (every public
    entry point's contract)."""
    return REGISTRY.get(flow)


def flow_names() -> Tuple[str, ...]:
    return REGISTRY.names()


def registered_flows() -> Tuple[Flow, ...]:
    return REGISTRY.flows()


# ---------------------------------------------------------------------------
# the built-in flows
# ---------------------------------------------------------------------------

#: hotness weight at or above which the adaptive flow spends online
#: analysis on a function (unannotated functions count as hot).  The
#: execution engines reuse the same threshold as the tier-2 promotion
#: gate (see :mod:`repro.engine`): functions whose hotness annotation
#: clears it get whole-function translation, though there *unprofiled*
#: functions stay on the block tier — promotion wants positive
#: evidence, analysis gating only an absence of contrary evidence.
ADAPTIVE_HOTNESS_THRESHOLD = 1

register_flow(Flow(
    "offline-only",
    jit=JITOptions(use_annotations=False),
    bytecode="scalar",
    description="portable baseline: scalar bytecode through the cheap "
                "JIT, no annotations, no online analysis"))

register_flow(Flow(
    "online-only",
    jit=JITOptions(use_annotations=False, online_optimize=True,
                   online_vectorize=True),
    bytecode="scalar",
    description="the JIT re-derives everything at run time — best "
                "code, heaviest compile budget"))

register_flow(Flow(
    "split",
    jit=JITOptions(use_annotations=True),
    bytecode="vector",
    description="the paper's flow: offline analyses shipped as "
                "annotations, the JIT just trusts them"))

register_flow(Flow(
    "split-O3",
    pipeline=PipelineSpec(unroll=2),
    jit=JITOptions(use_annotations=True),
    bytecode="vector",
    description="split with an aggressive offline pipeline: 2x loop "
                "unrolling, then the pass pipeline rerun over the "
                "unrolled body (cross-iteration LICM/CSE) before "
                "vectorization"))

register_flow(Flow(
    "adaptive",
    jit=JITOptions(use_annotations=True, online_vectorize=True,
                   hotness_threshold=ADAPTIVE_HOTNESS_THRESHOLD,
                   osr=True),
    bytecode="scalar",
    description="hotness-gated online vectorization: the JIT spends "
                "its analysis budget only on functions profiled hot; "
                "the same hotness annotations drive the engines' "
                "tier-2 whole-function promotion, and long-running "
                "loops enter tier-2 mid-call via on-stack replacement "
                "(osr=True makes the default engine policy explicit "
                "for the flow that exists to tier adaptively)"))
