"""Deployment: the µproc-specific online step of Figure 1."""

from __future__ import annotations

from typing import Union

from repro.bytecode.module import BytecodeModule
from repro.core.offline import OfflineArtifact
from repro.jit import compile_for_target
from repro.targets.isa import CompiledModule
from repro.targets.machine import TargetDesc

FLOWS = ("split", "offline-only", "online-only")


def select_bytecode(artifact: OfflineArtifact, flow: str) \
        -> BytecodeModule:
    """Which bytecode flavour does this flow ship to the device?

    The split flow ships the annotated vector bytecode; the other two
    ship the plain scalar bytecode (offline-only runs it as-is,
    online-only re-optimizes it at run time).
    """
    if flow == "split":
        return artifact.bytecode
    if flow in ("offline-only", "online-only"):
        return artifact.scalar_bytecode
    raise ValueError(f"unknown flow {flow!r}; expected one of {FLOWS}")


def deploy(source: Union[OfflineArtifact, BytecodeModule],
           target: TargetDesc, flow: str = "split",
           service=None) -> CompiledModule:
    """Compile the right bytecode flavour for ``target`` under ``flow``.

    With a :class:`~repro.service.CompilationService` passed as
    ``service``, artifact deployments are memoized per
    ``(artifact, target, flow)`` — repeated flows hit the service's
    image cache instead of re-running the JIT.
    """
    if isinstance(source, OfflineArtifact):
        if service is not None:
            return service.deploy(source, target, flow)
        bytecode = select_bytecode(source, flow)
    else:
        bytecode = source
    return compile_for_target(bytecode, target, flow)
