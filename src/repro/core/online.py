"""Deployment: the µproc-specific online step of Figure 1.

Flows are resolved through :mod:`repro.flows` and targets through
:mod:`repro.targets.registry` — every function here accepts either
registered names or the objects themselves, so a flow or target
registered by user code deploys exactly like the built-in ones.
"""

from __future__ import annotations

from typing import Union

from repro.bytecode.module import BytecodeModule
from repro.core.offline import OfflineArtifact
from repro.flows import Flow, as_flow
from repro.jit import compile_for_target
from repro.targets.registry import Targetish, as_target

#: the three deployment flows of the paper (the registry may hold
#: more; see ``repro.flows.flow_names()`` for the authoritative list)
FLOWS = ("split", "offline-only", "online-only")


def select_bytecode(artifact: OfflineArtifact,
                    flow: Union[str, Flow]) -> BytecodeModule:
    """Which bytecode flavour does this flow ship to the device?

    Vector-flavour flows (split and friends) ship the annotated vector
    bytecode; scalar-flavour flows ship the plain scalar bytecode
    (offline-only runs it as-is, online-only and adaptive re-optimize
    it at run time).
    """
    flow = as_flow(flow)
    if flow.bytecode == "vector":
        return artifact.bytecode
    return artifact.scalar_bytecode


def deploy(source: Union[OfflineArtifact, BytecodeModule],
           target: Targetish, flow: Union[str, Flow] = "split",
           service=None):
    """Compile the right bytecode flavour for ``target`` under ``flow``.

    ``target`` is a descriptor or a registered name; the compilation
    runs on the target's registered backend (the native JIT by
    default).  With a :class:`~repro.service.CompilationService`
    passed as ``service``, artifact deployments are memoized per
    ``(artifact, target, flow)`` — repeated flows hit the service's
    image cache instead of re-running the JIT, and the compile runs
    on the service's deploy executor (threads, worker processes or
    inline — see :mod:`repro.service.executors`).
    """
    flow = as_flow(flow)
    target = as_target(target)
    if isinstance(source, OfflineArtifact):
        if service is not None:
            return service.deploy(source, target, flow)
        bytecode = select_bytecode(source, flow)
    else:
        bytecode = source
    return compile_for_target(bytecode, target, flow)


async def deploy_async(source: Union[OfflineArtifact, BytecodeModule],
                       target: Targetish,
                       flow: Union[str, Flow] = "split",
                       service=None):
    """Awaitable :func:`deploy` for event-loop callers.

    Artifact deployments route through the compilation service's
    async facade (``service`` may be a ``CompilationService``, an
    ``AsyncCompilationService`` or ``None`` for the process-wide
    default), awaiting the deployment pool's future instead of
    blocking the loop; plain bytecode modules compile in the loop's
    default thread pool.
    """
    import asyncio

    flow = as_flow(flow)
    target = as_target(target)
    if isinstance(source, OfflineArtifact):
        from repro.service import default_service
        from repro.service.asyncio import AsyncCompilationService
        core = service if service is not None else default_service()
        if not isinstance(core, AsyncCompilationService):
            core = AsyncCompilationService(core)
        return await core.deploy_one(source, target, flow)
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, compile_for_target, source, target, flow)
