"""Heterogeneous platform model and deployment manager.

A :class:`Platform` is a set of cores of different kinds (host
microcontroller, big x86-ish core, DSP accelerator...).  The
:class:`DeploymentManager` installs *one* bytecode module across all of
them — one JIT invocation per core *kind*, not per application build —
which is the paper's whole-platform-programmability story: third-party
bytecode can run on the DSP because the DSP's JIT, not the vendor
toolchain, produces its native code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.bytecode.annotations import HWRequirementAnnotation
from repro.bytecode.module import BytecodeModule
from repro.core.offline import OfflineArtifact
from repro.core.online import deploy, select_bytecode
from repro.flows import Flow, as_flow
from repro.targets.machine import TargetDesc
from repro.targets.registry import Targetish, as_target


@dataclass
class Core:
    """A group of identical cores.

    ``target`` is a descriptor or a registered target name — a
    platform is a composition of registered targets, so
    ``Core("dsp", 2)`` works and an unknown name raises the unified
    ``UnknownTargetError`` at construction, not mid-deployment.
    """
    target: Targetish
    count: int = 1

    def __post_init__(self):
        self.target = as_target(self.target)

    @property
    def name(self) -> str:
        return self.target.name


@dataclass
class Platform:
    """A heterogeneous multicore system-on-chip."""
    name: str
    cores: List[Core] = field(default_factory=list)

    def kinds(self) -> List[TargetDesc]:
        return [core.target for core in self.cores]

    def total_cores(self) -> int:
        return sum(core.count for core in self.cores)

    def core_list(self) -> List[TargetDesc]:
        """One entry per physical core."""
        out: List[TargetDesc] = []
        for core in self.cores:
            out.extend([core.target] * core.count)
        return out


class DeploymentManager:
    """Installs one application (bytecode) on every core kind.

    Given a :class:`~repro.service.CompilationService` it installs
    through the service instead: all core kinds are JIT-compiled
    concurrently and every image is memoized, so re-installing the
    same artifact (or installing it on an overlapping platform) reuses
    the images instead of recompiling.
    """

    def __init__(self, platform: Platform,
                 flow: Union[str, Flow] = "split", service=None):
        self.platform = platform
        self.flow = as_flow(flow)
        self.service = service
        self.installed: Dict[str, object] = {}
        self._bytecode: Optional[BytecodeModule] = None

    def install(self, source: Union[OfflineArtifact, BytecodeModule]) \
            -> Dict[str, object]:
        """JIT the module once per core kind; returns the images."""
        self.installed = {}
        if self.service is not None and isinstance(source, OfflineArtifact):
            self.installed = dict(self.service.deploy_many(
                source, self.platform.kinds(), self.flow))
        else:
            for target in self.platform.kinds():
                if target.name not in self.installed:
                    self.installed[target.name] = deploy(source, target,
                                                         self.flow)
        if isinstance(source, OfflineArtifact):
            self._bytecode = select_bytecode(source, self.flow)
        else:
            self._bytecode = source
        return self.installed

    def image_for(self, target: Targetish):
        target = as_target(target)
        return self.installed[target.name]

    def preferred_core(self, function: str) -> Optional[TargetDesc]:
        """Use HW-requirement annotations to suggest a core kind.

        A SIMD-hungry function prefers a SIMD core; an FP-hungry one
        prefers a core with a fast FPU; control code stays on the
        host.  Purely advisory — the KPN mapper uses measured costs,
        falling back to this hint for unprofiled actors.
        """
        if self._bytecode is None:
            return None
        annotations = self._bytecode.annotations_for(
            function, HWRequirementAnnotation)
        if not annotations:
            return None
        wants = annotations[0]
        candidates = self.platform.kinds()
        if wants.wants_simd:
            simd = [t for t in candidates if t.has_simd]
            if simd:
                return max(simd, key=lambda t: t.clock_scale)
        if wants.wants_fp:
            return min(candidates, key=lambda t: t.costs.fp_mul /
                       t.clock_scale)
        return min(candidates, key=lambda t: t.costs.branch /
                   t.clock_scale)
