"""The paper's primary contribution: processor virtualization combined
with split compilation.

* :mod:`repro.core.offline` — the offline (µproc-independent) compiler:
  aggressive analyses, auto-vectorization, spill-priority ranking,
  hardware-requirement summaries — all distilled into annotated PVI
  bytecode (Figure 1, left box).
* :mod:`repro.core.online` — deployment: pick the bytecode flavour for
  a flow, run the µproc-specific JIT (Figure 1, right box).
* :mod:`repro.core.budget` — compile-budget accounting comparing the
  three flows (offline-only / online-only / split).
* :mod:`repro.core.platform` — the deployment manager for
  heterogeneous multicore platforms (one JIT per core kind, same
  bytecode for all).
"""

from repro.core.offline import OfflineArtifact, offline_compile
from repro.core.online import deploy, deploy_async, select_bytecode
from repro.core.budget import FlowReport, compare_flows
from repro.core.platform import Core, DeploymentManager, Platform
from repro.flows import (
    Flow, FlowRegistry, PipelineSpec, UnknownFlowError, flow_names,
    get_flow, register_flow,
)
from repro.targets.registry import (
    Backend, TargetRegistry, UnknownTargetError, get_target,
    register_target, target_names,
)

__all__ = [
    "OfflineArtifact", "offline_compile",
    "deploy", "deploy_async", "select_bytecode",
    "FlowReport", "compare_flows",
    "Core", "Platform", "DeploymentManager",
    "Flow", "FlowRegistry", "PipelineSpec", "UnknownFlowError",
    "register_flow", "get_flow", "flow_names",
    "Backend", "TargetRegistry", "UnknownTargetError",
    "register_target", "get_target", "target_names",
]
