"""The offline compiler driver (µproc-independent step of Figure 1).

``offline_compile(source)`` runs the whole expensive side of split
compilation:

1. parse, type-check, lower to IR;
2. -O2-style scalar optimization;
3. auto-vectorization to portable vector builtins;
4. spill-priority analysis for split register allocation;
5. hardware-requirement summarization;
6. emission to PVI bytecode with all results attached as annotations.

It also produces the plain scalar bytecode of the same program (no
vector ops, no annotations) because the evaluation needs it twice:
as the portable baseline ("offline-only" flow) and as the input the
"online-only" flow must re-analyze at run time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bytecode.annotations import (
    HotnessAnnotation, HWRequirementAnnotation, VecLoopAnnotation,
)
from repro.bytecode.emit import emit_module
from repro.bytecode.module import BytecodeModule
from repro.bytecode.verifier import verify_module
from repro.frontend import lower_source
from repro.ir import instructions as ins
from repro.ir.function import Function, Module
from repro.lang import types as ty_mod
from repro.opt import PassManager, standard_passes
from repro.opt.vectorize import vectorize
from repro.split import regalloc_annotation


@dataclass
class OfflineArtifact:
    """Everything the offline step hands to deployment."""
    name: str
    bytecode: BytecodeModule            # vectorized + annotated
    scalar_bytecode: BytecodeModule     # plain scalar, no annotations
    offline_work: int = 0               # analysis effort spent offline
    offline_time: float = 0.0
    vectorized_functions: List[str] = field(default_factory=list)


def offline_compile(source: str, name: str = "module", *,
                    optimize: bool = True,
                    do_vectorize: bool = True,
                    annotate_regalloc: bool = True,
                    annotate_hw: bool = True,
                    hotness: Optional[Dict[str, int]] = None,
                    verify: bool = True) -> OfflineArtifact:
    start = time.perf_counter()
    work = 0

    # The scalar variant is compiled from its own lowering so the two
    # bytecode flavours are fully independent artifacts.
    scalar_module = lower_source(source, name)
    for func in scalar_module:
        if optimize:
            stats = PassManager(standard_passes(),
                                verify=verify).run(func)
            work += stats.total_work
    scalar_bc, _ = emit_module(scalar_module)

    module = lower_source(source, name)
    vectorized: List[str] = []
    for func in module:
        if optimize:
            stats = PassManager(standard_passes(), verify=verify).run(func)
            work += stats.total_work
        if do_vectorize:
            result = vectorize(func)
            work += result.work
            if result.changed:
                vectorized.append(func.name)

    bytecode, label_maps = emit_module(module)

    for func in module:
        labels = label_maps[func.name]
        for info in getattr(func, "vector_loops", []):
            bytecode.annotations.append(VecLoopAnnotation(
                function=func.name,
                vector_pc=labels[info.vector_header],
                scalar_pc=labels[info.scalar_header],
                lanes=info.lanes,
                elem=info.elem,
                kind=info.kind,
                reduce_op=info.reduce_op,
                acc_type=info.acc_type,
                noalias_count=len(info.noalias_bases),
            ))
        if annotate_regalloc:
            bytecode.annotations.append(
                regalloc_annotation(func, bytecode[func.name]))
        if annotate_hw:
            bytecode.annotations.append(_hw_annotation(func))
        if hotness and func.name in hotness:
            bytecode.annotations.append(HotnessAnnotation(
                function=func.name, weight=hotness[func.name]))

    if verify:
        verify_module(bytecode)
        verify_module(scalar_bc)

    return OfflineArtifact(
        name=name,
        bytecode=bytecode,
        scalar_bytecode=scalar_bc,
        offline_work=work,
        offline_time=time.perf_counter() - start,
        vectorized_functions=vectorized,
    )


def _hw_annotation(func: Function) -> HWRequirementAnnotation:
    """Summarize what hardware the function would benefit from."""
    wants_simd = False
    wants_fp = False
    wants_fp64 = False
    memory_ops = 0
    total = 0
    for instr in func.instructions():
        total += 1
        if isinstance(instr, (ins.VLoad, ins.VStore, ins.VBinOp,
                              ins.VSplat, ins.VReduce)):
            wants_simd = True
        for value in list(instr.uses()) + list(instr.defs()):
            value_ty = value.ty
            if isinstance(value_ty, ty_mod.FloatType):
                wants_fp = True
                if value_ty.bits == 64:
                    wants_fp64 = True
        if isinstance(instr, (ins.Load, ins.Store, ins.VLoad,
                              ins.VStore)):
            memory_ops += 1
    return HWRequirementAnnotation(
        function=func.name,
        wants_simd=wants_simd,
        wants_fp=wants_fp,
        wants_fp64=wants_fp64,
        memory_bound=total > 0 and memory_ops * 3 > total,
    )
