"""The offline compiler driver (µproc-independent step of Figure 1).

``offline_compile(source)`` runs the whole expensive side of split
compilation:

1. parse, type-check, lower to IR;
2. the flow's declared pass pipeline (default: -O2-style scalar
   optimization), plus optional loop unrolling;
3. auto-vectorization to portable vector builtins;
4. spill-priority analysis for split register allocation;
5. hardware-requirement summarization;
6. emission to PVI bytecode with all results attached as annotations.

The pipeline is *data*: a :class:`repro.flows.PipelineSpec` (pass
names + vectorize/annotation knobs) — pass one explicitly, or let the
legacy boolean knobs build the default spec.  Every pass invocation is
instrumented (work, wall time, changed, IR size delta); the aggregate
lands in ``OfflineArtifact.pass_stats`` and its total *is* the
artifact's ``offline_work``.

It also produces the plain scalar bytecode of the same program (no
vector ops, no annotations) because the evaluation needs it twice:
as the portable baseline ("offline-only" flow) and as the input the
"online-only" flow must re-analyze at run time.  Scalar-side pass
records are tagged with a ``scalar:`` prefix in the stats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.bytecode.annotations import (
    HotnessAnnotation, HWRequirementAnnotation, VecLoopAnnotation,
)
from repro.bytecode.emit import emit_module
from repro.bytecode.module import BytecodeModule
from repro.bytecode.verifier import verify_module
from repro.frontend import lower_source
from repro.ir import instructions as ins
from repro.ir.function import Function, Module
from repro.lang import types as ty_mod
from repro.opt import PassStats
from repro.split import regalloc_annotation


@dataclass
class OfflineArtifact:
    """Everything the offline step hands to deployment."""
    name: str
    bytecode: BytecodeModule            # vectorized + annotated
    scalar_bytecode: BytecodeModule     # plain scalar, no annotations
    offline_work: int = 0               # analysis effort spent offline
    offline_time: float = 0.0
    vectorized_functions: List[str] = field(default_factory=list)
    #: the program text (lets a flow with a different pipeline recompile)
    source: Optional[str] = None
    #: the pipeline spec this artifact was compiled under
    pipeline: Optional["PipelineSpec"] = None
    #: the hotness profile it was annotated with (recompiles keep it)
    hotness: Optional[Dict[str, int]] = None
    #: per-pass instrumentation; ``pass_stats.total_work == offline_work``
    pass_stats: PassStats = field(default_factory=PassStats)

    def pass_report(self) -> str:
        """Human-readable per-pass breakdown of the offline budget."""
        return self.pass_stats.report()


def effective_pipeline(pipeline=None, *, optimize: bool = True,
                       do_vectorize: bool = True,
                       annotate_regalloc: bool = True,
                       annotate_hw: bool = True) -> "PipelineSpec":
    """The spec ``offline_compile`` will actually run.

    An explicit ``pipeline`` (spec or its dict form) wins outright;
    otherwise the legacy boolean knobs are folded into the default
    spec.  The artifact cache canonicalizes keys through this same
    function, so the key always reflects the pipeline that ran.
    """
    from repro.flows import PipelineSpec

    if pipeline is not None:
        if isinstance(pipeline, dict):
            defaults = PipelineSpec()
            unknown = set(pipeline) - {
                "passes", "unroll", "vectorize", "annotate_regalloc",
                "annotate_hw"}
            if unknown:
                raise ValueError(
                    f"unknown pipeline fields {sorted(unknown)}")
            spec = PipelineSpec(
                passes=tuple(pipeline.get("passes", defaults.passes)),
                unroll=int(pipeline.get("unroll", defaults.unroll)),
                vectorize=bool(pipeline.get("vectorize",
                                            defaults.vectorize)),
                annotate_regalloc=bool(
                    pipeline.get("annotate_regalloc",
                                 defaults.annotate_regalloc)),
                annotate_hw=bool(pipeline.get("annotate_hw",
                                              defaults.annotate_hw)))
        else:
            spec = pipeline
        return spec.validate()
    return PipelineSpec(
        passes=PipelineSpec().passes if optimize else (),
        vectorize=do_vectorize,
        annotate_regalloc=annotate_regalloc,
        annotate_hw=annotate_hw)


def offline_compile(source: str, name: str = "module", *,
                    pipeline=None,
                    optimize: bool = True,
                    do_vectorize: bool = True,
                    annotate_regalloc: bool = True,
                    annotate_hw: bool = True,
                    hotness: Optional[Dict[str, int]] = None,
                    verify: bool = True) -> OfflineArtifact:
    from repro.flows import run_pipeline

    spec = effective_pipeline(pipeline, optimize=optimize,
                              do_vectorize=do_vectorize,
                              annotate_regalloc=annotate_regalloc,
                              annotate_hw=annotate_hw)
    start = time.perf_counter()
    stats = PassStats()

    # The scalar variant is compiled from its own lowering so the two
    # bytecode flavours are fully independent artifacts.
    scalar_spec = replace(spec, vectorize=False)
    scalar_module = lower_source(source, name)
    for func in scalar_module:
        func_stats = run_pipeline(func, scalar_spec, verify=verify)
        for record in func_stats.records:
            stats.record(f"scalar:{record.name}", record.work,
                         record.time, record.changed,
                         record.ir_before, record.ir_after)

    scalar_bc, _ = emit_module(scalar_module)

    module = lower_source(source, name)
    vectorized: List[str] = []
    for func in module:
        stats.merge(run_pipeline(func, spec, verify=verify))
        if spec.vectorize and getattr(func, "vector_loops", []):
            vectorized.append(func.name)

    bytecode, label_maps = emit_module(module)

    for func in module:
        labels = label_maps[func.name]
        for info in getattr(func, "vector_loops", []):
            bytecode.annotations.append(VecLoopAnnotation(
                function=func.name,
                vector_pc=labels[info.vector_header],
                scalar_pc=labels[info.scalar_header],
                lanes=info.lanes,
                elem=info.elem,
                kind=info.kind,
                reduce_op=info.reduce_op,
                acc_type=info.acc_type,
                noalias_count=len(info.noalias_bases),
            ))
        if spec.annotate_regalloc:
            bytecode.annotations.append(
                regalloc_annotation(func, bytecode[func.name]))
        if spec.annotate_hw:
            bytecode.annotations.append(_hw_annotation(func))
        if hotness and func.name in hotness:
            # Profile data rides on both flavours: the adaptive flow
            # ships the scalar bytecode and gates its online analyses
            # on these weights.
            weight = hotness[func.name]
            bytecode.annotations.append(HotnessAnnotation(
                function=func.name, weight=weight))
            scalar_bc.annotations.append(HotnessAnnotation(
                function=func.name, weight=weight))

    if verify:
        verify_module(bytecode)
        verify_module(scalar_bc)

    # Offline output is immutable from here on; freezing lets the fast
    # VM bind call targets at predecode time (per-call inline caching).
    bytecode.freeze()
    scalar_bc.freeze()

    return OfflineArtifact(
        name=name,
        bytecode=bytecode,
        scalar_bytecode=scalar_bc,
        offline_work=stats.total_work,
        offline_time=time.perf_counter() - start,
        vectorized_functions=vectorized,
        source=source,
        pipeline=spec,
        hotness=dict(hotness) if hotness else None,
        pass_stats=stats,
    )


def _hw_annotation(func: Function) -> HWRequirementAnnotation:
    """Summarize what hardware the function would benefit from."""
    wants_simd = False
    wants_fp = False
    wants_fp64 = False
    memory_ops = 0
    total = 0
    for instr in func.instructions():
        total += 1
        if isinstance(instr, (ins.VLoad, ins.VStore, ins.VBinOp,
                              ins.VSplat, ins.VReduce)):
            wants_simd = True
        for value in list(instr.uses()) + list(instr.defs()):
            value_ty = value.ty
            if isinstance(value_ty, ty_mod.FloatType):
                wants_fp = True
                if value_ty.bits == 64:
                    wants_fp64 = True
        if isinstance(instr, (ins.Load, ins.Store, ins.VLoad,
                              ins.VStore)):
            memory_ops += 1
    return HWRequirementAnnotation(
        function=func.name,
        wants_simd=wants_simd,
        wants_fp=wants_fp,
        wants_fp64=wants_fp64,
        memory_bound=total > 0 and memory_ops * 3 > total,
    )
