"""Compile-budget accounting (experiments F1 and S3a).

The paper's core quantitative argument: a JIT is CPU- and memory-bound,
so the analysis work of aggressive optimization must move offline.
:func:`compare_flows` runs one workload through all three deployment
flows and reports, per flow, where the work happened and what the
generated code achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.offline import OfflineArtifact
from repro.core.online import deploy
from repro.semantics import Memory
from repro.targets.machine import TargetDesc
from repro.targets.simulator import Simulator


@dataclass
class FlowReport:
    flow: str
    target: str
    offline_work: int           # analysis units spent offline
    online_work: int            # total units spent in the JIT
    online_analysis_work: int   # analysis portion of the JIT's work
    online_time: float          # wall-clock JIT seconds
    code_bytes: int
    cycles: Optional[int] = None
    value: object = None

    @property
    def total_work(self) -> int:
        return self.offline_work + self.online_work


def compare_flows(artifact: OfflineArtifact, target: TargetDesc,
                  entry: str, make_args: Callable[[Memory], List],
                  flows: tuple = ("offline-only", "online-only", "split"),
                  service=None) -> List[FlowReport]:
    """Deploy + run ``entry`` under each flow on ``target``.

    ``make_args`` receives a fresh :class:`Memory` per flow and returns
    the argument list (allocating any arrays it needs); per-flow
    memories keep the runs independent.  A compilation ``service``
    makes repeated comparisons reuse their compiled images (the work
    counters come from the first, identical compilation).
    """
    reports: List[FlowReport] = []
    for flow in flows:
        compiled = deploy(artifact, target, flow, service=service)
        memory = Memory()
        args = make_args(memory)
        result = Simulator(compiled, memory).run(entry, args)
        offline_work = artifact.offline_work if flow == "split" else 0
        reports.append(FlowReport(
            flow=flow,
            target=target.name,
            offline_work=offline_work,
            online_work=compiled.total_jit_work,
            online_analysis_work=compiled.total_jit_analysis_work,
            online_time=sum(f.jit_time
                            for f in compiled.functions.values()),
            code_bytes=compiled.total_code_bytes,
            cycles=result.cycles,
            value=result.value,
        ))
    return reports
