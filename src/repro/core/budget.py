"""Compile-budget accounting (experiments F1 and S3a).

The paper's core quantitative argument: a JIT is CPU- and memory-bound,
so the analysis work of aggressive optimization must move offline.
:func:`compare_flows` runs one workload through every registered
deployment flow (or an explicit subset) and reports, per flow, where
the work happened — down to the individual offline pass — and what the
generated code achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.offline import OfflineArtifact, offline_compile
from repro.core.online import deploy
from repro.flows import Flow, as_flow, flow_names
from repro.semantics import Memory
from repro.targets.registry import Targetish, as_target, backend_for


@dataclass
class FlowReport:
    flow: str
    target: str
    offline_work: int           # analysis units spent offline
    online_work: int            # total units spent in the JIT
    online_analysis_work: int   # analysis portion of the JIT's work
    online_time: float          # wall-clock JIT seconds
    code_bytes: int
    cycles: Optional[int] = None
    value: object = None
    #: offline analysis work by pass (empty when the flow ships the
    #: scalar baseline and charges nothing offline)
    offline_pass_work: Dict[str, int] = field(default_factory=dict)
    #: online analysis work by pass (non-empty for flows that re-derive
    #: optimizations in the JIT)
    online_pass_work: Dict[str, int] = field(default_factory=dict)

    @property
    def total_work(self) -> int:
        return self.offline_work + self.online_work


def artifact_for_flow(artifact: OfflineArtifact, flow: Flow,
                      service=None) -> OfflineArtifact:
    """The artifact a flow actually deploys.

    A flow whose pipeline spec matches the artifact's (or an artifact
    that no longer knows its source) deploys the artifact as-is; a flow
    with a different offline pipeline (e.g. ``split-O3``) recompiles
    from source — through the service's content-addressed cache when
    one is supplied, so the recompilation happens once per
    (source, pipeline)."""
    if artifact.source is None or artifact.pipeline == flow.pipeline:
        return artifact
    if service is not None:
        return service.artifact(artifact.source, artifact.name,
                                pipeline=flow.pipeline,
                                hotness=artifact.hotness)
    return offline_compile(artifact.source, artifact.name,
                           pipeline=flow.pipeline,
                           hotness=artifact.hotness)


def compare_flows(artifact: OfflineArtifact, target: Targetish,
                  entry: str, make_args: Callable[[Memory], List],
                  flows: Optional[Sequence[Union[str, Flow]]] = None,
                  service=None) -> List[FlowReport]:
    """Deploy + run ``entry`` under each flow on ``target``.

    ``target`` is a descriptor or a registered name; compilation and
    execution go through its registered backend, so a runtime-
    registered custom target (or the ``wasm32`` stack machine)
    compares exactly like the built-in native ones.  ``flows``
    defaults to *every registered flow*, in registration order — a
    freshly registered custom flow shows up here with no further
    plumbing.  ``make_args`` receives a fresh :class:`Memory` per flow
    and returns the argument list (allocating any arrays it needs);
    per-flow memories keep the runs independent.  A compilation
    ``service`` makes repeated comparisons reuse their compiled images
    (the work counters come from the first, identical compilation).
    """
    target = as_target(target)
    backend = backend_for(target)
    if flows is None:
        flows = flow_names()
    reports: List[FlowReport] = []
    for flow in flows:
        flow = as_flow(flow)
        flow_artifact = artifact_for_flow(artifact, flow, service)
        compiled = deploy(flow_artifact, target, flow, service=service)
        memory = Memory()
        args = make_args(memory)
        result = backend.executor(compiled, memory).run(entry, args)
        charged = flow.charges_offline
        reports.append(FlowReport(
            flow=flow.name,
            target=target.name,
            offline_work=flow_artifact.offline_work if charged else 0,
            online_work=compiled.total_jit_work,
            online_analysis_work=compiled.total_jit_analysis_work,
            online_time=sum(f.jit_time
                            for f in compiled.functions.values()),
            code_bytes=compiled.total_code_bytes,
            cycles=result.cycles,
            value=result.value,
            offline_pass_work=dict(
                flow_artifact.pass_stats.work_by_pass) if charged
            else {},
            online_pass_work=compiled.total_jit_pass_work,
        ))
    return reports
