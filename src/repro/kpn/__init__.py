"""Kahn process networks on heterogeneous multicores.

The paper's §4 closes with the prediction that parallel bytecode will
be built on Kahn process network semantics — "portable, deterministic
and composable concurrency".  This package provides:

* :mod:`repro.kpn.graph` — process networks: actors wrapping PVI
  kernels, connected by unbounded FIFO channels;
* :mod:`repro.kpn.runtime` — a functional dataflow runtime (VM-backed)
  whose outputs are independent of scheduling order (Kahn determinism,
  property-tested);
* :mod:`repro.kpn.mapping` — mapping/scheduling of actors onto the
  cores of a :class:`~repro.core.platform.Platform`, with measured
  per-core costs, plus a makespan simulator — the quantitative side of
  experiment S4c.
"""

from repro.kpn.graph import Actor, Channel, ProcessNetwork
from repro.kpn.runtime import NetworkRuntime
from repro.kpn.mapping import (
    Mapping, deploy_actor_images, estimate_costs, greedy_map,
    host_only_map, simulate_makespan,
)

__all__ = [
    "Actor", "Channel", "ProcessNetwork", "NetworkRuntime",
    "Mapping", "deploy_actor_images", "estimate_costs", "greedy_map",
    "host_only_map", "simulate_makespan",
]
