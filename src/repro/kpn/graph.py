"""Process network structure.

An :class:`Actor` wraps one PVI function with the signature convention

    ``void actor(float *in1, ..., float *out1, ..., int n)``

(consume one block of ``n`` samples from each input channel, produce
one block on each output channel per firing).  Channels are unbounded
FIFOs of blocks; reading is blocking — together with per-actor
determinism this gives Kahn semantics: the network's output is a
function of its input, independent of scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Channel:
    """A FIFO of sample blocks from one producer to one consumer."""
    name: str
    producer: Optional[str] = None     # actor name (None = network input)
    consumer: Optional[str] = None     # actor name (None = network output)


@dataclass
class Actor:
    """One dataflow process."""
    name: str
    function: str                      # PVI function it fires
    inputs: List[str] = field(default_factory=list)    # channel names
    outputs: List[str] = field(default_factory=list)


@dataclass
class ProcessNetwork:
    name: str
    actors: Dict[str, Actor] = field(default_factory=dict)
    channels: Dict[str, Channel] = field(default_factory=dict)
    block_size: int = 64

    def add_channel(self, name: str) -> Channel:
        if name in self.channels:
            raise ValueError(f"duplicate channel {name!r}")
        channel = Channel(name)
        self.channels[name] = channel
        return channel

    def add_actor(self, name: str, function: str, inputs: List[str],
                  outputs: List[str]) -> Actor:
        if name in self.actors:
            raise ValueError(f"duplicate actor {name!r}")
        for cname in inputs + outputs:
            if cname not in self.channels:
                self.add_channel(cname)
        actor = Actor(name, function, list(inputs), list(outputs))
        for cname in inputs:
            channel = self.channels[cname]
            if channel.consumer is not None:
                raise ValueError(f"channel {cname!r} already consumed")
            channel.consumer = name
        for cname in outputs:
            channel = self.channels[cname]
            if channel.producer is not None:
                raise ValueError(f"channel {cname!r} already produced")
            channel.producer = name
        self.actors[name] = actor
        return actor

    def input_channels(self) -> List[str]:
        return [c.name for c in self.channels.values()
                if c.producer is None]

    def output_channels(self) -> List[str]:
        return [c.name for c in self.channels.values()
                if c.consumer is None]

    def predecessors(self, actor: str) -> List[str]:
        result = []
        for cname in self.actors[actor].inputs:
            producer = self.channels[cname].producer
            if producer is not None:
                result.append(producer)
        return result

    def topological_order(self) -> List[str]:
        """Actors in dependency order (the graph must be acyclic —
        feedback loops would need initial tokens, which the mapping
        experiment does not use)."""
        order: List[str] = []
        temp: set = set()
        done: set = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in temp:
                raise ValueError("cycle in process network "
                                 "(add initial tokens to break it)")
            temp.add(name)
            for pred in self.predecessors(name):
                visit(pred)
            temp.discard(name)
            done.add(name)
            order.append(name)

        for name in self.actors:
            visit(name)
        return order
