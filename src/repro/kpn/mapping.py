"""Mapping process networks onto heterogeneous platforms.

Because the application ships as bytecode, *every* core is a candidate
for every actor — the paper's whole-platform programmability.  The
mapper measures each actor's cost on each core kind (JIT once per
kind, simulate one firing), then:

* :func:`host_only_map` — everything on the host core (the status quo
  the paper criticizes: accelerators closed to third-party code);
* :func:`greedy_map` — affinity-aware longest-processing-time: place
  costly actors first, each on the core minimizing its completion
  time given what that core already carries.

:func:`simulate_makespan` evaluates a mapping with a block-pipelined
schedule: firing ``k`` of an actor needs firing ``k`` of its
predecessors and its core to be free; unbounded FIFOs buffer between
stages (Kahn semantics again).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.platform import Platform
from repro.flows import as_flow
from repro.kpn.graph import ProcessNetwork
from repro.lang import types as ty
from repro.semantics import Memory
from repro.targets.registry import backend_for

#: cost table: (actor name, core kind name) -> cycles per firing
CostTable = Dict[Tuple[str, str], float]


@dataclass
class Mapping:
    """actor name -> physical core index (into platform.core_list())."""
    assignment: Dict[str, int] = field(default_factory=dict)

    def core_of(self, actor: str) -> int:
        return self.assignment[actor]


def estimate_costs(network: ProcessNetwork, images: Dict[str, object],
                   platform: Platform, seed: int = 11) -> CostTable:
    """Measure cycles per firing for every (actor, core kind).

    Each kind's image runs on its target's registered backend
    executor — a stack-machine or custom-backend core is measured
    exactly like a native one.  Simulated cycles are divided by the
    core's clock scale so the table is in common time units.
    """
    import random
    rng = random.Random(seed)
    size = network.block_size
    table: CostTable = {}
    for target in platform.kinds():
        compiled = images[target.name]
        backend = backend_for(target)
        for actor in network.actors.values():
            memory = Memory(1 << 18)
            in_addrs = [memory.alloc_array(
                ty.F32, [rng.uniform(-1, 1) for _ in range(size)])
                for _ in actor.inputs]
            out_addrs = [memory.alloc_array(ty.F32, [0.0] * size)
                        for _ in actor.outputs]
            result = backend.executor(compiled, memory).run(
                actor.function, in_addrs + out_addrs + [size])
            table[(actor.name, target.name)] = \
                result.cycles / target.clock_scale
    return table


def deploy_actor_images(network: ProcessNetwork, artifact,
                        platform: Platform, mapping: "Mapping",
                        service=None, flow="split") -> Dict[str, object]:
    """Deploy each actor's bytecode to its mapped core through the
    compilation service.  ``flow`` is a registered flow name or a
    :class:`repro.flows.Flow`; ``service`` defaults to the
    process-wide :func:`repro.service.default_service` (the compile
    runs on whatever deploy executor that service is configured
    with — threads, worker processes or inline).

    Returns actor name -> compiled image (the backend's image type)
    for the core kind the mapping placed it on.  The service compiles
    each *kind* at
    most once (concurrently, memoized), however many actors share it —
    the once-compile/many-deploy shape of the paper's Figure 1 applied
    to a process network.
    """
    flow = as_flow(flow)          # fail on a typo before any JIT runs
    if service is None:
        from repro.service import default_service
        service = default_service()
    cores = platform.core_list()
    kinds_needed = {}
    for actor in network.actors:
        target = cores[mapping.core_of(actor)]
        kinds_needed[target.name] = target
    images = service.deploy_many(artifact, list(kinds_needed.values()),
                                 flow)
    return {actor: images[cores[mapping.core_of(actor)].name]
            for actor in network.actors}


def host_only_map(network: ProcessNetwork, platform: Platform,
                  host_name: str = "host") -> Mapping:
    cores = platform.core_list()
    try:
        host_index = next(i for i, t in enumerate(cores)
                          if t.name == host_name)
    except StopIteration:
        host_index = 0
    return Mapping({name: host_index for name in network.actors})


def greedy_map(network: ProcessNetwork, platform: Platform,
               costs: CostTable) -> Mapping:
    """Affinity-aware LPT list scheduling."""
    cores = platform.core_list()
    load = [0.0] * len(cores)
    mapping = Mapping()
    # Place the most expensive actors (by their best-core cost) first.
    order = sorted(
        network.actors,
        key=lambda a: -min(costs[(a, t.name)] for t in cores))
    for actor in order:
        best_core = min(
            range(len(cores)),
            key=lambda i: load[i] + costs[(actor, cores[i].name)])
        mapping.assignment[actor] = best_core
        load[best_core] += costs[(actor, cores[best_core].name)]
    return mapping


def simulate_makespan(network: ProcessNetwork, platform: Platform,
                      mapping: Mapping, costs: CostTable,
                      blocks: int) -> float:
    """Pipelined schedule length for ``blocks`` firings per actor."""
    cores = platform.core_list()
    order = network.topological_order()
    core_free = [0.0] * len(cores)
    finish: Dict[Tuple[str, int], float] = {}

    for k in range(blocks):
        for name in order:
            core = mapping.core_of(name)
            cost = costs[(name, cores[core].name)]
            ready = 0.0
            for pred in network.predecessors(name):
                ready = max(ready, finish[(pred, k)])
            if k > 0:
                ready = max(ready, finish[(name, k - 1)])
            start = max(ready, core_free[core])
            finish[(name, k)] = start + cost
            core_free[core] = start + cost

    return max(finish.values()) if finish else 0.0
