"""Functional KPN execution (VM-backed).

Runs the network on real data: every firing calls the actor's PVI
function in the VM against a private memory, with blocks marshalled
through Python FIFOs.  The scheduler parameter exists *to prove it
does not matter*: Kahn determinism (same outputs for any admissible
firing order) is a property test in the suite.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.bytecode.module import BytecodeModule
from repro.lang import types as ty
from repro.semantics import Memory
from repro.vm import VM


class NetworkRuntime:
    """Executes a :class:`~repro.kpn.graph.ProcessNetwork`."""

    def __init__(self, network, bytecode: BytecodeModule):
        self.network = network
        self.bytecode = bytecode

    def run(self, inputs: Dict[str, Sequence[float]],
            blocks: Optional[int] = None,
            schedule_seed: Optional[int] = None) \
            -> Dict[str, List[float]]:
        """Feed ``inputs`` (samples per network input channel), run to
        quiescence, return samples per network output channel.

        ``schedule_seed`` shuffles the ready-actor choice — outputs
        must not depend on it.
        """
        network = self.network
        size = network.block_size
        fifos: Dict[str, deque] = {name: deque()
                                   for name in network.channels}

        for cname in network.input_channels():
            samples = list(inputs.get(cname, []))
            total = blocks if blocks is not None \
                else (len(samples) + size - 1) // size
            for b in range(total):
                block = samples[b * size:(b + 1) * size]
                block += [0.0] * (size - len(block))
                fifos[cname].append(block)

        rng = random.Random(schedule_seed)

        def ready() -> List[str]:
            names = [name for name, actor in network.actors.items()
                     if all(fifos[c] for c in actor.inputs)]
            if schedule_seed is not None:
                rng.shuffle(names)
            return names

        progress = True
        while progress:
            progress = False
            for name in ready():
                actor = network.actors[name]
                if not all(fifos[c] for c in actor.inputs):
                    continue
                in_blocks = [fifos[c].popleft() for c in actor.inputs]
                out_blocks = self._fire(actor, in_blocks, size)
                for cname, block in zip(actor.outputs, out_blocks):
                    fifos[cname].append(block)
                progress = True

        return {cname: [sample for block in fifos[cname]
                        for sample in block]
                for cname in network.output_channels()}

    def _fire(self, actor, in_blocks: List[List[float]],
              size: int) -> List[List[float]]:
        memory = Memory(1 << 18)
        vm = VM(self.bytecode, memory=memory, verify=False)
        in_addrs = [memory.alloc_array(ty.F32, block)
                    for block in in_blocks]
        out_addrs = [memory.alloc_array(ty.F32, [0.0] * size)
                     for _ in actor.outputs]
        vm.call(actor.function, in_addrs + out_addrs + [size])
        return [memory.read_array(ty.F32, addr, size)
                for addr in out_addrs]
