"""MiniC front-end: lexer, parser, type system and semantic analysis.

MiniC is the C subset the offline compiler accepts.  It covers the style
of code the paper targets (numerical kernels, control code): the usual
integer/float scalar types, pointers, arrays, loops, and function calls.
The public entry point is :func:`parse_and_check`.
"""

from repro.lang.ast import Program
from repro.lang.errors import LexError, ParseError, SemanticError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import check
from repro.lang import types

__all__ = [
    "tokenize",
    "parse",
    "check",
    "parse_and_check",
    "types",
    "Program",
    "LexError",
    "ParseError",
    "SemanticError",
]


def parse_and_check(source: str, filename: str = "<minic>") -> Program:
    """Parse MiniC ``source`` and run semantic analysis.

    Returns the typed AST (every expression node carries a ``ty``
    attribute and implicit conversions are materialized as casts), ready
    for lowering to IR.
    """
    program = parse(source, filename=filename)
    check(program)
    return program
