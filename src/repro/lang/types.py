"""The MiniC type system.

Types are immutable, hashable value objects shared by the front-end, the
mid-level IR and the bytecode emitter.  The model is a simplified C:

* integer types of 8/16/32/64 bits, signed or unsigned;
* ``float`` (32-bit) and ``double`` (64-bit);
* pointers, with pointer arithmetic scaled by the pointee size;
* arrays (local declarations only; they decay to pointers in
  expressions and parameter lists);
* function types for call checking.

Comparison results have type ``int`` (I32), as in C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Type:
    """Base class; concrete types below."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    bits: int
    signed: bool

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.bits}"


@dataclass(frozen=True)
class FloatType(Type):
    bits: int

    def __str__(self) -> str:
        return f"f{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type
    count: int

    def __str__(self) -> str:
        return f"{self.elem}[{self.count}]"


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type
    params: Tuple[Type, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({args})"


VOID = VoidType()
I8 = IntType(8, True)
U8 = IntType(8, False)
I16 = IntType(16, True)
U16 = IntType(16, False)
I32 = IntType(32, True)
U32 = IntType(32, False)
I64 = IntType(64, True)
U64 = IntType(64, False)
F32 = FloatType(32)
F64 = FloatType(64)

#: All scalar integer types, in a canonical order.
INT_TYPES = (I8, U8, I16, U16, I32, U32, I64, U64)
FLOAT_TYPES = (F32, F64)


def is_integer(ty: Type) -> bool:
    return isinstance(ty, IntType)


def is_float(ty: Type) -> bool:
    return isinstance(ty, FloatType)


def is_arithmetic(ty: Type) -> bool:
    return is_integer(ty) or is_float(ty)


def is_pointer(ty: Type) -> bool:
    return isinstance(ty, PointerType)


def is_scalar(ty: Type) -> bool:
    """Scalar in the C sense: arithmetic or pointer (usable in tests)."""
    return is_arithmetic(ty) or is_pointer(ty)


def sizeof(ty: Type) -> int:
    """Size in bytes; pointers are 8 bytes on every PVI target."""
    if isinstance(ty, IntType):
        return ty.bits // 8
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return 8
    if isinstance(ty, ArrayType):
        return sizeof(ty.elem) * ty.count
    raise ValueError(f"sizeof undefined for {ty}")


def alignof(ty: Type) -> int:
    if isinstance(ty, ArrayType):
        return alignof(ty.elem)
    return sizeof(ty)


def decay(ty: Type) -> Type:
    """Array-to-pointer decay, as in C expression contexts."""
    if isinstance(ty, ArrayType):
        return PointerType(ty.elem)
    return ty


def promote(ty: Type) -> Type:
    """Integer promotion: anything narrower than ``int`` becomes I32."""
    if is_integer(ty) and ty.bits < 32:
        return I32
    return ty


def common_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions for a binary operator.

    Floats dominate integers; wider dominates narrower; at equal width
    unsigned dominates signed (the C rules, minus the exotic corners).
    """
    if not (is_arithmetic(a) and is_arithmetic(b)):
        raise ValueError(f"no common arithmetic type for {a} and {b}")
    if is_float(a) or is_float(b):
        fa = a if is_float(a) else None
        fb = b if is_float(b) else None
        bits = max(f.bits for f in (fa, fb) if f is not None)
        return F64 if bits == 64 else F32
    a = promote(a)
    b = promote(b)
    assert isinstance(a, IntType) and isinstance(b, IntType)
    if a.bits != b.bits:
        return a if a.bits > b.bits else b
    if a.signed == b.signed:
        return a
    return IntType(a.bits, False)


def can_convert(src: Type, dst: Type) -> bool:
    """Implicit convertibility (assignments, argument passing)."""
    src = decay(src)
    dst = decay(dst)
    if src == dst:
        return True
    if is_arithmetic(src) and is_arithmetic(dst):
        return True
    if is_pointer(src) and is_pointer(dst):
        # C would warn; MiniC allows only void*-ish identical pointees.
        return src == dst
    if is_integer(src) and is_pointer(dst):
        return False
    return False


def int_min(ty: IntType) -> int:
    return -(1 << (ty.bits - 1)) if ty.signed else 0


def int_max(ty: IntType) -> int:
    return (1 << (ty.bits - 1)) - 1 if ty.signed else (1 << ty.bits) - 1


def wrap_int(value: int, ty: IntType) -> int:
    """Wrap ``value`` to the representable range of ``ty`` (two's complement)."""
    mask = (1 << ty.bits) - 1
    value &= mask
    if ty.signed and value >= (1 << (ty.bits - 1)):
        value -= 1 << ty.bits
    return value
