"""Semantic analysis for MiniC.

``check(program)`` type-checks the AST in place:

* every :class:`~repro.lang.ast.Expr` node receives a ``ty`` attribute;
* implicit conversions are materialized as ``Cast`` nodes, so lowering
  never has to re-derive C conversion rules;
* every ``Ident`` receives a ``decl`` attribute pointing at its
  declaration (``VarDecl`` or ``Param``), and every declaration gets a
  unique ``uid``, which makes shadowing trivial for the lowering pass;
* compound assignments receive a ``compute_ty`` attribute: the usual-
  arithmetic-conversion type in which the implied binary operation is
  evaluated before being converted back to the target's type.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import ast
from repro.lang import types as ty
from repro.lang.errors import SemanticError


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, ast.Node] = {}

    def declare(self, name: str, decl: ast.Node) -> None:
        if name in self.names:
            raise SemanticError(f"redeclaration of {name!r}",
                                line=decl.line, col=decl.col)
        self.names[name] = decl

    def lookup(self, name: str) -> Optional[ast.Node]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _decl_type(decl: ast.Node) -> ty.Type:
    if isinstance(decl, ast.VarDecl):
        return decl.var_type
    if isinstance(decl, ast.Param):
        return decl.param_type
    raise AssertionError(f"not a declaration: {decl}")


class _Checker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.functions: Dict[str, ast.FuncDef] = {}
        self.current: Optional[ast.FuncDef] = None
        self.loop_depth = 0
        self._uid = 0

    def error(self, message: str, node: ast.Node) -> SemanticError:
        return SemanticError(message, line=node.line, col=node.col)

    def fresh_uid(self) -> int:
        self._uid += 1
        return self._uid

    # -- helpers -------------------------------------------------------------

    def coerce(self, expr: ast.Expr, target: ty.Type) -> ast.Expr:
        """Insert an implicit conversion of ``expr`` to ``target`` if needed."""
        assert expr.ty is not None
        src = ty.decay(expr.ty)
        if src == target:
            return expr
        if not ty.can_convert(src, target):
            raise self.error(f"cannot convert {src} to {target}", expr)
        cast = ast.Cast(target_type=target, operand=expr,
                        line=expr.line, col=expr.col)
        cast.ty = target
        return cast

    def require_scalar(self, expr: ast.Expr, what: str) -> None:
        if not ty.is_scalar(ty.decay(expr.ty)):
            raise self.error(f"{what} must be scalar, got {expr.ty}", expr)

    # -- program -------------------------------------------------------------

    def run(self) -> None:
        for func in self.program.funcs:
            prior = self.functions.get(func.name)
            if prior is not None:
                same_sig = (prior.ret_type == func.ret_type and
                            [p.param_type for p in prior.params] ==
                            [p.param_type for p in func.params])
                if not same_sig:
                    raise self.error(
                        f"conflicting declarations of {func.name!r}", func)
                if prior.body is not None and func.body is not None:
                    raise self.error(f"redefinition of {func.name!r}", func)
                if func.body is not None:
                    self.functions[func.name] = func
            else:
                self.functions[func.name] = func
        for func in self.program.funcs:
            if func.body is not None:
                self.check_func(func)

    def check_func(self, func: ast.FuncDef) -> None:
        self.current = func
        scope = _Scope()
        for param in func.params:
            if isinstance(param.param_type, ty.VoidType):
                raise self.error("parameter of void type", param)
            param.uid = self.fresh_uid()
            scope.declare(param.name, param)
        self.check_block(func.body, _Scope(scope))
        self.current = None

    # -- statements ------------------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self.check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.VarDecl):
            self.check_vardecl(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond, scope)
            self.require_scalar(stmt.cond, "if condition")
            self.check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self.check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond, scope)
            self.require_scalar(stmt.cond, "while condition")
            self.loop_depth += 1
            self.check_stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self.check_stmt(stmt.body, scope)
            self.loop_depth -= 1
            self.check_expr(stmt.cond, scope)
            self.require_scalar(stmt.cond, "do-while condition")
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self.check_expr(stmt.cond, inner)
                self.require_scalar(stmt.cond, "for condition")
            if stmt.step is not None:
                self.check_expr(stmt.step, inner)
            self.loop_depth += 1
            self.check_stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            ret = self.current.ret_type
            if stmt.value is None:
                if not isinstance(ret, ty.VoidType):
                    raise self.error("non-void function must return a value",
                                     stmt)
            else:
                if isinstance(ret, ty.VoidType):
                    raise self.error("void function cannot return a value",
                                     stmt)
                self.check_expr(stmt.value, scope)
                stmt.value = self.coerce(stmt.value, ret)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise self.error("break outside loop", stmt)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise self.error("continue outside loop", stmt)
        else:
            raise AssertionError(f"unknown statement {stmt}")

    def check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.stmts:
            self.check_stmt(stmt, scope)

    def check_vardecl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        if isinstance(decl.var_type, ty.VoidType):
            raise self.error("variable of void type", decl)
        decl.uid = self.fresh_uid()
        if decl.init is not None:
            if isinstance(decl.var_type, ty.ArrayType):
                raise self.error("array initializers are not supported", decl)
            self.check_expr(decl.init, scope)
            decl.init = self.coerce(decl.init, decl.var_type)
        scope.declare(decl.name, decl)

    # -- expressions -------------------------------------------------------------

    def check_expr(self, expr: ast.Expr, scope: _Scope) -> ty.Type:
        method = getattr(self, f"_check_{type(expr).__name__}")
        result = method(expr, scope)
        expr.ty = result
        return result

    def _check_IntLit(self, expr: ast.IntLit, scope: _Scope) -> ty.Type:
        return ty.I32 if -(2**31) <= expr.value < 2**31 else ty.I64

    def _check_FloatLit(self, expr: ast.FloatLit, scope: _Scope) -> ty.Type:
        return ty.F32 if getattr(expr, "single", False) else ty.F64

    def _check_Ident(self, expr: ast.Ident, scope: _Scope) -> ty.Type:
        decl = scope.lookup(expr.name)
        if decl is None:
            raise self.error(f"use of undeclared identifier {expr.name!r}",
                             expr)
        expr.decl = decl
        return _decl_type(decl)

    def _check_Unary(self, expr: ast.Unary, scope: _Scope) -> ty.Type:
        operand_ty = ty.decay(self.check_expr(expr.operand, scope))
        if expr.op == "!":
            self.require_scalar(expr.operand, "operand of '!'")
            return ty.I32
        if expr.op == "~":
            if not ty.is_integer(operand_ty):
                raise self.error("operand of '~' must be integer", expr)
            promoted = ty.promote(operand_ty)
            expr.operand = self.coerce(expr.operand, promoted)
            return promoted
        if expr.op == "-":
            if not ty.is_arithmetic(operand_ty):
                raise self.error("operand of unary '-' must be arithmetic",
                                 expr)
            promoted = ty.promote(operand_ty)
            expr.operand = self.coerce(expr.operand, promoted)
            return promoted
        raise AssertionError(f"unknown unary {expr.op}")

    def _check_Binary(self, expr: ast.Binary, scope: _Scope) -> ty.Type:
        left_ty = ty.decay(self.check_expr(expr.left, scope))
        right_ty = ty.decay(self.check_expr(expr.right, scope))
        op = expr.op

        if op in ("&&", "||"):
            self.require_scalar(expr.left, f"operand of {op!r}")
            self.require_scalar(expr.right, f"operand of {op!r}")
            return ty.I32

        if op in ("==", "!=", "<", "<=", ">", ">="):
            if ty.is_pointer(left_ty) and ty.is_pointer(right_ty):
                if left_ty != right_ty:
                    raise self.error("comparison of distinct pointer types",
                                     expr)
                return ty.I32
            if not (ty.is_arithmetic(left_ty) and ty.is_arithmetic(right_ty)):
                raise self.error(f"invalid operands to {op!r} "
                                 f"({left_ty} and {right_ty})", expr)
            common = ty.common_type(left_ty, right_ty)
            expr.left = self.coerce(expr.left, common)
            expr.right = self.coerce(expr.right, common)
            return ty.I32

        if op in ("<<", ">>"):
            if not (ty.is_integer(left_ty) and ty.is_integer(right_ty)):
                raise self.error(f"operands of {op!r} must be integers", expr)
            promoted = ty.promote(left_ty)
            expr.left = self.coerce(expr.left, promoted)
            expr.right = self.coerce(expr.right, ty.I32)
            return promoted

        if op in ("&", "|", "^", "%"):
            if not (ty.is_integer(left_ty) and ty.is_integer(right_ty)):
                raise self.error(f"operands of {op!r} must be integers", expr)
            common = ty.common_type(left_ty, right_ty)
            expr.left = self.coerce(expr.left, common)
            expr.right = self.coerce(expr.right, common)
            return common

        if op in ("+", "-"):
            if ty.is_pointer(left_ty) and ty.is_integer(right_ty):
                expr.right = self.coerce(expr.right, ty.I64)
                return left_ty
            if op == "+" and ty.is_integer(left_ty) and ty.is_pointer(right_ty):
                expr.left = self.coerce(expr.left, ty.I64)
                return right_ty
            if op == "-" and ty.is_pointer(left_ty) and ty.is_pointer(right_ty):
                if left_ty != right_ty:
                    raise self.error("subtraction of distinct pointer types",
                                     expr)
                return ty.I64

        if op in ("+", "-", "*", "/"):
            if not (ty.is_arithmetic(left_ty) and ty.is_arithmetic(right_ty)):
                raise self.error(f"invalid operands to {op!r} "
                                 f"({left_ty} and {right_ty})", expr)
            common = ty.common_type(left_ty, right_ty)
            expr.left = self.coerce(expr.left, common)
            expr.right = self.coerce(expr.right, common)
            return common

        raise AssertionError(f"unknown binary {op}")

    def _check_Assign(self, expr: ast.Assign, scope: _Scope) -> ty.Type:
        target_ty = self.check_expr(expr.target, scope)
        if not ast.is_lvalue(expr.target):
            raise self.error("assignment target is not an lvalue", expr)
        if isinstance(target_ty, ty.ArrayType):
            raise self.error("cannot assign to an array", expr)
        self.check_expr(expr.value, scope)
        if expr.op == "=":
            expr.value = self.coerce(expr.value, target_ty)
            expr.compute_ty = target_ty
            return target_ty
        binop = expr.op[:-1]
        value_ty = ty.decay(expr.value.ty)
        if ty.is_pointer(target_ty):
            if binop not in ("+", "-") or not ty.is_integer(value_ty):
                raise self.error(
                    f"invalid compound assignment {expr.op!r} on pointer",
                    expr)
            expr.value = self.coerce(expr.value, ty.I64)
            expr.compute_ty = target_ty
            return target_ty
        if binop in ("&", "|", "^", "%", "<<", ">>"):
            if not (ty.is_integer(target_ty) and ty.is_integer(value_ty)):
                raise self.error(
                    f"operands of {expr.op!r} must be integers", expr)
        elif not (ty.is_arithmetic(target_ty) and ty.is_arithmetic(value_ty)):
            raise self.error(f"invalid operands to {expr.op!r}", expr)
        if binop in ("<<", ">>"):
            compute = ty.promote(target_ty)
            expr.value = self.coerce(expr.value, ty.I32)
        else:
            compute = ty.common_type(target_ty, value_ty)
            expr.value = self.coerce(expr.value, compute)
        expr.compute_ty = compute
        return target_ty

    def _check_IncDec(self, expr: ast.IncDec, scope: _Scope) -> ty.Type:
        target_ty = self.check_expr(expr.target, scope)
        if not ast.is_lvalue(expr.target):
            raise self.error(f"operand of {expr.op!r} is not an lvalue", expr)
        target_ty = ty.decay(target_ty)
        if not (ty.is_arithmetic(target_ty) or ty.is_pointer(target_ty)):
            raise self.error(
                f"operand of {expr.op!r} must be arithmetic or pointer", expr)
        return target_ty

    def _check_Conditional(self, expr: ast.Conditional,
                           scope: _Scope) -> ty.Type:
        self.check_expr(expr.cond, scope)
        self.require_scalar(expr.cond, "'?:' condition")
        then_ty = ty.decay(self.check_expr(expr.then, scope))
        else_ty = ty.decay(self.check_expr(expr.otherwise, scope))
        if ty.is_arithmetic(then_ty) and ty.is_arithmetic(else_ty):
            common = ty.common_type(then_ty, else_ty)
            expr.then = self.coerce(expr.then, common)
            expr.otherwise = self.coerce(expr.otherwise, common)
            return common
        if then_ty == else_ty:
            return then_ty
        raise self.error("incompatible '?:' branch types", expr)

    def _check_Call(self, expr: ast.Call, scope: _Scope) -> ty.Type:
        func = self.functions.get(expr.name)
        if func is None:
            raise self.error(f"call to undeclared function {expr.name!r}",
                             expr)
        if len(expr.args) != len(func.params):
            raise self.error(
                f"{expr.name!r} expects {len(func.params)} arguments, "
                f"got {len(expr.args)}", expr)
        for i, (arg, param) in enumerate(zip(expr.args, func.params)):
            self.check_expr(arg, scope)
            expr.args[i] = self.coerce(arg, param.param_type)
        expr.callee = func
        return func.ret_type

    def _check_Index(self, expr: ast.Index, scope: _Scope) -> ty.Type:
        base_ty = self.check_expr(expr.base, scope)
        index_ty = self.check_expr(expr.index, scope)
        if not ty.is_integer(ty.decay(index_ty)):
            raise self.error("array index must be an integer", expr)
        expr.index = self.coerce(expr.index, ty.I64)
        base_ty = base_ty if isinstance(base_ty, ty.ArrayType) \
            else ty.decay(base_ty)
        if isinstance(base_ty, ty.ArrayType):
            return base_ty.elem
        if isinstance(base_ty, ty.PointerType):
            return base_ty.pointee
        raise self.error(f"cannot index a value of type {base_ty}", expr)

    def _check_Deref(self, expr: ast.Deref, scope: _Scope) -> ty.Type:
        operand_ty = ty.decay(self.check_expr(expr.operand, scope))
        if not isinstance(operand_ty, ty.PointerType):
            raise self.error("cannot dereference a non-pointer", expr)
        return operand_ty.pointee

    def _check_AddrOf(self, expr: ast.AddrOf, scope: _Scope) -> ty.Type:
        operand_ty = self.check_expr(expr.operand, scope)
        if not ast.is_lvalue(expr.operand):
            raise self.error("cannot take the address of an rvalue", expr)
        if isinstance(operand_ty, ty.ArrayType):
            return ty.PointerType(operand_ty.elem)
        return ty.PointerType(operand_ty)

    def _check_Cast(self, expr: ast.Cast, scope: _Scope) -> ty.Type:
        operand_ty = ty.decay(self.check_expr(expr.operand, scope))
        target = expr.target_type
        if isinstance(target, ty.VoidType):
            return target
        if ty.is_arithmetic(operand_ty) and ty.is_arithmetic(target):
            return target
        if ty.is_pointer(operand_ty) and ty.is_pointer(target):
            return target
        if ty.is_pointer(operand_ty) and ty.is_integer(target) and \
                target.bits == 64:
            return target
        if ty.is_integer(operand_ty) and ty.is_pointer(target):
            return target
        raise self.error(f"invalid cast from {operand_ty} to {target}", expr)

    def _check_SizeOf(self, expr: ast.SizeOf, scope: _Scope) -> ty.Type:
        return ty.U64


def check(program: ast.Program) -> ast.Program:
    """Type-check ``program`` in place and return it."""
    _Checker(program).run()
    return program
