"""Diagnostics for the MiniC front-end."""


class CompilerError(Exception):
    """Base class for all front-end diagnostics.

    Carries an optional source location so messages read like a normal
    compiler diagnostic: ``file:line:col: message``.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 filename: str = "<minic>"):
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename
        super().__init__(self.format())

    def format(self) -> str:
        if self.line:
            return f"{self.filename}:{self.line}:{self.col}: {self.message}"
        return self.message


class LexError(CompilerError):
    """Raised for malformed tokens."""


class ParseError(CompilerError):
    """Raised for syntax errors."""


class SemanticError(CompilerError):
    """Raised for type errors and other semantic violations."""
