"""Recursive-descent parser for MiniC.

Grammar summary (C subset)::

    program     := funcdef*
    funcdef     := type declarator '(' params ')' (block | ';')
    params      := 'void' | (type declarator (',' type declarator)*)?
    block       := '{' stmt* '}'
    stmt        := block | if | while | do-while | for | return
                 | 'break' ';' | 'continue' ';' | decl ';' | expr ';' | ';'
    decl        := type declarator ('=' assign)?
    declarator  := '*'* ident ('[' int ']')*

Expressions follow the usual C precedence ladder; casts are
disambiguated from parenthesized expressions by checking whether the
token after ``(`` begins a type (MiniC has no typedefs, so this is
exact).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang import types as ty
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize

#: Binary operator precedence; higher binds tighter.
_BINOP_PREC = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "float", "double",
                  "signed", "unsigned", "const"}


class _Parser:
    def __init__(self, tokens: List[Token], filename: str):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self.at(kind, text):
            return self.next()
        tok = self.peek()
        want = text or kind
        raise ParseError(f"expected {want!r}, found {tok.text or tok.kind!r}",
                         line=tok.line, col=tok.col, filename=self.filename)

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, line=tok.line, col=tok.col,
                          filename=self.filename)

    # -- types -------------------------------------------------------------

    def at_type(self) -> bool:
        return self.peek().kind == "kw" and self.peek().text in _TYPE_KEYWORDS

    def parse_base_type(self) -> ty.Type:
        """Parse a sequence of type keywords into a concrete type."""
        words: List[str] = []
        while self.at_type():
            word = self.next().text
            if word != "const":      # const is accepted and ignored
                words.append(word)
        if not words:
            raise self.error("expected type")
        key = " ".join(sorted(words))
        mapping = {
            "void": ty.VOID,
            "char": ty.I8,
            "char signed": ty.I8,
            "char unsigned": ty.U8,
            "short": ty.I16,
            "short signed": ty.I16,
            "int short": ty.I16,
            "short unsigned": ty.U16,
            "int short unsigned": ty.U16,
            "int": ty.I32,
            "signed": ty.I32,
            "int signed": ty.I32,
            "unsigned": ty.U32,
            "int unsigned": ty.U32,
            "long": ty.I64,
            "int long": ty.I64,
            "long signed": ty.I64,
            "long unsigned": ty.U64,
            "int long unsigned": ty.U64,
            "float": ty.F32,
            "double": ty.F64,
        }
        if key not in mapping:
            raise self.error(f"unsupported type {' '.join(words)!r}")
        return mapping[key]

    def parse_declarator(self, base: ty.Type) -> Tuple[str, ty.Type]:
        """Parse ``'*'* ident ('[' int ']')*`` and build the full type."""
        t = base
        while self.accept("op", "*"):
            t = ty.PointerType(t)
        name_tok = self.expect("ident")
        dims: List[int] = []
        while self.accept("op", "["):
            size_tok = self.expect("int")
            dims.append(int(size_tok.value))
            self.expect("op", "]")
        for dim in reversed(dims):
            t = ty.ArrayType(t, dim)
        return name_tok.text, t

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        funcs: List[ast.FuncDef] = []
        while not self.at("eof"):
            funcs.append(self.parse_funcdef())
        return ast.Program(funcs=funcs)

    def parse_funcdef(self) -> ast.FuncDef:
        start = self.peek()
        base = self.parse_base_type()
        ret = base
        while self.accept("op", "*"):
            ret = ty.PointerType(ret)
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[ast.Param] = []
        if self.at("kw", "void") and self.peek(1).text == ")":
            self.next()
        elif not self.at("op", ")"):
            while True:
                pbase = self.parse_base_type()
                pname, ptype = self.parse_declarator(pbase)
                ptype = ty.decay(ptype)
                params.append(ast.Param(name=pname, param_type=ptype,
                                        line=start.line, col=start.col))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        if self.accept("op", ";"):
            body = None
        else:
            body = self.parse_block()
        return ast.FuncDef(name=name, ret_type=ret, params=params, body=body,
                           line=start.line, col=start.col)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.at("op", "}"):
            if self.at("eof"):
                raise self.error("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return ast.Block(stmts=stmts, line=start.line, col=start.col)

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if self.at("op", "{"):
            return self.parse_block()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "while"):
            return self.parse_while()
        if self.at("kw", "do"):
            return self.parse_do_while()
        if self.at("kw", "for"):
            return self.parse_for()
        if self.accept("kw", "return"):
            value = None if self.at("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return ast.Return(value=value, line=tok.line, col=tok.col)
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return ast.Break(line=tok.line, col=tok.col)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return ast.Continue(line=tok.line, col=tok.col)
        if self.accept("op", ";"):
            return ast.Block(stmts=[], line=tok.line, col=tok.col)
        if self.at_type():
            decl = self.parse_decl()
            self.expect("op", ";")
            return decl
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def parse_decl(self) -> ast.VarDecl:
        tok = self.peek()
        base = self.parse_base_type()
        name, var_type = self.parse_declarator(base)
        init = None
        if self.accept("op", "="):
            init = self.parse_assign()
        return ast.VarDecl(name=name, var_type=var_type, init=init,
                           line=tok.line, col=tok.col)

    def parse_if(self) -> ast.If:
        tok = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        otherwise = None
        if self.accept("kw", "else"):
            otherwise = self.parse_stmt()
        return ast.If(cond=cond, then=then, otherwise=otherwise,
                      line=tok.line, col=tok.col)

    def parse_while(self) -> ast.While:
        tok = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(cond=cond, body=body, line=tok.line, col=tok.col)

    def parse_do_while(self) -> ast.DoWhile:
        tok = self.expect("kw", "do")
        body = self.parse_stmt()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body=body, cond=cond, line=tok.line, col=tok.col)

    def parse_for(self) -> ast.For:
        tok = self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.at("op", ";"):
            if self.at_type():
                init = self.parse_decl()
            else:
                expr = self.parse_expr()
                init = ast.ExprStmt(expr=expr, line=tok.line, col=tok.col)
        self.expect("op", ";")
        cond = None if self.at("op", ";") else self.parse_expr()
        self.expect("op", ";")
        step = None if self.at("op", ")") else self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=tok.line, col=tok.col)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_assign()

    def parse_assign(self) -> ast.Expr:
        left = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assign()
            return ast.Assign(op=tok.text, target=left, value=value,
                              line=tok.line, col=tok.col)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        tok = self.peek()
        if self.accept("op", "?"):
            then = self.parse_expr()
            self.expect("op", ":")
            otherwise = self.parse_conditional()
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise,
                                   line=tok.line, col=tok.col)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _BINOP_PREC.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(op=tok.text, left=left, right=right,
                              line=tok.line, col=tok.col)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "+"):
            self.next()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(op=tok.text, operand=operand,
                             line=tok.line, col=tok.col)
        if tok.kind == "op" and tok.text == "*":
            self.next()
            operand = self.parse_unary()
            return ast.Deref(operand=operand, line=tok.line, col=tok.col)
        if tok.kind == "op" and tok.text == "&":
            self.next()
            operand = self.parse_unary()
            return ast.AddrOf(operand=operand, line=tok.line, col=tok.col)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return ast.IncDec(op=tok.text, target=target, is_postfix=False,
                              line=tok.line, col=tok.col)
        if tok.kind == "kw" and tok.text == "sizeof":
            self.next()
            self.expect("op", "(")
            if self.at_type():
                base = self.parse_base_type()
                t = base
                while self.accept("op", "*"):
                    t = ty.PointerType(t)
            else:
                expr = self.parse_expr()
                t = None
                # Defer to sema via a SizeOf with no type: not supported;
                # MiniC requires sizeof(type).
                raise self.error("sizeof requires a type operand in MiniC")
            self.expect("op", ")")
            return ast.SizeOf(target_type=t, line=tok.line, col=tok.col)
        # Cast: '(' type ... ')'
        if tok.kind == "op" and tok.text == "(" and \
                self.peek(1).kind == "kw" and self.peek(1).text in _TYPE_KEYWORDS:
            self.next()
            base = self.parse_base_type()
            t = base
            while self.accept("op", "*"):
                t = ty.PointerType(t)
            self.expect("op", ")")
            operand = self.parse_unary()
            return ast.Cast(target_type=t, operand=operand,
                            line=tok.line, col=tok.col)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(base=expr, index=index,
                                 line=tok.line, col=tok.col)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.next()
                expr = ast.IncDec(op=tok.text, target=expr, is_postfix=True,
                                  line=tok.line, col=tok.col)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return ast.IntLit(value=int(tok.value), line=tok.line, col=tok.col)
        if tok.kind == "char":
            self.next()
            return ast.IntLit(value=int(tok.value), line=tok.line, col=tok.col)
        if tok.kind == "float":
            self.next()
            lit = ast.FloatLit(value=float(tok.value),
                               line=tok.line, col=tok.col)
            # An 'f'/'F' suffix makes the literal single precision.
            lit.single = tok.text[-1] in "fF"
            return lit
        if tok.kind == "ident":
            if self.peek(1).kind == "op" and self.peek(1).text == "(":
                self.next()
                self.expect("op", "(")
                args: List[ast.Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.parse_assign())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(name=tok.text, args=args,
                                line=tok.line, col=tok.col)
            self.next()
            return ast.Ident(name=tok.text, line=tok.line, col=tok.col)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text or tok.kind!r}")


def parse(source: str, filename: str = "<minic>") -> ast.Program:
    """Parse MiniC source text into an (untyped) AST."""
    tokens = tokenize(source, filename=filename)
    parser = _Parser(tokens, filename)
    return parser.parse_program()
