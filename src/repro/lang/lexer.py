"""Hand-written lexer for MiniC.

Produces a flat list of :class:`Token`.  Comments (``//`` and ``/* */``)
and whitespace are skipped; every token records line and column for
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import LexError

KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned",
    "if", "else", "while", "do", "for", "return", "break", "continue",
    "sizeof", "const",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", "(", ")", "{", "}", "[", "]",
]


@dataclass(frozen=True)
class Token:
    kind: str          # 'kw', 'ident', 'int', 'float', 'char', 'op', 'eof'
    text: str
    value: object = None   # numeric value for literals
    line: int = 0
    col: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", "'": "'", '"': '"'}


def tokenize(source: str, filename: str = "<minic>") -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on malformed input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line=line, col=col, filename=filename)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        start_line, start_col = line, col

        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(source[j]):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, start_line, start_col))
            col += j - i
            i = j
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and (source[j] in "0123456789abcdefABCDEF"):
                    j += 1
                if j == i + 2:
                    raise error("malformed hex literal")
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    if j >= n or not source[j].isdigit():
                        raise error("malformed float exponent")
                    while j < n and source[j].isdigit():
                        j += 1
                value = float(source[i:j]) if is_float else int(source[i:j])
            # Suffixes: u/U, l/L, f/F (f forces float literal).
            suffix = ""
            while j < n and source[j] in "uUlLfF":
                suffix += source[j].lower()
                j += 1
            if "f" in suffix:
                is_float = True
                value = float(value)
            text = source[i:j]
            kind = "float" if is_float else "int"
            tok = Token(kind, text, value, start_line, start_col)
            if not is_float and "u" in suffix:
                tok = Token("int", text, value, start_line, start_col)
            tokens.append(tok)
            col += j - i
            i = j
            continue

        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise error("unknown escape in char literal")
                value = ord(_ESCAPES[source[j + 1]])
                j += 2
            elif j < n and source[j] != "'":
                value = ord(source[j])
                j += 1
            else:
                raise error("empty char literal")
            if j >= n or source[j] != "'":
                raise error("unterminated char literal")
            j += 1
            tokens.append(Token("char", source[i:j], value, start_line, start_col))
            col += j - i
            i = j
            continue

        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, None, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", None, line, col))
    return tokens
