"""AST node definitions for MiniC.

Nodes are plain dataclasses.  Expression nodes gain a ``ty`` attribute
during semantic analysis; statement nodes are checked in place.  The
tree after :func:`repro.lang.sema.check` is fully typed and all implicit
conversions have been materialized as :class:`Cast` nodes, so lowering
to IR never needs conversion logic of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.types import Type


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Base expression; ``ty`` is filled in by sema."""

    def __post_init__(self) -> None:
        self.ty: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """Prefix unary: ``-``, ``!``, ``~``."""
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    """All binary operators, including ``&&``/``||`` (short-circuit)."""
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """``target op= value``; plain assignment has ``op == '='``."""
    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class IncDec(Expr):
    """``++x``, ``x++``, ``--x``, ``x--``."""
    op: str = "++"
    target: Expr = None
    is_postfix: bool = False


@dataclass
class Conditional(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``base[index]``; base is a pointer or array."""
    base: Expr = None
    index: Expr = None


@dataclass
class Deref(Expr):
    operand: Expr = None


@dataclass
class AddrOf(Expr):
    operand: Expr = None


@dataclass
class Cast(Expr):
    """Explicit or sema-inserted conversion to ``target_type``."""
    target_type: Type = None
    operand: Expr = None


@dataclass
class SizeOf(Expr):
    target_type: Type = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    name: str = ""
    var_type: Type = None
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None      # VarDecl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    param_type: Type = None


@dataclass
class FuncDef(Node):
    name: str = ""
    ret_type: Type = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None     # None for declarations (prototypes)


@dataclass
class Program(Node):
    funcs: List[FuncDef] = field(default_factory=list)

    def func(self, name: str) -> FuncDef:
        """Look up a function definition by name (raises KeyError)."""
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)


LVALUE_NODES = (Ident, Index, Deref)


def is_lvalue(expr: Expr) -> bool:
    return isinstance(expr, LVALUE_NODES)


def walk(node: Node):
    """Yield ``node`` and every descendant node, depth-first.

    Only declared dataclass fields are followed: attributes added by
    semantic analysis (``decl``, ``callee``) point back up the tree and
    would make the traversal cyclic.
    """
    import dataclasses

    yield node
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
