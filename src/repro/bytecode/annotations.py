"""Bytecode annotations — the split-compilation information channel.

The paper's central mechanism: expensive offline analyses distill their
results into compact annotations carried by the bytecode, and the JIT
applies straightforward transformations instead of re-running the
analysis.  Four kinds are modeled, mirroring §3/§4 of the paper:

* :class:`VecLoopAnnotation` — a loop was auto-vectorized offline; the
  JIT may map the vector builtins to SIMD directly (it also tells a
  scalarizing JIT how many lanes to expand).
* :class:`RegAllocAnnotation` — portable spill-priority ranking from
  the expensive offline allocation (Diouf et al. [18]); drives the
  linear-time online assignment of experiment S4a.
* :class:`HotnessAnnotation` — profile weight from previous runs (the
  "idle time between different runs" step of the program lifetime).
* :class:`HWRequirementAnnotation` — module-level hardware appetite
  ("benefits from hardware floating point or vector processing
  support"), used by the deployment manager when mapping onto
  heterogeneous cores.

Annotations are *advisory by construction*: every consumer validates
cheap local preconditions before trusting one, so a stale or hostile
annotation can degrade performance but never correctness.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bytecode.varint import (
    read_bytes, read_str, read_uint, write_bytes, write_str, write_uint,
)


@dataclass
class Annotation:
    """Base: every annotation names the function it describes."""
    function: str

    KIND = 0

    def payload(self) -> bytes:          # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def from_payload(cls, function: str, raw: bytes) -> "Annotation":
        raise NotImplementedError        # pragma: no cover - abstract


@dataclass
class VecLoopAnnotation(Annotation):
    """A vectorized loop: where it is and what it assumes."""
    vector_pc: int = 0          # pc of the vector loop head
    scalar_pc: int = 0          # pc of the scalar epilogue head
    lanes: int = 4
    elem: str = "f32"
    kind: str = "elementwise"   # or 'reduction'
    reduce_op: Optional[str] = None
    acc_type: Optional[str] = None
    noalias_count: int = 0      # pointer bases assumed disjoint

    KIND = 1

    def payload(self) -> bytes:
        out = bytearray()
        write_uint(out, self.vector_pc)
        write_uint(out, self.scalar_pc)
        write_uint(out, self.lanes)
        write_str(out, self.elem)
        write_str(out, self.kind)
        write_str(out, self.reduce_op or "")
        write_str(out, self.acc_type or "")
        write_uint(out, self.noalias_count)
        return bytes(out)

    @classmethod
    def from_payload(cls, function: str, raw: bytes) -> "VecLoopAnnotation":
        pos = 0
        vector_pc, pos = read_uint(raw, pos)
        scalar_pc, pos = read_uint(raw, pos)
        lanes, pos = read_uint(raw, pos)
        elem, pos = read_str(raw, pos)
        kind, pos = read_str(raw, pos)
        reduce_op, pos = read_str(raw, pos)
        acc_type, pos = read_str(raw, pos)
        noalias, pos = read_uint(raw, pos)
        return cls(function, vector_pc, scalar_pc, lanes, elem, kind,
                   reduce_op or None, acc_type or None, noalias)


@dataclass
class RegAllocAnnotation(Annotation):
    """Portable spill priorities: a rank per local, lower = keep in
    a register longer.  Independent of the target's register count —
    the online allocator cuts the ranking at whatever K it has (that
    portability is the point of the split: one offline analysis, any
    number of targets)."""
    priorities: List[int] = field(default_factory=list)

    KIND = 2

    def payload(self) -> bytes:
        out = bytearray()
        write_uint(out, len(self.priorities))
        for rank in self.priorities:
            write_uint(out, rank)
        return bytes(out)

    @classmethod
    def from_payload(cls, function: str, raw: bytes) -> "RegAllocAnnotation":
        pos = 0
        count, pos = read_uint(raw, pos)
        priorities = []
        for _ in range(count):
            rank, pos = read_uint(raw, pos)
            priorities.append(rank)
        return cls(function, priorities)


@dataclass
class HotnessAnnotation(Annotation):
    """Relative execution weight (profile feedback)."""
    weight: int = 0

    KIND = 3

    def payload(self) -> bytes:
        out = bytearray()
        write_uint(out, self.weight)
        return bytes(out)

    @classmethod
    def from_payload(cls, function: str, raw: bytes) -> "HotnessAnnotation":
        weight, _ = read_uint(raw, 0)
        return cls(function, weight)


@dataclass
class HWRequirementAnnotation(Annotation):
    """What hardware the function benefits from."""
    wants_simd: bool = False
    wants_fp: bool = False
    wants_fp64: bool = False
    memory_bound: bool = False

    KIND = 4

    def payload(self) -> bytes:
        bits = (self.wants_simd | (self.wants_fp << 1) |
                (self.wants_fp64 << 2) | (self.memory_bound << 3))
        return struct.pack("<B", bits)

    @classmethod
    def from_payload(cls, function: str,
                     raw: bytes) -> "HWRequirementAnnotation":
        bits = raw[0]
        return cls(function, bool(bits & 1), bool(bits & 2),
                   bool(bits & 4), bool(bits & 8))


ANNOTATION_KINDS: Dict[int, type] = {
    cls.KIND: cls
    for cls in (VecLoopAnnotation, RegAllocAnnotation, HotnessAnnotation,
                HWRequirementAnnotation)
}


def encode_annotation(out: bytearray, annotation: Annotation) -> None:
    write_uint(out, annotation.KIND)
    write_str(out, annotation.function)
    write_bytes(out, annotation.payload())


def decode_annotation(raw: bytes, pos: int) -> Tuple[Annotation, int]:
    kind, pos = read_uint(raw, pos)
    function, pos = read_str(raw, pos)
    payload, pos = read_bytes(raw, pos)
    cls = ANNOTATION_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown annotation kind {kind}")
    return cls.from_payload(function, payload), pos
