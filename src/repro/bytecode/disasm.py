"""Textual disassembly of PVI modules (debugging, docs, tests)."""

from __future__ import annotations

from typing import List

from repro.bytecode.module import BytecodeFunction, BytecodeModule
from repro.bytecode.opcodes import BCInstr


def _format_instr(pc: int, instr: BCInstr) -> str:
    mnemonic = instr.op if instr.ty is None else f"{instr.op}.{instr.ty}"
    if instr.op in ("br", "brif"):
        return f"{pc:4}: {mnemonic:<16} -> {instr.arg}"
    if instr.arg is None:
        return f"{pc:4}: {mnemonic}"
    return f"{pc:4}: {mnemonic:<16} {instr.arg}"


def disassemble_function(func: BytecodeFunction) -> str:
    params = ", ".join(func.param_types)
    ret = func.ret_type or "void"
    lines: List[str] = [f".func {func.name}({params}) -> {ret}"]
    if func.local_types:
        lines.append(f"  .locals {', '.join(func.local_types)}")
    for slot in func.frame_slots:
        lines.append(f"  .frame {slot.name}: {slot.size} align {slot.align}")
    targets = {i.arg for i in func.code if i.op in ("br", "brif")}
    for pc, instr in enumerate(func.code):
        marker = "L" if pc in targets else " "
        lines.append(f" {marker}{_format_instr(pc, instr)}")
    return "\n".join(lines)


def disassemble(module: BytecodeModule) -> str:
    parts = [f".module {module.name}"]
    for func in module:
        parts.append(disassemble_function(func))
    if module.annotations:
        parts.append(".annotations")
        for annotation in module.annotations:
            parts.append(f"  {annotation!r}")
    return "\n\n".join(parts)
