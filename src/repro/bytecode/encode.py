"""Binary serialization of PVI modules.

Layout (all integers LEB128 unless noted)::

    magic 'PVI1' | version u16 | module name
    function count
      per function: name | params | ret | locals | frame slots | code
    annotation count
      per annotation: kind | function | payload bytes

Instruction encoding: opcode byte, type-tag byte (0xFF = none), then an
opcode-specific argument (varint, IEEE float, string, or nothing).
The format is self-contained — ``decode_module(encode_module(m))``
round-trips exactly, which the property tests exercise.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.bytecode.annotations import decode_annotation, encode_annotation
from repro.bytecode.module import (
    BytecodeFunction, BytecodeModule, FrameSlotInfo,
)
from repro.bytecode.opcodes import ALL_OPS, BCInstr, OP_CODES
from repro.bytecode.varint import (
    read_sint, read_str, read_uint, write_sint, write_str, write_uint,
)

MAGIC = b"PVI1"
VERSION = 1

_TAG_BYTES = {}
_BYTE_TAGS = {}
for _i, _tag in enumerate(
        ("i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64",
         "f32", "f64",
         "v128:i8", "v128:u8", "v128:i16", "v128:u16",
         "v128:i32", "v128:u32", "v128:i64", "v128:u64",
         "v128:f32", "v128:f64")):
    _TAG_BYTES[_tag] = _i
    _BYTE_TAGS[_i] = _tag
_NO_TAG = 0xFF

#: opcodes that never carry a type tag (saves a byte each)
_UNTYPED_OPS = {"ldarg", "ldloc", "stloc", "frame", "br", "brif",
                "call", "ret", "pop"}


def encode_module(module: BytecodeModule) -> bytes:
    out = bytearray()
    out.extend(MAGIC)
    out.extend(struct.pack("<H", VERSION))
    write_str(out, module.name)
    write_uint(out, len(module.functions))
    for func in module:
        _encode_function(out, func)
    write_uint(out, len(module.annotations))
    for annotation in module.annotations:
        encode_annotation(out, annotation)
    return bytes(out)


def encoded_code_size(func: BytecodeFunction) -> int:
    """Bytes of the encoded instruction stream alone (no headers) —
    the like-for-like quantity to compare with native code bytes in
    the code-size experiment."""
    out = bytearray()
    for instr in func.code:
        _encode_instr(out, instr)
    return len(out)


def decode_module(raw: bytes) -> BytecodeModule:
    if raw[:4] != MAGIC:
        raise ValueError("not a PVI module (bad magic)")
    version = struct.unpack_from("<H", raw, 4)[0]
    if version != VERSION:
        raise ValueError(f"unsupported PVI version {version}")
    pos = 6
    name, pos = read_str(raw, pos)
    module = BytecodeModule(name)
    count, pos = read_uint(raw, pos)
    for _ in range(count):
        func, pos = _decode_function(raw, pos)
        module.add(func)
    count, pos = read_uint(raw, pos)
    for _ in range(count):
        annotation, pos = decode_annotation(raw, pos)
        module.annotations.append(annotation)
    return module


# ---------------------------------------------------------------------------
# functions
# ---------------------------------------------------------------------------

def _encode_function(out: bytearray, func: BytecodeFunction) -> None:
    write_str(out, func.name)
    write_uint(out, len(func.param_types))
    for tag in func.param_types:
        out.append(_TAG_BYTES[tag])
    out.append(_NO_TAG if func.ret_type is None
               else _TAG_BYTES[func.ret_type])
    write_uint(out, len(func.local_types))
    for tag in func.local_types:
        out.append(_TAG_BYTES[tag])
    write_uint(out, len(func.frame_slots))
    for slot in func.frame_slots:
        write_str(out, slot.name)
        write_uint(out, slot.size)
        write_uint(out, slot.align)
    write_uint(out, len(func.code))
    for instr in func.code:
        _encode_instr(out, instr)


def _decode_function(raw: bytes, pos: int) -> Tuple[BytecodeFunction, int]:
    name, pos = read_str(raw, pos)
    nparams, pos = read_uint(raw, pos)
    params = []
    for _ in range(nparams):
        params.append(_BYTE_TAGS[raw[pos]])
        pos += 1
    ret_byte = raw[pos]
    pos += 1
    ret = None if ret_byte == _NO_TAG else _BYTE_TAGS[ret_byte]
    nlocals, pos = read_uint(raw, pos)
    locals_ = []
    for _ in range(nlocals):
        locals_.append(_BYTE_TAGS[raw[pos]])
        pos += 1
    nslots, pos = read_uint(raw, pos)
    slots: List[FrameSlotInfo] = []
    for _ in range(nslots):
        slot_name, pos = read_str(raw, pos)
        size, pos = read_uint(raw, pos)
        align, pos = read_uint(raw, pos)
        slots.append(FrameSlotInfo(slot_name, size, align))
    ncode, pos = read_uint(raw, pos)
    code = []
    for _ in range(ncode):
        instr, pos = _decode_instr(raw, pos)
        code.append(instr)
    return BytecodeFunction(name, params, ret, locals_, slots, code), pos


# ---------------------------------------------------------------------------
# instructions
# ---------------------------------------------------------------------------

def _encode_instr(out: bytearray, instr: BCInstr) -> None:
    out.append(OP_CODES[instr.op])
    if instr.op not in _UNTYPED_OPS:
        out.append(_NO_TAG if instr.ty is None else _TAG_BYTES[instr.ty])
    op = instr.op
    if op == "const":
        if instr.ty in ("f32", "f64"):
            out.extend(struct.pack("<d", float(instr.arg)))
        else:
            write_sint(out, int(instr.arg))
    elif op in ("ldarg", "ldloc", "stloc", "frame", "br", "brif"):
        write_uint(out, int(instr.arg))
    elif op == "cmp":
        write_str(out, instr.arg)
    elif op == "cast":
        write_str(out, instr.arg)
    elif op == "call":
        write_str(out, instr.arg)
    elif op == "vec.reduce":
        reduce_op, acc_tag = instr.arg
        write_str(out, reduce_op)
        write_str(out, acc_tag)
    # all other opcodes carry no argument


def _decode_instr(raw: bytes, pos: int) -> Tuple[BCInstr, int]:
    op = ALL_OPS[raw[pos]]
    pos += 1
    type_tag = None
    if op not in _UNTYPED_OPS:
        tag_byte = raw[pos]
        pos += 1
        type_tag = None if tag_byte == _NO_TAG else _BYTE_TAGS[tag_byte]
    arg = None
    if op == "const":
        if type_tag in ("f32", "f64"):
            arg = struct.unpack_from("<d", raw, pos)[0]
            pos += 8
        else:
            arg, pos = read_sint(raw, pos)
    elif op in ("ldarg", "ldloc", "stloc", "frame", "br", "brif"):
        arg, pos = read_uint(raw, pos)
    elif op in ("cmp", "cast", "call"):
        arg, pos = read_str(raw, pos)
    elif op == "vec.reduce":
        reduce_op, pos = read_str(raw, pos)
        acc_tag, pos = read_str(raw, pos)
        arg = (reduce_op, acc_tag)
    return BCInstr(op, type_tag, arg), pos
