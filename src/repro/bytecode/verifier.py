"""PVI bytecode verifier.

Abstract interpretation over stack *types*: every reachable pc gets a
stack state; operations check their operand types.  This is the
load-time safety net the paper counts among the offline/online
division of labour ("verification and code compaction are typically
assigned to offline compilation" — here it runs at load time, before
the interpreter or any JIT touches the code).

Merge states form a proper lattice: each stack slot is a *set* of
possible tags, and a control-flow merge joins slot-wise by union (the
widening for conflicting numeric tags).  A merge is rejected outright
only when genuinely incompatible — differing stack depths, which no
join can repair.  Conflicting tags instead flow onward as the union
and fail only at an operation whose operand set they don't fit, so a
diamond producing ``i64`` on one arm and ``u64`` on the other may
still feed an address pop (both are address tags) — the old
identical-states rule spuriously rejected that.  The join is monotone
over a finite lattice (slot sets only grow, bounded by the tag
universe), so the worklist terminates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.bytecode.module import (
    BytecodeFunction, BytecodeModule, is_vector_local, vector_elem_tag,
)
from repro.bytecode.opcodes import (
    BCInstr, BIN_OPS, CMP_PREDS, TYPE_TAGS, UN_OPS,
)

_INT_TAGS = {"i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64"}
_FLOAT_TAGS = {"f32", "f64"}
_ADDR_TAGS = {"i64", "u64"}


class BytecodeVerifyError(Exception):
    pass


def verify_module(module: BytecodeModule) -> None:
    for func in module:
        _verify_function(module, func)


#: one abstract stack slot: the set of tags the value may carry
_Slot = FrozenSet[str]


def _verify_function(module: BytecodeModule,
                     func: BytecodeFunction) -> None:
    def fail(pc: int, message: str) -> None:
        raise BytecodeVerifyError(f"{func.name}@{pc}: {message}")

    code = func.code
    if not code:
        raise BytecodeVerifyError(f"{func.name}: empty body")

    states: Dict[int, Tuple[_Slot, ...]] = {0: ()}
    worklist: List[int] = [0]
    seen_ret = False

    while worklist:
        pc = worklist.pop()
        stack = list(states[pc])
        while True:
            if pc >= len(code):
                fail(pc, "control falls off the end of the function")
            instr = code[pc]
            next_pcs, stack, is_ret = _step(module, func, pc, instr,
                                            stack, fail)
            seen_ret = seen_ret or is_ret
            if is_ret:
                break
            if len(next_pcs) == 1 and next_pcs[0] == pc + 1:
                pc += 1
                if pc in states:
                    if _join(states, pc, tuple(stack), func):
                        worklist.append(pc)
                    break
                continue
            for target in next_pcs:
                if not 0 <= target < len(code):
                    fail(pc, f"branch target {target} out of range")
                if target in states:
                    if _join(states, target, tuple(stack), func):
                        worklist.append(target)
                else:
                    states[target] = tuple(stack)
                    worklist.append(target)
            break
    if not seen_ret:
        raise BytecodeVerifyError(f"{func.name}: no reachable ret")


def _join(states: Dict[int, Tuple[_Slot, ...]], pc: int,
          new: Tuple[_Slot, ...], func: BytecodeFunction) -> bool:
    """Slot-wise union of ``new`` into ``states[pc]``; True when the
    state grew (the verifier re-queues the target).  Depth mismatch is
    the one unjoinable merge — the stack discipline itself differs."""
    old = states[pc]
    if len(old) != len(new):
        raise BytecodeVerifyError(
            f"{func.name}@{pc}: inconsistent stack at merge "
            f"(depth {len(old)} vs {len(new)})")
    joined = tuple(o | n for o, n in zip(old, new))
    if joined != old:
        states[pc] = joined
        return True
    return False


def _step(module, func, pc, instr: BCInstr, stack: List[_Slot], fail):
    op = instr.op

    def pop(expected: Optional[set] = None,
            what: str = "operand") -> FrozenSet[str]:
        if not stack:
            fail(pc, f"stack underflow popping {what}")
        slot = stack.pop()
        if expected is not None and not slot <= expected:
            fail(pc, f"{what} has type {sorted(slot)}, expected one of "
                     f"{sorted(expected)}")
        return slot

    def push(tag: str) -> None:
        stack.append(frozenset((tag,)))

    if op == "const":
        if instr.ty not in TYPE_TAGS:
            fail(pc, f"bad const type {instr.ty}")
        push(instr.ty)
    elif op == "ldarg":
        index = instr.arg
        if not isinstance(index, int) or index >= len(func.param_types):
            fail(pc, f"ldarg index {index} out of range")
        push(func.param_types[index])
    elif op == "ldloc":
        index = instr.arg
        if not isinstance(index, int) or index >= len(func.local_types):
            fail(pc, f"ldloc index {index} out of range")
        push(func.local_types[index])
    elif op == "stloc":
        index = instr.arg
        if not isinstance(index, int) or index >= len(func.local_types):
            fail(pc, f"stloc index {index} out of range")
        pop({func.local_types[index]}, "stloc value")
    elif op == "frame":
        if not isinstance(instr.arg, int) or \
                instr.arg >= len(func.frame_slots):
            fail(pc, f"frame slot {instr.arg} out of range")
        push("u64")
    elif op in BIN_OPS:
        tag = instr.ty
        if tag not in TYPE_TAGS:
            fail(pc, f"bad operand type {tag}")
        if op in ("and", "or", "xor", "shl", "shr", "rem") and \
                tag in _FLOAT_TAGS:
            fail(pc, f"{op} on float type {tag}")
        pop({tag}, "rhs")
        pop({tag}, "lhs")
        push(tag)
    elif op in UN_OPS:
        tag = instr.ty
        if op == "not" and tag in _FLOAT_TAGS:
            fail(pc, "bitwise not on float")
        pop({tag}, "operand")
        push(tag)
    elif op == "cmp":
        if instr.arg not in CMP_PREDS:
            fail(pc, f"bad predicate {instr.arg}")
        tag = instr.ty
        pop({tag}, "rhs")
        pop({tag}, "lhs")
        push("i32")
    elif op == "cast":
        to_tag = instr.ty
        from_tag = instr.arg
        if to_tag not in TYPE_TAGS or from_tag not in TYPE_TAGS:
            fail(pc, f"bad cast {from_tag} -> {to_tag}")
        pop({from_tag}, "cast operand")
        push(to_tag)
    elif op == "select":
        tag = instr.ty
        pop({tag}, "else value")
        pop({tag}, "then value")
        pop(_INT_TAGS, "condition")
        push(tag)
    elif op == "load":
        pop(_ADDR_TAGS, "address")
        push(instr.ty)
    elif op == "store":
        pop({instr.ty}, "store value")
        pop(_ADDR_TAGS, "address")
    elif op == "call":
        callee = module.functions.get(instr.arg)
        if callee is None:
            fail(pc, f"call to unknown function {instr.arg!r}")
        for expected in reversed(callee.param_types):
            pop({expected}, "argument")
        if callee.ret_type is not None:
            push(callee.ret_type)
    elif op == "pop":
        pop(what="pop")
    elif op == "ret":
        if func.ret_type is not None:
            pop({func.ret_type}, "return value")
        if stack:
            fail(pc, f"stack not empty at ret: {stack}")
        return [], stack, True
    elif op == "br":
        return [instr.arg], stack, False
    elif op == "brif":
        pop(_INT_TAGS, "branch condition")
        return [instr.arg, pc + 1], stack, False
    elif op == "vec.load":
        pop(_ADDR_TAGS, "address")
        push(f"v128:{instr.ty}")
    elif op == "vec.store":
        pop({f"v128:{instr.ty}"}, "vector value")
        pop(_ADDR_TAGS, "address")
    elif op.startswith("vec.") and op[4:] in BIN_OPS:
        tag = f"v128:{instr.ty}"
        if op[4:] in ("and", "or", "xor", "shl", "shr", "rem") and \
                instr.ty in _FLOAT_TAGS:
            fail(pc, f"{op} on float lanes")
        pop({tag}, "rhs")
        pop({tag}, "lhs")
        push(tag)
    elif op == "vec.splat":
        pop({instr.ty}, "scalar")
        push(f"v128:{instr.ty}")
    elif op == "vec.reduce":
        reduce_op, acc_tag = instr.arg
        if reduce_op not in ("add", "max", "min"):
            fail(pc, f"bad reduce op {reduce_op}")
        if acc_tag not in TYPE_TAGS:
            fail(pc, f"bad accumulator tag {acc_tag}")
        if (instr.ty in _INT_TAGS) != (acc_tag in _INT_TAGS):
            fail(pc, "reduce accumulator class mismatch")
        pop({f"v128:{instr.ty}"}, "vector")
        push(acc_tag)
    else:
        fail(pc, f"unknown opcode {op!r}")
    return [pc + 1], stack, False
