"""PVI — the Portable Virtual ISA.

A CLI-flavored, processor-independent stack bytecode with:

* typed scalar operations over ``i8..u64, f32, f64``;
* portable 128-bit vector builtins (``vec.*``) in the spirit of the
  paper's vectorized bytecode [Rohou, GROW'10];
* a side table of **annotations** — the split-compilation channel
  through which the offline compiler ships analysis results
  (vectorized-loop descriptors, register-allocation hints, hotness,
  hardware requirements) to the online JIT;
* a compact binary encoding (experiment S2a measures it), a structural
  + stack-type verifier, and a disassembler.
"""

from repro.bytecode.opcodes import BCInstr, TYPE_TAGS, tag_of, type_of
from repro.bytecode.module import (
    BytecodeFunction, BytecodeModule, FrameSlotInfo,
)
from repro.bytecode.annotations import (
    Annotation, HotnessAnnotation, HWRequirementAnnotation,
    RegAllocAnnotation, VecLoopAnnotation,
)
from repro.bytecode.emit import emit_module
from repro.bytecode.encode import decode_module, encode_module
from repro.bytecode.verifier import BytecodeVerifyError, verify_module
from repro.bytecode.disasm import disassemble

__all__ = [
    "BCInstr", "TYPE_TAGS", "tag_of", "type_of",
    "BytecodeFunction", "BytecodeModule", "FrameSlotInfo",
    "Annotation", "VecLoopAnnotation", "RegAllocAnnotation",
    "HotnessAnnotation", "HWRequirementAnnotation",
    "emit_module", "encode_module", "decode_module",
    "verify_module", "BytecodeVerifyError", "disassemble",
]
