"""Lower mid-level IR to PVI stack bytecode.

Every virtual register becomes a typed local; each IR instruction
expands to ``push operands / op / store destination``.  This is the
shape a CLI back-end produces and is exactly invertible: the JIT's
front end rebuilds a register LIR by abstract interpretation of the
stack (see :mod:`repro.jit.frontend`).

Block labels become instruction indices; the emitter returns both the
module and, per function, the label->pc map the offline driver uses to
attach :class:`~repro.bytecode.annotations.VecLoopAnnotation` at the
right program counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function, Module
from repro.ir.values import Const, VecType, Value, VReg
from repro.bytecode.module import (
    BytecodeFunction, BytecodeModule, FrameSlotInfo, vector_local,
)
from repro.bytecode.opcodes import BCInstr, tag_of
from repro.bytecode.peep import compress_stack_traffic

_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "min", "max"}


def emit_module(module: Module) \
        -> Tuple[BytecodeModule, Dict[str, Dict[str, int]]]:
    """Emit ``module``; returns (bytecode, {func: {label: pc}})."""
    bc_module = BytecodeModule(module.name)
    label_maps: Dict[str, Dict[str, int]] = {}
    for func in module:
        bc_func, labels = _emit_function(func)
        bc_module.add(bc_func)
        label_maps[func.name] = labels
    return bc_module, label_maps


def _local_type(reg: VReg) -> str:
    if isinstance(reg.ty, VecType):
        return vector_local(tag_of(reg.ty.elem))
    return tag_of(reg.ty)


class _Emitter:
    def __init__(self, func: Function):
        self.func = func
        self.code: List[BCInstr] = []
        self.local_types: List[str] = []
        self.local_of: Dict[int, int] = {}      # reg id -> local index
        self.arg_of: Dict[int, int] = {}        # reg id -> arg index
        self.slot_index: Dict[str, int] = {}
        self.fixups: List[Tuple[int, str]] = [] # (pc, target label)
        self.label_pc: Dict[str, int] = {}

    def run(self) -> Tuple[BytecodeFunction, Dict[str, int]]:
        func = self.func
        mutated = set()
        for instr in func.instructions():
            for reg in instr.defs():
                mutated.add(reg.id)
        for index, param in enumerate(func.params):
            if param.id in mutated:
                # A written parameter lives in a local, initialized by a
                # prologue copy, so every read sees the current value.
                self.emit("ldarg", None, index)
                self.emit("stloc", None, self.local(param))
            else:
                self.arg_of[param.id] = index

        frame_slots = []
        for index, slot in enumerate(func.frame_slots.values()):
            self.slot_index[slot.name] = index
            frame_slots.append(FrameSlotInfo(slot.name, slot.size,
                                             slot.align))

        for block in func.blocks:
            self.label_pc[block.label] = len(self.code)
            for instr in block.instrs:
                self._emit_instr(instr)

        for pc, label in self.fixups:
            self.code[pc].arg = self.label_pc[label]

        ret_type = None if isinstance(func.ret_ty, ty.VoidType) \
            else tag_of(func.ret_ty)
        bc = BytecodeFunction(
            name=func.name,
            param_types=[_local_type(p) for p in func.params],
            ret_type=ret_type,
            local_types=self.local_types,
            frame_slots=frame_slots,
            code=self.code,
        )
        # Stack scheduling: drop adjacent single-use store/load pairs
        # (compactness + less JIT decode work), remapping labels.
        remap = compress_stack_traffic(bc)
        self.label_pc = {label: remap[pc]
                         for label, pc in self.label_pc.items()}
        # Side table for the offline analyses that run right after
        # emission (not serialized; annotations carry the results).
        bc.local_map = dict(self.local_of)
        return bc, self.label_pc

    # -- helpers -------------------------------------------------------------

    def emit(self, op: str, type_tag: Optional[str] = None,
             arg: object = None) -> int:
        self.code.append(BCInstr(op, type_tag, arg))
        return len(self.code) - 1

    def local(self, reg: VReg) -> int:
        if reg.id not in self.local_of:
            self.local_of[reg.id] = len(self.local_types)
            self.local_types.append(_local_type(reg))
        return self.local_of[reg.id]

    def push(self, value: Value) -> None:
        if isinstance(value, Const):
            self.emit("const", tag_of(value.ty), value.value)
        elif value.id in self.arg_of:
            self.emit("ldarg", None, self.arg_of[value.id])
        else:
            self.emit("ldloc", None, self.local(value))

    def store_dst(self, reg: VReg) -> None:
        assert reg.id not in self.arg_of, "write to unaliased parameter"
        self.emit("stloc", None, self.local(reg))

    def branch_to(self, op: str, label: str) -> None:
        pc = self.emit(op, None, -1)
        self.fixups.append((pc, label))

    # -- instruction dispatch ----------------------------------------------------

    def _last_stored_local(self):
        if self.code and self.code[-1].op == "stloc":
            return self.code[-1].arg
        return None

    def _emit_instr(self, instr: ins.Instr) -> None:
        if isinstance(instr, ins.BinOp):
            a, b = instr.a, instr.b
            # Put the just-computed value first so the stack scheduler
            # can elide its store/load pair.
            if instr.op in _COMMUTATIVE and isinstance(b, VReg) and \
                    self.local_of.get(b.id) == self._last_stored_local() \
                    and self._last_stored_local() is not None:
                a, b = b, a
            self.push(a)
            self.push(b)
            self.emit(instr.op, tag_of(instr.ty))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.UnOp):
            self.push(instr.a)
            self.emit(instr.op, tag_of(instr.ty))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Cmp):
            self.push(instr.a)
            self.push(instr.b)
            self.emit("cmp", tag_of(instr.ty), instr.pred)
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Cast):
            self.push(instr.src)
            self.emit("cast", tag_of(instr.to_ty), tag_of(instr.from_ty))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Move):
            self.push(instr.src)
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Select):
            self.push(instr.cond)
            self.push(instr.a)
            self.push(instr.b)
            self.emit("select", tag_of(instr.ty))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Load):
            self.push(instr.addr)
            self.emit("load", tag_of(instr.ty))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Store):
            self.push(instr.addr)
            self.push(instr.value)
            self.emit("store", tag_of(instr.ty))
        elif isinstance(instr, ins.FrameAddr):
            self.emit("frame", None, self.slot_index[instr.slot])
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.Call):
            for arg in instr.args:
                self.push(arg)
            self.emit("call", None, instr.callee)
            if instr.dst is not None:
                self.store_dst(instr.dst)
            elif not isinstance(instr.ret_ty, ty.VoidType):
                self.emit("pop")
        elif isinstance(instr, ins.Ret):
            if instr.value is not None:
                self.push(instr.value)
            self.emit("ret")
        elif isinstance(instr, ins.Jump):
            self.branch_to("br", instr.target)
        elif isinstance(instr, ins.Branch):
            self.push(instr.cond)
            self.branch_to("brif", instr.then_target)
            self.branch_to("br", instr.else_target)
        elif isinstance(instr, ins.VLoad):
            self.push(instr.addr)
            self.emit("vec.load", tag_of(instr.vty.elem))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.VStore):
            self.push(instr.addr)
            self.push(instr.value)
            self.emit("vec.store", tag_of(instr.vty.elem))
        elif isinstance(instr, ins.VBinOp):
            a, b = instr.a, instr.b
            if instr.op in _COMMUTATIVE and isinstance(b, VReg) and \
                    self.local_of.get(b.id) == self._last_stored_local() \
                    and self._last_stored_local() is not None:
                a, b = b, a
            self.push(a)
            self.push(b)
            self.emit(f"vec.{instr.op}", tag_of(instr.vty.elem))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.VSplat):
            self.push(instr.scalar)
            self.emit("vec.splat", tag_of(instr.vty.elem))
            self.store_dst(instr.dst)
        elif isinstance(instr, ins.VReduce):
            self.push(instr.src)
            self.emit("vec.reduce", tag_of(instr.vty.elem),
                      (instr.op, tag_of(instr.acc_ty)))
            self.store_dst(instr.dst)
        else:
            raise ValueError(
                f"cannot emit {type(instr).__name__} to bytecode")


def _emit_function(func: Function) \
        -> Tuple[BytecodeFunction, Dict[str, int]]:
    return _Emitter(func).run()
