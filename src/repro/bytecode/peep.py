"""Bytecode-level stack scheduling.

The naive IR-to-stack translation stores every temporary to a local and
immediately reloads it.  When a local has exactly one store and one
load and they are adjacent, the value can simply stay on the operand
stack — the canonical stack-scheduling peephole every CLI/JVM compiler
performs.  It makes the bytecode markedly more compact (experiment S2a)
and saves the JIT front end decoding work.

Branch targets are instruction indices, so removal rebuilds the code
with an index remap; a removed pair is a stack no-op, so a branch into
the middle of one retargets to the next surviving instruction.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.bytecode.module import BytecodeFunction
from repro.bytecode.opcodes import BCInstr


def compress_stack_traffic(func: BytecodeFunction) -> Dict[int, int]:
    """Remove redundant store/load pairs in place.

    Returns the old-pc -> new-pc remap (callers fix their own label
    tables with it).  Runs to a fixpoint: removing one pair can make
    another adjacent.
    """
    total_remap = {pc: pc for pc in range(len(func.code) + 1)}
    while True:
        remap = _one_round(func)
        if remap is None:
            return total_remap
        total_remap = {old: remap[mid]
                       for old, mid in total_remap.items()}


def _one_round(func: BytecodeFunction):
    code = func.code
    targets: Set[int] = {i.arg for i in code if i.op in ("br", "brif")}
    loads: Dict[int, int] = {}
    stores: Dict[int, int] = {}
    for instr in code:
        if instr.op == "ldloc":
            loads[instr.arg] = loads.get(instr.arg, 0) + 1
        elif instr.op == "stloc":
            stores[instr.arg] = stores.get(instr.arg, 0) + 1

    dead: Set[int] = set()
    index = 0
    while index + 1 < len(code):
        a, b = code[index], code[index + 1]
        if (a.op == "stloc" and b.op == "ldloc" and a.arg == b.arg and
                stores.get(a.arg) == 1 and loads.get(a.arg) == 1 and
                index + 1 not in targets and index not in dead):
            dead.add(index)
            dead.add(index + 1)
            index += 2
        else:
            index += 1
    if not dead:
        return None

    remap: Dict[int, int] = {}
    new_code: List[BCInstr] = []
    for pc, instr in enumerate(code):
        remap[pc] = len(new_code)
        if pc not in dead:
            new_code.append(instr)
    remap[len(code)] = len(new_code)
    for instr in new_code:
        if instr.op in ("br", "brif"):
            instr.arg = remap[instr.arg]
    func.code = new_code
    return remap
