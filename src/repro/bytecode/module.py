"""Bytecode module and function containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bytecode.opcodes import BCInstr

#: Local slot type descriptor: a scalar tag ("i32"), or "v128:<elem>"
#: for vector locals.
LocalType = str


def vector_local(elem_tag: str) -> str:
    return f"v128:{elem_tag}"


def is_vector_local(local_ty: LocalType) -> bool:
    return local_ty.startswith("v128:")


def vector_elem_tag(local_ty: LocalType) -> str:
    assert is_vector_local(local_ty)
    return local_ty.split(":", 1)[1]


@dataclass
class FrameSlotInfo:
    name: str
    size: int
    align: int


@dataclass
class BytecodeFunction:
    name: str
    param_types: List[LocalType]
    ret_type: Optional[LocalType]          # None = void
    local_types: List[LocalType] = field(default_factory=list)
    frame_slots: List[FrameSlotInfo] = field(default_factory=list)
    code: List[BCInstr] = field(default_factory=list)

    @property
    def num_params(self) -> int:
        return len(self.param_types)

    def frame_size(self) -> int:
        """Total laid-out frame size (16-byte aligned)."""
        offset = 0
        for slot in self.frame_slots:
            offset = (offset + slot.align - 1) // slot.align * slot.align
            offset += slot.size
        return (offset + 15) // 16 * 16

    def frame_offsets(self) -> List[int]:
        offsets = []
        offset = 0
        for slot in self.frame_slots:
            offset = (offset + slot.align - 1) // slot.align * slot.align
            offsets.append(offset)
            offset += slot.size
        return offsets

    # -- predecode cache hook -------------------------------------------------
    #
    # The fast execution engine (repro.vm.threaded) translates ``code``
    # into handler closures once and parks the result here, keyed by a
    # cheap structural token so in-place edits (peephole rewrites,
    # hand-mutation in tests) invalidate it by content.  The cache
    # rides on the function object, so every VM over the same module —
    # including ``strip_annotations`` copies, which share function
    # objects — reuses one predecode.
    #
    # A *frozen* module's predecode additionally binds call targets
    # (the callee function objects) directly into the handlers, so the
    # entry also records which module it was resolved against; a VM
    # over a different module misses and rebuilds instead of running
    # another module's callees.

    #: bumped whenever the predecode payload shape changes (e.g. the
    #: OSR entry-point set added alongside the handler table, or the
    #: dataflow-plane facts the tier-2 translation is generated
    #: under), so externally persisted tokens from older schemas never
    #: validate.  The analysis plane's facts cache keys through this
    #: token too (``[FACTS_SCHEMA] + content_token()``).
    PREDECODE_SCHEMA = 3

    def content_token(self) -> List:
        """Structural identity of everything the predecode bakes in:
        the code, plus the signature/frame/local layout it derives
        defaults and offsets from, and the payload schema version.
        Any in-place edit changes it."""
        return [self.PREDECODE_SCHEMA,
                tuple(self.param_types), self.ret_type,
                tuple(self.local_types),
                [(s.name, s.size, s.align) for s in self.frame_slots],
                [(i.op, i.ty, i.arg) for i in self.code]]

    def cached_predecode(self, token, module=None):
        cached = getattr(self, "_predecode_cache", None)
        if cached is not None and cached[0] == token and \
                cached[1] is module:
            return cached[2]
        return None

    def store_predecode(self, token, payload, module=None) -> None:
        self._predecode_cache = (token, module, payload)


@dataclass
class BytecodeModule:
    name: str = "module"
    functions: Dict[str, BytecodeFunction] = field(default_factory=dict)
    annotations: List = field(default_factory=list)

    #: frozen = the function table and code will not change in place;
    #: the fast engine may resolve call targets once at predecode time
    #: (per-call inline caching) instead of per executed call.
    _frozen: bool = field(default=False, repr=False, compare=False)

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "BytecodeModule":
        """Declare the module immutable from here on.  The offline
        compiler freezes its outputs; anything that still wants to
        edit code in place (tests, tools) just never freezes."""
        self._frozen = True
        return self

    def add(self, func: BytecodeFunction) -> BytecodeFunction:
        if self._frozen:
            raise ValueError(f"module {self.name!r} is frozen")
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def __getitem__(self, name: str) -> BytecodeFunction:
        return self.functions[name]

    def __iter__(self):
        return iter(self.functions.values())

    def annotations_for(self, func_name: str, kind=None) -> List:
        found = [a for a in self.annotations if a.function == func_name]
        if kind is not None:
            found = [a for a in found if isinstance(a, kind)]
        return found

    def max_hotness(self, func_name: str) -> Optional[int]:
        """The largest hotness weight annotated for ``func_name``, or
        ``None`` when the profile never mentions it.  ``None`` and
        ``0`` differ deliberately: an unprofiled function carries no
        evidence either way, a zero-weight one is known cold — the
        tier-2 promotion gate treats only the latter as a verdict."""
        from repro.bytecode.annotations import HotnessAnnotation
        weights = [a.weight for a in self.annotations_for(
            func_name, HotnessAnnotation)]
        return max(weights) if weights else None

    def strip_annotations(self) -> "BytecodeModule":
        """A copy without annotations (the 'plain deferred' deployment).

        The copy shares function objects, so it inherits the frozen
        promise (nobody may edit those functions in place either way).
        """
        out = BytecodeModule(self.name, dict(self.functions), [])
        out._frozen = self._frozen
        return out
