"""LEB128 variable-length integers and small helpers for the binary
format.  Compactness is part of the reproduction (experiment S2a —
"CLI makes a compact program representation" [15])."""

from __future__ import annotations

from typing import Tuple


def write_uint(out: bytearray, value: int) -> None:
    assert value >= 0
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uint(raw: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = raw[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def write_sint(out: bytearray, value: int) -> None:
    """Width-independent zig-zag signed LEB128.

    The classic C formulation ``(v << 1) ^ (v >> 63)`` bakes a word
    width into the sign-replicating shift; with Python's
    arbitrary-precision integers any fixed width silently corrupts
    values of magnitude >= 2**width (a hard-coded ``>> 127`` broke at
    the 128-bit boundary).  ``~(v << 1)`` is the same interleaving —
    ``-(v << 1) - 1``, mapping -1, -2, ... to 1, 3, ... — for *any*
    magnitude, so no width assumption is needed at all.
    """
    write_uint(out, (value << 1) if value >= 0 else ~(value << 1))


def read_sint(raw: bytes, pos: int) -> Tuple[int, int]:
    encoded, pos = read_uint(raw, pos)
    return (encoded >> 1) ^ -(encoded & 1), pos


def write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    write_uint(out, len(data))
    out.extend(data)


def read_str(raw: bytes, pos: int) -> Tuple[str, int]:
    length, pos = read_uint(raw, pos)
    return raw[pos:pos + length].decode("utf-8"), pos + length


def write_bytes(out: bytearray, data: bytes) -> None:
    write_uint(out, len(data))
    out.extend(data)


def read_bytes(raw: bytes, pos: int) -> Tuple[bytes, int]:
    length, pos = read_uint(raw, pos)
    return raw[pos:pos + length], pos + length
