"""PVI opcodes and type tags.

An instruction is ``(op, ty, arg)``:

=============== ======================= ===================================
op              ty                      arg / stack behaviour
=============== ======================= ===================================
``const``       value type              push constant ``arg``
``ldarg``       —                       push argument ``arg``
``ldloc``       —                       push local ``arg``
``stloc``       —                       pop into local ``arg``
``frame``       —                       push address of frame slot ``arg``
``add`` ...     operand type            pop b, a; push ``a op b``
``neg``/``not`` operand type            pop a; push
``cmp``         operand type            arg = predicate; pop b, a; push i32
``cast``        destination type        arg = source tag; pop; push
``select``      operand type            pop b, a, cond; push
``load``        memory type             pop addr; push value
``store``       memory type             pop value, addr
``call``        —                       arg = function name; pops args
``ret``         —                       pop return value (non-void)
``br``          —                       jump to pc ``arg``
``brif``        —                       pop cond; jump if non-zero
``vec.load``    element type            pop addr; push v128
``vec.store``   element type            pop value, addr
``vec.add`` ... element type            pop b, a; push v128
``vec.splat``   element type            pop scalar; push v128
``vec.reduce``  element type            arg = (op, acc tag); pop v; push
=============== ======================= ===================================

Branch targets are absolute instruction indices within the function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang import types as ty

#: type tag <-> language type
TYPE_TAGS = {
    "i8": ty.I8, "u8": ty.U8, "i16": ty.I16, "u16": ty.U16,
    "i32": ty.I32, "u32": ty.U32, "i64": ty.I64, "u64": ty.U64,
    "f32": ty.F32, "f64": ty.F64,
}
_REVERSE_TAGS = {v: k for k, v in TYPE_TAGS.items()}

#: scalar binary opcodes (shared with the IR)
BIN_OPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
           "shl", "shr", "min", "max")
UN_OPS = ("neg", "not")
CMP_PREDS = ("eq", "ne", "lt", "le", "gt", "ge")
VEC_BIN_OPS = tuple(f"vec.{op}" for op in BIN_OPS)
VREDUCE_OPS = ("add", "max", "min")

#: every opcode, in canonical order (binary encoding uses the index)
ALL_OPS = (
    ("const", "ldarg", "ldloc", "stloc", "frame") + BIN_OPS + UN_OPS +
    ("cmp", "cast", "select", "load", "store", "call", "ret",
     "br", "brif", "pop") + VEC_BIN_OPS +
    ("vec.load", "vec.store", "vec.splat", "vec.reduce")
)
OP_CODES = {op: index for index, op in enumerate(ALL_OPS)}


def tag_of(lang_ty: ty.Type) -> str:
    """Type tag of a scalar language type."""
    return _REVERSE_TAGS[lang_ty]


def type_of(tag: str) -> ty.Type:
    """Language type of a scalar tag."""
    return TYPE_TAGS[tag]


@dataclass
class BCInstr:
    """One bytecode instruction."""
    op: str
    ty: Optional[str] = None
    arg: object = None

    def __repr__(self) -> str:
        parts = [self.op]
        if self.ty is not None:
            parts.append(f".{self.ty}")
        text = "".join(parts)
        if self.arg is not None:
            return f"{text} {self.arg}"
        return text


def is_branch(instr: BCInstr) -> bool:
    return instr.op in ("br", "brif")


def is_terminator(instr: BCInstr) -> bool:
    return instr.op in ("br", "ret")
