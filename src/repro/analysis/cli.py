"""``pvi-lint``: render admission-lint findings with disassembly context.

Usage::

    pvi-lint prog.pvi [more.pvi ...]     # lint DSL source files
    pvi-lint --workloads                 # lint every bundled kernel
    pvi-lint --json prog.pvi             # machine-readable findings
    pvi-lint --strict prog.pvi           # exit 1 on warnings too

Exit status: 0 clean (or info-only), 1 findings at the failing
severity (``error`` by default, ``warn``+ with ``--strict``), 2 a
source failed to compile at all.  CI runs this over ``examples/`` and
the workload kernels and fails the build on ``error`` findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.lint import LintFinding, lint_bytecode_module
from repro.bytecode.disasm import disassemble_function

#: disassembly lines shown around a finding's pc
_CONTEXT = 2


def _pc_context(func, pc: int) -> List[str]:
    """Disassembly lines around ``pc``, the finding's line marked."""
    lines = disassemble_function(func).splitlines()
    header = 1 + (1 if func.local_types else 0) + len(func.frame_slots)
    index = header + pc
    if not (header <= index < len(lines)):
        return []
    lo = max(header, index - _CONTEXT)
    hi = min(len(lines), index + _CONTEXT + 1)
    out = []
    for i in range(lo, hi):
        marker = ">>" if i == index else "  "
        out.append(f"    {marker}{lines[i]}")
    return out


def _render(module, findings: List[LintFinding]) -> str:
    out: List[str] = []
    for finding in findings:
        out.append(str(finding))
        func = module.functions.get(finding.function)
        if func is not None and finding.pc is not None:
            out.extend(_pc_context(func, finding.pc))
    return "\n".join(out)


def _lint_source(source: str, name: str):
    """``(module, findings)`` for one DSL program; compile errors are
    reported as a single error finding on a ``None`` module."""
    from repro.core.offline import offline_compile

    try:
        artifact = offline_compile(source, name)
    except Exception as exc:
        return None, [LintFinding("error", "compile", name, None,
                                  f"offline compile failed: {exc}")]
    return artifact.bytecode, lint_bytecode_module(artifact.bytecode)


def _targets(args) -> List:
    """``(name, source)`` pairs to lint."""
    pairs = []
    for path in args.sources:
        with open(path, "r", encoding="utf-8") as handle:
            pairs.append((path, handle.read()))
    if args.workloads:
        from repro.workloads.kernels import ALL_KERNELS
        pairs.extend((f"kernel:{k.name}", k.source)
                     for k in ALL_KERNELS.values())
    return pairs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pvi-lint", description=__doc__.splitlines()[0])
    parser.add_argument("sources", nargs="*",
                        help="PVI DSL source files to lint")
    parser.add_argument("--workloads", action="store_true",
                        help="also lint every bundled workload kernel")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings, not just errors")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as a JSON array")
    args = parser.parse_args(argv)
    pairs = _targets(args)
    if not pairs:
        parser.error("no sources given (pass files or --workloads)")

    failing = ("error", "warn") if args.strict else ("error",)
    all_findings: List[LintFinding] = []
    rendered: List[str] = []
    for name, source in pairs:
        module, findings = _lint_source(source, name)
        all_findings.extend(findings)
        if findings and not args.as_json:
            rendered.append(f"== {name} ==")
            if module is not None:
                rendered.append(_render(module, findings))
            else:
                rendered.extend(str(f) for f in findings)

    if args.as_json:
        print(json.dumps([f.as_dict() for f in all_findings], indent=2))
    else:
        if rendered:
            print("\n".join(rendered))
        counts = {s: sum(1 for f in all_findings if f.severity == s)
                  for s in ("error", "warn", "info")}
        print(f"pvi-lint: {len(pairs)} module(s), "
              f"{counts['error']} error(s), {counts['warn']} warning(s), "
              f"{counts['info']} note(s)")
    if any(f.code == "compile" for f in all_findings):
        return 2
    return 1 if any(f.severity in failing for f in all_findings) else 0


if __name__ == "__main__":
    sys.exit(main())
