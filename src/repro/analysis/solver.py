"""Generic worklist dataflow solver over :class:`~repro.analysis.cfg.BlockCFG`.

One solver drives every concrete analysis in this package.  A problem
is three functions:

* ``transfer(leader, fact) -> fact`` — push one block's entry fact to
  its exit fact;
* ``join(old, new) -> (merged, changed)`` — combine an incoming edge
  fact with a node's current entry fact (meet for must-analyses, union
  for may-analyses; widening belongs here too);
* an ``entry`` fact seeding the CFG entry (forward) or every exit
  node (backward).

Facts are opaque to the solver; it only re-queues a node when ``join``
reports a change, so termination is the problem's responsibility
(finite-height lattice + monotone join).  Unreachable blocks get no
entry in the result map — callers choose their own bottom.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.cfg import BlockCFG


def solve_forward(cfg: BlockCFG, entry_fact,
                  transfer: Callable, join: Callable) -> Dict:
    """leader -> entry fact, propagated along internal edges from the
    CFG entry.  Matches the tier-2 emitters' reachability exactly:
    facts flow only over edges the generated dispatcher can take."""
    if cfg.entry not in cfg.blocks:
        return {}
    entry = {cfg.entry: entry_fact}
    work = [cfg.entry]
    while work:
        leader = work.pop()
        out = transfer(leader, entry[leader])
        for succ in cfg.successors.get(leader, ()):
            if succ not in cfg.blocks:
                continue
            current = entry.get(succ, _ABSENT)
            if current is _ABSENT:
                entry[succ] = out
                work.append(succ)
            else:
                merged, changed = join(current, out)
                if changed:
                    entry[succ] = merged
                    work.append(succ)
    return entry


def solve_backward(cfg: BlockCFG, exit_fact,
                   transfer: Callable, join: Callable) -> Dict:
    """leader -> *exit* fact, propagated against the edges.  Every
    block that can leave the function (``ret``, fall-off, or an edge
    to the out-of-graph tail) is seeded with ``exit_fact``."""
    out_facts: Dict = {}
    work = []
    for leader in cfg.blocks:
        succs = cfg.successors.get(leader, ())
        if not succs or any(s not in cfg.blocks for s in succs):
            out_facts[leader] = exit_fact
            work.append(leader)
    while work:
        leader = work.pop()
        in_fact = transfer(leader, out_facts[leader])
        for pred in cfg.predecessors.get(leader, ()):
            current = out_facts.get(pred, _ABSENT)
            if current is _ABSENT:
                out_facts[pred] = in_fact
                work.append(pred)
            else:
                merged, changed = join(current, in_fact)
                if changed:
                    out_facts[pred] = merged
                    work.append(pred)
    return out_facts


_ABSENT = object()
