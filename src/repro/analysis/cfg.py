"""Fuel-block control-flow graphs for the dataflow plane.

Both instruction forms — :class:`~repro.bytecode.opcodes.BCInstr` and
:class:`~repro.targets.isa.MInst` — spell control flow identically
(``br``/``brif``/``call``/``ret`` with absolute integer targets), so
one CFG builder serves the VM and the simulator.  Nodes are the fuel
block leaders of :func:`repro.engine.fuel_blocks`; edges are the
*internal* transfers of a tier-2 translation: ``br`` to its target,
``brif`` to target and fall-through, ``call`` and plain fall-through
to the next leader, ``ret`` nowhere.  Out-of-range targets are
normalized to ``n`` (the fell-off-code-end tail, outside every
block), exactly as both code generators do, so an analysis over this
graph sees the same reachable edges the generated code has.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine import fuel_blocks, normalize_branch_target


class BlockCFG:
    """Fuel-block graph: ``blocks`` (leader -> length), ``successors``
    and ``predecessors`` (leader -> leader list, in-graph edges only),
    built once per function and shared by every analysis pass."""

    __slots__ = ("n", "blocks", "successors", "predecessors")

    def __init__(self, code):
        self.n = len(code)
        self.blocks = fuel_blocks(code)
        self.successors = _successors(code, self.blocks, self.n)
        self.predecessors: Dict[int, List[int]] = \
            {leader: [] for leader in self.blocks}
        for leader, succs in self.successors.items():
            for succ in succs:
                if succ in self.blocks:
                    self.predecessors[succ].append(leader)

    @property
    def entry(self) -> int:
        return 0

    def reachable(self) -> frozenset:
        """Leaders reachable from the entry block."""
        if 0 not in self.blocks:
            return frozenset()
        seen = {0}
        work = [0]
        while work:
            leader = work.pop()
            for succ in self.successors.get(leader, ()):
                if succ in self.blocks and succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return frozenset(seen)


def _successors(code, blocks, n: int) -> Dict[int, List[int]]:
    """leader -> pcs reachable by the block's terminator.  Includes
    the out-of-graph exit pc ``n`` (normalized malformed targets and
    fall-through past the last instruction) so callers can tell "this
    block can leave the function" from "this edge stays internal"."""
    succs: Dict[int, List[int]] = {}
    for leader, length in blocks.items():
        term = code[leader + length - 1]
        exit_pc = leader + length
        op = term.op
        if op == "br":
            target = normalize_branch_target(term.arg, n)
            succs[leader] = [target] if isinstance(target, int) else []
        elif op == "brif":
            target = normalize_branch_target(term.arg, n)
            succs[leader] = ([target] if isinstance(target, int)
                             else []) + [exit_pc]
        elif op == "ret":
            succs[leader] = []
        else:                       # call or plain fall-through
            succs[leader] = [exit_pc]
    return succs
