"""PVI static-analysis plane: dataflow solver, proven facts, lint.

The offline half of the paper's split owns verification and expensive
analysis; this package is that plane for the grown system.  It builds
fuel-block CFGs (:mod:`~repro.analysis.cfg`), drives a generic
worklist solver (:mod:`~repro.analysis.solver`) through the concrete
passes (:mod:`~repro.analysis.passes`), and publishes the results as
cacheable :class:`~repro.analysis.facts.FunctionFacts` that the tier-2
code generators consume instead of re-deriving privately — plus a
lint/admission layer (:mod:`~repro.analysis.lint`) the compilation
service gates deployments through, with a ``pvi-lint`` CLI
(:mod:`~repro.analysis.cli`) on top.

Import discipline: this package may import ``repro.engine``,
``repro.bytecode.*`` and ``repro.semantics.*`` but never the engines
(``repro.vm.threaded``, ``repro.targets.dispatch``) — they import us.
"""

from repro.analysis.cfg import BlockCFG
from repro.analysis.facts import (
    FACTS_SCHEMA, FactsTable, FunctionFacts, bytecode_facts,
    machine_facts, module_facts,
)
from repro.analysis.lint import (
    AdmissionError, LintFinding, check_admission, lint_artifact,
    lint_bytecode_module,
)
from repro.analysis.solver import solve_backward, solve_forward

__all__ = [
    "BlockCFG", "FACTS_SCHEMA", "FactsTable", "FunctionFacts",
    "bytecode_facts", "machine_facts", "module_facts",
    "AdmissionError", "LintFinding", "check_admission",
    "lint_artifact", "lint_bytecode_module",
    "solve_backward", "solve_forward",
]
