"""Proven-facts tables: the cacheable product of the dataflow plane.

The paper's split puts expensive analysis on the offline side and
leaves the runtime a cheap consumer; :class:`FunctionFacts` is the
interface between the two.  One analysis run per function produces a
plain-data, picklable record of everything the tier-2 emitters and
the lint plane need:

* the fuel-block map and which leaders are reachable,
* the VM lane/tuple fixpoint (``tuple_locals``/``lane_locals``) and
  every memory access width (``access_widths``, the superset codegen
  hoists ``_ms - width`` limits from),
* the machine must-written register sets per leader
  (``written_at_entry``/``param_regs``),
* lint-plane facts: integer value ranges, maybe-uninitialized reads,
  dead stores, and range-derived findings (null-page accesses,
  constant branches).

Facts ride the function object as ``_pvi_facts_cache = (token,
facts)`` keyed by ``[FACTS_SCHEMA] + content_token()`` — the same
invalidate-by-content discipline as the predecode cache, and like the
predecode schema, :data:`FACTS_SCHEMA` participates so persisted
tables from an older analysis plane never validate.  Unlike the
predecode (whose closures must be stripped at process seams), facts
are pure data and survive pickling through ``ProcessExecutor``.

A function the analysis cannot finish (the abstract interpreter
itself raising outside a block walk) caches ``None``: callers treat
that as "no proofs available" — tier-2 declines and stays on the
always-correct block tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import BlockCFG
from repro.analysis import passes

#: bumped whenever the facts payload shape or any producing analysis
#: changes meaning, so stale cached tables never validate
FACTS_SCHEMA = 1


@dataclass
class FunctionFacts:
    """Plain-data analysis results for one function (either form)."""
    kind: str                       # "bytecode" | "machine"
    name: str
    blocks: Dict[int, int] = field(default_factory=dict)
    reachable: frozenset = frozenset()
    # -- VM tier-2 facts ----------------------------------------------------
    tuple_locals: frozenset = frozenset()
    lane_locals: Dict[int, int] = field(default_factory=dict)
    access_widths: frozenset = frozenset()
    # -- machine tier-2 facts -----------------------------------------------
    param_regs: frozenset = frozenset()
    written_at_entry: Dict[int, frozenset] = field(default_factory=dict)
    # -- lint-plane facts ---------------------------------------------------
    ranges: Dict[int, Dict[int, Tuple]] = field(default_factory=dict)
    range_notes: List[Tuple] = field(default_factory=list)
    maybe_uninit: List[Tuple[int, int]] = field(default_factory=list)
    dead_stores: List[Tuple[int, int]] = field(default_factory=list)

    def dead_blocks(self) -> List[int]:
        """Leaders no internal edge from the entry reaches."""
        return sorted(set(self.blocks) - set(self.reachable))


@dataclass
class FactsTable:
    """Facts for every function of a module, by name.  ``None`` marks
    a function the analysis declined (no proofs; tier-2 stays off)."""
    kind: str
    functions: Dict[str, Optional[FunctionFacts]] = field(
        default_factory=dict)

    def get(self, name: str) -> Optional[FunctionFacts]:
        return self.functions.get(name)


def _facts_token(func) -> List:
    return [FACTS_SCHEMA] + func.content_token()


def _cached(func, token):
    cached = getattr(func, "_pvi_facts_cache", None)
    if cached is not None and cached[0] == token:
        return cached
    return None


def analyze_bytecode_function(func, binding=None) -> Optional[FunctionFacts]:
    """Run every bytecode-side analysis; ``None`` if the plane itself
    fails (never for ordinary malformed blocks — those just abort
    their own block walk and leave partial, still-sound facts)."""
    try:
        cfg = BlockCFG(func.code)
        tuple_locals, lane_locals, widths = \
            passes.lane_fixpoint(func, binding)
        ranges = int_ranges_safe(func, cfg)
        stored = passes.must_stored_at_entry(func, cfg)
        live = passes.live_at_block_exit(func, cfg)
        return FunctionFacts(
            kind="bytecode",
            name=func.name,
            blocks=dict(cfg.blocks),
            reachable=cfg.reachable(),
            tuple_locals=tuple_locals,
            lane_locals=lane_locals,
            access_widths=widths,
            ranges=ranges,
            range_notes=passes.range_findings(func, cfg, ranges),
            maybe_uninit=passes.maybe_uninit_reads(func, cfg, stored),
            dead_stores=passes.dead_stores(func, cfg, live),
        )
    except Exception:
        return None


def int_ranges_safe(func, cfg) -> Dict[int, Dict[int, Tuple]]:
    """Value ranges are lint-only; never let them sink the table."""
    try:
        return passes.int_value_ranges(func, cfg)
    except Exception:
        return {}


def analyze_machine_function(func) -> Optional[FunctionFacts]:
    try:
        cfg = BlockCFG(func.code)
        param_regs = passes.machine_param_regs(func)
        return FunctionFacts(
            kind="machine",
            name=func.name,
            blocks=dict(cfg.blocks),
            reachable=cfg.reachable(),
            param_regs=param_regs,
            written_at_entry=passes.written_at_block_entry(
                func.code, cfg, param_regs),
        )
    except Exception:
        return None


def bytecode_facts(func, binding=None):
    """``(facts_or_None, fresh)`` for a ``BytecodeFunction``, cached on
    the function keyed by content token.  Facts are binding-
    independent (``call`` terminates its fuel block, so resolution
    affects nothing the analyses record), so one entry serves every
    module the function appears in."""
    token = _facts_token(func)
    cached = _cached(func, token)
    if cached is not None:
        return cached[1], False
    facts = analyze_bytecode_function(func, binding)
    func._pvi_facts_cache = (token, facts)
    return facts, True


def machine_facts(func):
    """``(facts_or_None, fresh)`` for a ``CompiledFunction``."""
    token = _facts_token(func)
    cached = _cached(func, token)
    if cached is not None:
        return cached[1], False
    facts = analyze_machine_function(func)
    func._pvi_facts_cache = (token, facts)
    return facts, True


def module_facts(module, binding=None) -> FactsTable:
    """Facts for every function of a ``BytecodeModule`` (the shape the
    admission gate and ``pvi-lint`` consume)."""
    table = FactsTable(kind="bytecode")
    for func in module.functions.values():
        table.functions[func.name], _ = bytecode_facts(func, binding)
    return table


# ---------------------------------------------------------------------------
# wire form (artifact-cache persistence)
# ---------------------------------------------------------------------------
#
# Facts ride persisted artifacts so a warm service start skips the
# analysis plane entirely.  The encoding is *canonical* JSON-able
# data — every set sorted, every mapping emitted in key order — so
# serializing the same facts twice (or facts revived from disk) is
# byte-for-byte deterministic, which the artifact cache's roundtrip
# identity relies on.  ``±inf`` range bounds survive as JSON
# Infinity literals (the stdlib encoder emits and re-reads them).

def facts_to_wire(facts: Optional[FunctionFacts]) -> Optional[Dict]:
    """Canonical plain-data form of one function's facts (``None``
    marks a declined function and round-trips as such)."""
    if facts is None:
        return None
    return {
        "kind": facts.kind,
        "name": facts.name,
        "blocks": [[k, v] for k, v in sorted(facts.blocks.items())],
        "reachable": sorted(facts.reachable),
        "tuple_locals": sorted(facts.tuple_locals),
        "lane_locals": [[k, v]
                        for k, v in sorted(facts.lane_locals.items())],
        "access_widths": sorted(facts.access_widths),
        "param_regs": sorted(facts.param_regs),
        "written_at_entry": [[k, sorted(v)] for k, v in
                             sorted(facts.written_at_entry.items())],
        "ranges": [[leader, [[i, list(bounds)] for i, bounds in
                             sorted(entry.items())]]
                   for leader, entry in sorted(facts.ranges.items())],
        "range_notes": [list(note) for note in facts.range_notes],
        "maybe_uninit": [list(p) for p in facts.maybe_uninit],
        "dead_stores": [list(p) for p in facts.dead_stores],
    }


def facts_from_wire(wire: Optional[Dict]) -> Optional[FunctionFacts]:
    if wire is None:
        return None
    return FunctionFacts(
        kind=wire["kind"],
        name=wire["name"],
        blocks={int(k): int(v) for k, v in wire["blocks"]},
        reachable=frozenset(wire["reachable"]),
        tuple_locals=frozenset(wire["tuple_locals"]),
        lane_locals={int(k): int(v) for k, v in wire["lane_locals"]},
        access_widths=frozenset(wire["access_widths"]),
        param_regs=frozenset(wire["param_regs"]),
        written_at_entry={int(k): frozenset(v)
                          for k, v in wire["written_at_entry"]},
        ranges={int(leader): {int(i): tuple(bounds)
                              for i, bounds in entry}
                for leader, entry in wire["ranges"]},
        range_notes=[tuple(note) for note in wire["range_notes"]],
        maybe_uninit=[tuple(p) for p in wire["maybe_uninit"]],
        dead_stores=[tuple(p) for p in wire["dead_stores"]],
    )
