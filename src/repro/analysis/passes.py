"""Concrete dataflow analyses over the fuel-block CFG.

Five passes feed the proven-facts table (:mod:`repro.analysis.facts`):

* **Vector-lane/tuple fixpoint** (VM bytecode) — the whole-function
  greatest fixpoint the tier-2 VM emitter used to re-derive inside its
  codegen loop: which locals may ever hold a deferred vec *tuple*, and
  which vector locals provably keep their lane count across every
  ``stloc``.  The abstract interpreter below mirrors the emitter's
  meta-stack rules (:func:`repro.vm.threaded._gen_block_lines`)
  *call for call* — same validating helper calls in the same order, so
  a block aborts analysis at exactly the instruction whose generated
  (or raw) handler raises at execution time.  Facts recorded before
  the abort therefore hold on every real execution prefix, which is
  what makes OSR guard elision sound: stores past an abort point never
  execute on any tier.
* **Must-written registers** (machine code) — the forward must-
  dataflow previously private to ``targets.dispatch``: registers
  definitely written on every internal path reaching a leader.
* **Integer value ranges** — interval abstract interpretation with
  aggressive widening at joins; feeds the lint plane (provably
  null-page accesses, constant branch conditions).
* **Definite initialization** — locals definitely stored before a
  leader (must-meet), plus the ``ldloc`` sites that may read a
  still-default local.
* **Liveness / dead stores** (backward) — ``stloc`` sites whose value
  no path ever reads.

Nothing here imports the engines — ``repro.vm.threaded`` and
``repro.targets.dispatch`` import *us*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import BlockCFG
from repro.analysis.solver import solve_backward, solve_forward
from repro.bytecode.module import is_vector_local, vector_elem_tag
from repro.bytecode.opcodes import BIN_OPS, UN_OPS, type_of
from repro.engine import (
    CodegenEnv, inline_binop, inline_cast, inline_cmp, inline_unop,
    normalize_branch_target,
)
from repro.lang import types as ty
from repro.semantics.kernels import (
    binop_kernel, cast_kernel, cmp_kernel, identity_kernel, unop_kernel,
    vec_binop_kernel,
)
from repro.semantics.memory import NULL_GUARD, scalar_struct, vector_struct

_INT_TAGS = {"i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64"}

#: machine register classes (kept independent of targets.dispatch's
#: ``_CLS_INDEX`` so this package never imports the engines)
REG_CLASSES = ("int", "flt", "vec")


# ---------------------------------------------------------------------------
# vector-lane / tuple fixpoint (VM bytecode)
# ---------------------------------------------------------------------------

#: vstack meta for a wrapped-u64 inline result (value-compared only —
#: mirrors ``repro.vm.threaded._MASKED64_META``)
_MASKED64_META = {"masked64": True}


def _scalar_meta(value_ty):
    if isinstance(value_ty, ty.IntType) and value_ty.bits == 64 \
            and not value_ty.signed:
        return _MASKED64_META
    return None


def _abstract_block(code, leader: int, length: int, frame_offsets,
                    env: CodegenEnv, binding, safe_args: int,
                    tuple_locals: frozenset, lane_locals: dict,
                    info: dict, widths: set) -> None:
    """One block of the emitter's meta dataflow, emission elided.

    Must stay in lockstep with ``_gen_block_lines(tier2=True)``: the
    same pops/pushes per op, the same meta values, the same
    ``tuple_stores``/``lane_breaks`` recording, and — critically — the
    same raising helper calls in the same order, so an exception
    aborts this walk at exactly the instruction whose handler raises
    when the block executes.  ``_gen_tier2`` cross-checks the final
    codegen pass against these facts and declines the build on any
    mismatch, so a drift bug degrades to the block tier instead of
    miscompiling.
    """
    vmeta: List = []
    local_meta: dict = {}

    def push(meta=None) -> None:
        vmeta.append(meta)

    def popm():
        if vmeta:
            return vmeta.pop()
        return None                 # cross-block stack value: unknown

    def flush() -> None:
        del vmeta[:]

    exit_pc = leader + length
    for pc in range(leader, exit_pc):
        instr = code[pc]
        op = instr.op

        if op == "ldloc":
            if instr.arg in local_meta:
                meta = local_meta[instr.arg]
            elif instr.arg in tuple_locals:
                meta = {"lanes": lane_locals.get(instr.arg),
                        "tuple": True, "float": False}
            elif instr.arg in lane_locals:
                meta = {"lanes": lane_locals[instr.arg],
                        "tuple": False, "float": False}
            else:
                meta = None
            push(meta)
        elif op == "ldarg":
            if instr.arg < safe_args:   # same raise on non-int args
                push()
            else:
                push()
        elif op == "stloc":
            meta = popm()
            if meta is not None and meta.get("tuple"):
                info["tuple_stores"].add(instr.arg)
            if instr.arg in lane_locals \
                    and (meta is None
                         or meta.get("lanes") != lane_locals[instr.arg]):
                info["lane_breaks"].add(instr.arg)
            local_meta[instr.arg] = meta
        elif op == "const":
            push()
        elif op in BIN_OPS:
            value_ty = type_of(instr.ty)
            tmpl = inline_binop(op, value_ty, env)
            popm()
            popm()
            if tmpl is not None:
                push(_scalar_meta(value_ty) if tmpl[1] else None)
            else:
                binop_kernel(op, value_ty)
                push()
        elif op == "cmp":
            value_ty = type_of(instr.ty)
            tmpl = inline_cmp(instr.arg, value_ty)
            popm()
            popm()
            if tmpl is None:
                cmp_kernel(instr.arg, value_ty)
            push()
        elif op in UN_OPS:
            value_ty = type_of(instr.ty)
            tmpl = inline_unop(op, value_ty, env)
            popm()
            if tmpl is None:
                unop_kernel(op, value_ty)
            push()
        elif op == "cast":
            from_ty = type_of(instr.arg)
            to_ty = type_of(instr.ty)
            kernel = cast_kernel(from_ty, to_ty)
            if kernel is not identity_kernel:   # identity: slot untouched
                tmpl = inline_cast(from_ty, to_ty, env)
                popm()
                if tmpl is not None:
                    push(_scalar_meta(to_ty) if tmpl[1] else None)
                else:
                    push()
        elif op == "select":
            popm()
            popm()
            popm()
            push()
        elif op == "load":
            packer = scalar_struct(type_of(instr.ty))
            popm()                              # address
            widths.add(packer.size)
            push()
        elif op == "store":
            packer = scalar_struct(type_of(instr.ty))
            popm()                              # value
            popm()                              # address
            widths.add(packer.size)
        elif op == "frame":
            frame_offsets[instr.arg]            # same IndexError
            push()
        elif op == "br":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")
            flush()
        elif op == "brif":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")
            popm()                              # condition
            flush()
        elif op == "call":
            flush()
            if binding is not None:
                binding.functions.get(instr.arg)
        elif op == "ret":
            flush()
        elif op == "pop":
            if vmeta:
                vmeta.pop()
        elif op == "vec.load":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            packer = vector_struct(elem, lanes)
            popm()                              # address
            widths.add(packer.size)
            push({"lanes": lanes, "tuple": True,
                  "float": isinstance(elem, ty.FloatType)})
        elif op == "vec.store":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            packer = vector_struct(elem, lanes)
            popm()                              # value
            popm()                              # address
            widths.add(packer.size)
        elif op.startswith("vec.") and op[4:] in BIN_OPS:
            bop = op[4:]
            elem = type_of(instr.ty)
            vec_binop_kernel(bop, elem)
            if not (isinstance(elem, ty.FloatType) and elem.bits == 32
                    and bop in ("add", "sub", "mul", "min", "max")):
                popm()
                popm()
                push()
            else:
                bm = popm()
                am = popm()
                guards = sum(1 for m in (am, bm)
                             if m is None or m.get("lanes") != 4)
                push({"lanes": 4 if guards < 2 else None,
                      "tuple": True, "float": True})
        elif op == "vec.splat":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            popm()                              # scalar
            push({"lanes": lanes, "tuple": False, "float": False})
        elif op == "vec.reduce":
            reduce_op, acc_tag = instr.arg
            if reduce_op not in ("add", "max", "min"):
                raise ValueError("undefined reduce op")
            elem = type_of(instr.ty)
            acc_ty = type_of(acc_tag)
            widen_kernel = cast_kernel(elem, acc_ty)
            if widen_kernel is identity_kernel:
                widen_tpl = ("{a}", True)
            else:
                widen_tpl = inline_cast(elem, acc_ty, env)
            fold_tpl = inline_binop(reduce_op, acc_ty, env)
            popm()                              # vector
            if not (widen_tpl is not None and widen_tpl[1]
                    and fold_tpl is not None and fold_tpl[1]):
                binop_kernel(reduce_op, acc_ty)
            push()
        else:
            raise ValueError(f"unknown opcode {op!r}")


def lane_fixpoint(func, binding=None):
    """``(tuple_locals, lane_locals, access_widths)`` — the VM tier-2
    whole-function facts, to the same fixed point the emitter's
    in-codegen loop used to reach.

    ``tuple_locals`` grows monotonically (a local that ever receives a
    deferred vec tuple taints every ``ldloc`` of it); ``lane_locals``
    shrinks monotonically (one unproven ``stloc`` drops the local's
    lane fact); ``access_widths`` is the set of memory access sizes
    seen anywhere — a superset of the widths the final codegen pass
    hoists ``_ms - width`` limits for.  ``binding`` only affects abort
    fidelity inside ``call`` blocks; the facts themselves are
    binding-independent (``call`` terminates its block).
    """
    code = func.code
    blocks = BlockCFG(code).blocks
    frame_offsets = func.frame_offsets()
    env = CodegenEnv({})
    safe_args = len(func.param_types)
    tuple_locals = frozenset()
    lane_locals: Dict[int, int] = {}
    for index, tag in enumerate(func.local_types):
        if is_vector_local(tag):
            elem = type_of(vector_elem_tag(tag))
            lane_locals[index] = 16 // ty.sizeof(elem)
    while True:
        info = {"tuple_stores": set(), "lane_breaks": set()}
        widths: Set[int] = set()
        for leader in blocks:
            try:
                _abstract_block(code, leader, blocks[leader],
                                frame_offsets, env, binding, safe_args,
                                tuple_locals, lane_locals, info, widths)
            except Exception:
                pass                # partial facts up to the abort count
        grown = tuple_locals | info["tuple_stores"]
        if grown == tuple_locals and not info["lane_breaks"]:
            return tuple_locals, dict(lane_locals), frozenset(widths)
        tuple_locals = frozenset(grown)
        for index in info["lane_breaks"]:
            lane_locals.pop(index, None)


# ---------------------------------------------------------------------------
# must-written registers (machine code)
# ---------------------------------------------------------------------------

def machine_param_regs(func) -> frozenset:
    """(kind, index) registers guaranteed written at function entry."""
    return frozenset(loc for loc in func.param_locs
                     if loc[0] != "slot")


def written_at_block_entry(code, cfg: BlockCFG,
                           param_regs: frozenset) -> Dict[int, frozenset]:
    """leader -> registers definitely written on every internal path
    reaching it (forward must-dataflow from block 0).

    Sound for tier-2 and for guard elision because a block either runs
    to its terminator or exits the function entirely (a mid-block trap
    propagates out, a fuel deopt re-runs under block-tier accounting)
    — so along any path reaching a leader, every predecessor block
    executed whole and all its destinations are written.  This holds
    on the block-threaded tier too, which is why an OSR entry needs no
    ``_UNSET`` re-checks: the live snapshot arrived over the same
    block graph."""
    gen = {}
    for leader, length in cfg.blocks.items():
        gen[leader] = frozenset(
            instr.dst for instr in code[leader:leader + length]
            if instr.dst is not None and instr.dst[0] in REG_CLASSES)

    def transfer(leader, fact):
        return fact | gen[leader]

    def join(old, new):
        met = old & new
        return met, met != old

    return solve_forward(cfg, frozenset(param_regs), transfer, join)


# ---------------------------------------------------------------------------
# integer value ranges
# ---------------------------------------------------------------------------

INF = float("inf")
TOP = (-INF, INF)


def _tag_range(tag: str) -> Tuple:
    lang_ty = type_of(tag)
    if isinstance(lang_ty, ty.IntType):
        if lang_ty.signed:
            half = 1 << (lang_ty.bits - 1)
            return (-half, half - 1)
        return (0, (1 << lang_ty.bits) - 1)
    return TOP


def _interval_binop(op: str, tag: str, a, b):
    if tag not in _INT_TAGS:
        return TOP
    lo_t, hi_t = _tag_range(tag)
    if op == "add":
        lo, hi = a[0] + b[0], a[1] + b[1]
    elif op == "sub":
        lo, hi = a[0] - b[1], a[1] - b[0]
    elif op == "mul":
        corners = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
        lo, hi = min(corners), max(corners)
    elif op in ("min", "max"):
        pick = min if op == "min" else max
        lo, hi = pick(a[0], b[0]), pick(a[1], b[1])
    else:                           # div/rem/shifts/bitwise: give up
        return _tag_range(tag)
    if lo != lo or hi != hi:        # inf-inf artifacts
        return _tag_range(tag)
    if lo < lo_t or hi > hi_t:      # may wrap: the kernel masks
        return _tag_range(tag)
    return (lo, hi)


def _range_block(code, leader: int, length: int, locals_in: dict,
                 int_locals: set, sink=None) -> dict:
    """Abstract-interpret one block over intervals; returns the exit
    locals map.  ``sink(pc, kind, interval, width)`` observes memory
    addresses (kind ``load``/``store``/``vec.load``/``vec.store``)
    and branch conditions (kind ``brif``, width ``None``)."""
    loc = dict(locals_in)
    stack: List = []

    def pop():
        return stack.pop() if stack else TOP

    for pc in range(leader, leader + length):
        instr = code[pc]
        op = instr.op
        if op == "const":
            if instr.ty in _INT_TAGS and isinstance(instr.arg, int):
                stack.append((instr.arg, instr.arg))
            else:
                stack.append(TOP)
        elif op == "ldloc":
            stack.append(loc.get(instr.arg, TOP))
        elif op == "stloc":
            value = pop()
            if instr.arg in int_locals:
                loc[instr.arg] = value
        elif op in ("ldarg", "frame"):
            stack.append(TOP)
        elif op in BIN_OPS:
            b, a = pop(), pop()
            stack.append(_interval_binop(op, instr.ty, a, b))
        elif op in UN_OPS:
            pop()
            stack.append(_tag_range(instr.ty)
                         if instr.ty in _INT_TAGS else TOP)
        elif op == "cmp":
            pop()
            pop()
            stack.append((0, 1))
        elif op == "cast":
            value = pop()
            lo_t, hi_t = _tag_range(instr.ty)
            if instr.ty in _INT_TAGS \
                    and lo_t <= value[0] and value[1] <= hi_t:
                stack.append(value)
            else:
                stack.append(_tag_range(instr.ty)
                             if instr.ty in _INT_TAGS else TOP)
        elif op == "select":
            b, a = pop(), pop()
            pop()
            stack.append((min(a[0], b[0]), max(a[1], b[1])))
        elif op == "load":
            addr = pop()
            if sink is not None:
                sink(pc, "load", addr, scalar_struct(type_of(instr.ty)).size)
            stack.append(_tag_range(instr.ty)
                         if instr.ty in _INT_TAGS else TOP)
        elif op == "store":
            pop()
            addr = pop()
            if sink is not None:
                sink(pc, "store", addr, scalar_struct(type_of(instr.ty)).size)
        elif op == "vec.load":
            addr = pop()
            if sink is not None:
                sink(pc, "vec.load", addr, 16)
            stack.append(TOP)
        elif op == "vec.store":
            pop()
            addr = pop()
            if sink is not None:
                sink(pc, "vec.store", addr, 16)
        elif op in ("vec.splat",):
            pop()
            stack.append(TOP)
        elif op == "vec.reduce":
            pop()
            stack.append(_tag_range(instr.arg[1])
                         if isinstance(instr.arg, tuple)
                         and len(instr.arg) == 2
                         and instr.arg[1] in _INT_TAGS else TOP)
        elif op.startswith("vec.") and op[4:] in BIN_OPS:
            pop()
            pop()
            stack.append(TOP)
        elif op == "brif":
            cond = pop()
            if sink is not None:
                sink(pc, "brif", cond, None)
        elif op == "pop":
            pop()
        elif op == "call":
            break                   # terminator; callee effects unknown
        # br/ret: terminators with no range effect
    return loc


def int_value_ranges(func, cfg: BlockCFG) -> Dict[int, Dict[int, Tuple]]:
    """leader -> {local index: (lo, hi)} at block entry, for integer
    locals.  Joins widen aggressively (a growing bound jumps straight
    to the type range's side of infinity), so the worklist terminates
    in O(blocks * locals)."""
    int_locals = {index for index, tag in enumerate(func.local_types)
                  if tag in _INT_TAGS}
    entry0 = {index: (0, 0) for index in int_locals}   # locals default 0

    def transfer(leader, fact):
        return _range_block(func.code, leader, cfg.blocks[leader],
                            fact, int_locals)

    def join(old, new):
        merged = {}
        changed = False
        for index in int_locals:
            olo, ohi = old.get(index, TOP)
            nlo, nhi = new.get(index, TOP)
            lo = olo if nlo >= olo else -INF
            hi = ohi if nhi <= ohi else INF
            merged[index] = (lo, hi)
            if (lo, hi) != (olo, ohi):
                changed = True
        return merged, changed

    return solve_forward(cfg, entry0, transfer, join)


def range_findings(func, cfg: BlockCFG,
                   ranges: Dict[int, Dict[int, Tuple]]) -> List[Tuple]:
    """(pc, kind, detail) memory/branch facts worth linting: accesses
    whose address is provably inside the null guard page, and ``brif``
    conditions provably constant."""
    found: List[Tuple] = []

    def sink(pc, kind, interval, width):
        if kind == "brif":
            if interval == (0, 0):
                found.append((pc, "branch-never", "condition is always 0"))
            elif interval[0] > 0 or interval[1] < 0:
                found.append((pc, "branch-always",
                              "condition is never 0"))
            return
        if interval[1] < NULL_GUARD and interval[1] >= 0:
            found.append((pc, "null-access",
                          f"{kind} address <= {interval[1]:#x} lies in "
                          f"the null guard page (< {NULL_GUARD:#x}); "
                          "this access always traps"))

    for leader in sorted(ranges):
        try:
            _range_block(func.code, leader, cfg.blocks[leader],
                         ranges[leader], set(), sink=sink)
        except Exception:
            continue                # malformed block: verifier's problem
    return found


# ---------------------------------------------------------------------------
# definite initialization (locals)
# ---------------------------------------------------------------------------

def must_stored_at_entry(func, cfg: BlockCFG) -> Dict[int, frozenset]:
    """leader -> locals definitely stored on every path reaching it."""
    gen = {}
    for leader, length in cfg.blocks.items():
        gen[leader] = frozenset(
            instr.arg for instr in func.code[leader:leader + length]
            if instr.op == "stloc" and isinstance(instr.arg, int))

    def transfer(leader, fact):
        return fact | gen[leader]

    def join(old, new):
        met = old & new
        return met, met != old

    return solve_forward(cfg, frozenset(), transfer, join)


def maybe_uninit_reads(func, cfg: BlockCFG,
                       stored: Dict[int, frozenset]) -> List[Tuple[int, int]]:
    """(pc, local) sites where a ``ldloc`` may read the local's
    type-default value — legal (locals are zero-initialized) but worth
    surfacing: it usually marks a lowering bug or dead parameter."""
    sites: List[Tuple[int, int]] = []
    for leader in sorted(stored):
        seen = set(stored[leader])
        for pc in range(leader, leader + cfg.blocks[leader]):
            instr = func.code[pc]
            if instr.op == "ldloc" and isinstance(instr.arg, int) \
                    and instr.arg not in seen:
                sites.append((pc, instr.arg))
            elif instr.op == "stloc" and isinstance(instr.arg, int):
                seen.add(instr.arg)
    return sites


# ---------------------------------------------------------------------------
# liveness / dead stores (backward)
# ---------------------------------------------------------------------------

def live_at_block_exit(func, cfg: BlockCFG) -> Dict[int, frozenset]:
    """leader -> locals possibly read after the block exits."""
    def transfer(leader, live_out):
        live = set(live_out)
        for pc in range(leader + cfg.blocks[leader] - 1, leader - 1, -1):
            instr = func.code[pc]
            if instr.op == "stloc" and isinstance(instr.arg, int):
                live.discard(instr.arg)
            elif instr.op == "ldloc" and isinstance(instr.arg, int):
                live.add(instr.arg)
        return frozenset(live)

    def join(old, new):
        merged = old | new
        return merged, merged != old

    return solve_backward(cfg, frozenset(), transfer, join)


def dead_stores(func, cfg: BlockCFG,
                live: Dict[int, frozenset]) -> List[Tuple[int, int]]:
    """(pc, local) ``stloc`` sites whose value no path reads."""
    sites: List[Tuple[int, int]] = []
    for leader in sorted(live):
        alive = set(live[leader])
        for pc in range(leader + cfg.blocks[leader] - 1, leader - 1, -1):
            instr = func.code[pc]
            if instr.op == "stloc" and isinstance(instr.arg, int):
                if instr.arg not in alive:
                    sites.append((pc, instr.arg))
                alive.discard(instr.arg)
            elif instr.op == "ldloc" and isinstance(instr.arg, int):
                alive.add(instr.arg)
    return sorted(sites)
