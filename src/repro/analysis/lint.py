"""Deploy-time lint over proven facts: findings, severities, the gate.

The admission contract (used by ``CompilationService`` and the
``pvi-lint`` CLI):

* ``error`` — the module is unsound: the verifier rejected it, or the
  analysis plane could not even build a block graph.  The service
  refuses to deploy (:class:`AdmissionError`).
* ``warn`` — deployable but suspicious: unreachable blocks, memory
  accesses proven to land in the null guard page (they trap on every
  execution), branch conditions proven constant.
* ``info`` — hygiene notes: reads of never-stored locals, dead
  stores.  Never gates anything; surfaced only by the CLI.

Findings are plain data (picklable, ``as_dict`` for JSON) and carry
the pc so the CLI can render them against ``disasm.py`` context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.facts import FactsTable, FunctionFacts, module_facts
from repro.bytecode.verifier import BytecodeVerifyError, verify_module

SEVERITIES = ("error", "warn", "info")


@dataclass
class LintFinding:
    severity: str                   # "error" | "warn" | "info"
    code: str                       # stable machine-readable slug
    function: str
    pc: Optional[int]               # None for module-level findings
    message: str

    def as_dict(self) -> Dict:
        return {"severity": self.severity, "code": self.code,
                "function": self.function, "pc": self.pc,
                "message": self.message}

    def __str__(self) -> str:
        where = self.function if self.pc is None \
            else f"{self.function}:{self.pc}"
        return f"{self.severity}[{self.code}] {where}: {self.message}"


class AdmissionError(Exception):
    """Deployment refused: the artifact has error-severity findings."""

    def __init__(self, name: str, findings: List[LintFinding]):
        self.findings = findings
        errors = [f for f in findings if f.severity == "error"]
        lines = "; ".join(str(f) for f in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"artifact {name!r} failed admission lint: {lines}{more}")


def _function_findings(facts: Optional[FunctionFacts],
                       name: str) -> List[LintFinding]:
    if facts is None:
        return [LintFinding(
            "error", "analysis-failed", name, None,
            "the dataflow plane could not analyze this function; "
            "tier-2 compilation is disabled for it")]
    found: List[LintFinding] = []
    for leader in facts.dead_blocks():
        found.append(LintFinding(
            "warn", "dead-block", name, leader,
            f"block at pc {leader} is unreachable from entry"))
    for pc, kind, message in facts.range_notes:
        severity = "warn" if kind == "null-access" else "info"
        found.append(LintFinding(severity, kind, name, pc, message))
    for pc, local in facts.maybe_uninit:
        found.append(LintFinding(
            "info", "read-before-store", name, pc,
            f"local {local} may be read before any store "
            "(reads its type default)"))
    for pc, local in facts.dead_stores:
        found.append(LintFinding(
            "info", "dead-store", name, pc,
            f"store to local {local} is never read"))
    return found


def lint_bytecode_module(module, *, verify: bool = True,
                         table: Optional[FactsTable] = None
                         ) -> List[LintFinding]:
    """All findings for a ``BytecodeModule``, verifier first: an
    unverifiable module gets exactly one ``error`` finding and no
    dataflow findings (facts over ill-typed code prove nothing)."""
    if verify:
        try:
            verify_module(module)
        except BytecodeVerifyError as exc:
            return [LintFinding("error", "verify", module.name, None,
                                str(exc))]
    if table is None:
        table = module_facts(module)
    found: List[LintFinding] = []
    for name in module.functions:
        found.extend(_function_findings(table.get(name), name))
    order = {severity: rank for rank, severity in enumerate(SEVERITIES)}
    found.sort(key=lambda f: (order[f.severity], f.function, f.pc or 0))
    return found


def lint_artifact(artifact) -> List[LintFinding]:
    """Findings for an ``OfflineArtifact``, memoized on the artifact
    (the gate may see the same artifact once per deploy target)."""
    cached = getattr(artifact, "_pvi_lint_findings", None)
    if cached is not None:
        return cached
    findings = lint_bytecode_module(artifact.bytecode)
    artifact._pvi_lint_findings = findings
    return findings


def check_admission(artifact) -> List[LintFinding]:
    """Gate an artifact: raise :class:`AdmissionError` on any
    ``error`` finding, else return the (possibly empty) findings for
    the caller to surface."""
    findings = lint_artifact(artifact)
    if any(f.severity == "error" for f in findings):
        raise AdmissionError(artifact.name, findings)
    return findings
