"""Concurrent multi-target deployment with per-target memoization.

Deployment is the µproc-*specific* half of Figure 1: one JIT
invocation per ``(artifact, target, flow)`` triple.  The seed code ran
these serially, one target at a time; this manager fans a whole target
catalog out across a :class:`~concurrent.futures.ThreadPoolExecutor`
and memoizes every compiled image, so a triple is JIT-compiled at most
once per process no matter how many platforms, experiments or requests
ask for it.

In-flight deduplication: if two threads request the same triple
concurrently, the second blocks on the first's future instead of
compiling twice — the once-compile/many-deploy economics the paper
argues for, enforced under concurrency.

*Where* a compile runs is a pluggable axis: the pool drives a
:class:`~repro.service.executors.DeployExecutor` (thread pool by
default; worker processes for cold fan-out past the GIL; inline for
deterministic tests).  The memo, the in-flight dedup and the stats
all sit above that seam, so every executor serves identical images.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.offline import OfflineArtifact
from repro.core.online import select_bytecode
from repro.flows import Flow, as_flow
from repro.jit import compile_for_target
from repro.service.cache import SCHEMA_VERSION, artifact_fingerprint
from repro.service.executors import (
    DeployExecutor, Executorish, as_executor,
)
from repro.targets.machine import TargetDesc
from repro.targets.registry import Targetish, as_target

#: memoization key of one compiled image: (artifact hash, schema +
#: target cache key, flow cache key).  The target component is
#: ``TargetDesc.cache_key()`` (name + config digest) with the service
#: schema version alongside — two targets sharing a name but differing
#: in registers, cost model or backend must not alias to one image,
#: and a schema bump invalidates every image identity at once.  The
#: flow component is ``Flow.cache_key()`` (name + config digest), so a
#: custom flow — or a re-registered name with different knobs — is
#: cached under its own identity.
DeployKey = Tuple[str, str, str]

Flowish = Union[str, Flow]


@dataclass
class FlowDeployStats:
    """Per-flow share of the pool's traffic."""
    compiles: int = 0
    memo_hits: int = 0


@dataclass
class DeployStats:
    compiles: int = 0          # actual JIT invocations
    memo_hits: int = 0         # served from the image memo
    evictions: int = 0         # finished images dropped at capacity
    #: traffic broken down by flow name (custom flows included)
    by_flow: Dict[str, FlowDeployStats] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return self.compiles + self.memo_hits

    def _count(self, flow_name: str, hit: bool) -> None:
        entry = self.by_flow.setdefault(flow_name, FlowDeployStats())
        if hit:
            self.memo_hits += 1
            entry.memo_hits += 1
        else:
            self.compiles += 1
            entry.compiles += 1


class DeploymentPool:
    """Memoizing, concurrency-safe JIT front door.

    ``deploy_one`` compiles (or reuses) a single image; ``deploy_many``
    fans one artifact out over N targets through the pool's
    :class:`~repro.service.executors.DeployExecutor`;
    ``submit_many`` exposes the underlying futures (the async
    facade's seam).  The memo is bounded (LRU over finished images,
    ``max_images``) and failed compilations are never cached — a
    raising deploy re-runs on the next request instead of poisoning
    the triple.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 max_images: int = 512,
                 executor: Executorish = None):
        """``executor`` selects the execution substrate: an executor
        name (``"thread"`` / ``"process"`` / ``"inline"``), a
        :class:`~repro.service.executors.DeployExecutor` instance, or
        ``None`` for the default thread pool.  ``max_workers`` sizes
        the worker pool when the pool constructs the executor itself
        (deprecated in favour of passing a configured executor)."""
        if max_images < 1:
            raise ValueError("max_images must be >= 1")
        self._images: "OrderedDict[DeployKey, Future]" = OrderedDict()
        self._lock = threading.Lock()
        self.executor: DeployExecutor = as_executor(
            executor, max_workers=max_workers)
        self.max_images = max_images
        self.stats = DeployStats()

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True)

    # -- public API ---------------------------------------------------------

    def deploy_one(self, artifact: OfflineArtifact, target: Targetish,
                   flow: Flowish = "split"):
        return self._image_future(artifact, as_target(target),
                                  as_flow(flow))[0].result()

    def deploy_many(self, artifact: OfflineArtifact,
                    targets: Sequence[Targetish],
                    flow: Flowish = "split",
                    concurrent: bool = True) -> Dict[str, object]:
        """Compile ``artifact`` for every target; returns name -> image.

        Targets are descriptors or registered names.  Duplicate
        targets in the catalog collapse onto one compilation.
        ``concurrent=False`` degrades to a serial loop (the benchmark
        baseline and a debugging aid).
        """
        info = self.deploy_many_info(artifact, targets, flow,
                                     concurrent=concurrent)
        return {name: image for name, (image, _) in info.items()}

    def deploy_many_info(self, artifact: OfflineArtifact,
                         targets: Sequence[Targetish],
                         flow: Flowish = "split",
                         concurrent: bool = True) \
            -> Dict[str, Tuple[object, bool]]:
        """Like :meth:`deploy_many`, returning name -> (image, reused).

        ``reused`` is True when this call did not trigger the
        compilation — the image was memoized or already in flight on
        another thread's behalf.
        """
        flow = as_flow(flow)      # raises UnknownFlowError on a typo
        # ... and UnknownTargetError on a target typo, before any JIT
        targets = [as_target(target) for target in targets]
        if not concurrent:
            out = {}
            for target in targets:
                future, created = self._image_future(artifact, target,
                                                     flow)
                out[target.name] = (future.result(), not created)
            return out
        futures = self.submit_many(artifact, targets, flow)
        return {name: (future.result(), reused)
                for name, (future, reused) in futures.items()}

    def submit_many(self, artifact: OfflineArtifact,
                    targets: Sequence[Targetish],
                    flow: Flowish = "split") \
            -> Dict[str, Tuple[Future, bool]]:
        """Schedule the fan-out without blocking: name -> (future,
        reused).  This is the seam the async facade awaits on —
        futures carry the in-flight dedup, so however many concurrent
        callers (threads or coroutines) ask for a triple, it compiles
        once."""
        flow = as_flow(flow)
        futures: Dict[str, Tuple[Future, bool]] = {}
        for target in (as_target(target) for target in targets):
            future, created = self._image_future(artifact, target, flow)
            reused = futures.get(target.name, (None, True))[1] and \
                not created
            futures[target.name] = (future, reused)
        return futures

    def cached_image(self, artifact: OfflineArtifact, target: Targetish,
                     flow: Flowish = "split") -> Optional[object]:
        """The memoized image if it is already built, else ``None``
        (never triggers a compilation, never raises)."""
        key = self._key(artifact, as_target(target), as_flow(flow))
        with self._lock:
            future = self._images.get(key)
        if future is None or not future.done() or \
                future.exception() is not None:
            return None
        return future.result()

    def known_keys(self) -> List[DeployKey]:
        with self._lock:
            return list(self._images)

    def flow_stats(self) -> Dict[str, FlowDeployStats]:
        """Snapshot of the per-flow counters (copied under the lock —
        ``stats.by_flow`` itself is mutated by concurrent deploys)."""
        with self._lock:
            return {name: FlowDeployStats(entry.compiles,
                                          entry.memo_hits)
                    for name, entry in self.stats.by_flow.items()}

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _key(artifact: OfflineArtifact, target: TargetDesc,
             flow: Flow) -> DeployKey:
        return (artifact_fingerprint(artifact),
                f"{SCHEMA_VERSION}:{target.cache_key()}",
                flow.cache_key())

    def _image_future(self, artifact: OfflineArtifact, target: TargetDesc,
                      flow: Flow) -> Tuple[Future, bool]:
        """(future, created): ``created`` is True when this call
        submitted the compilation rather than joining an existing one.

        The memo slot is reserved under the lock with a placeholder
        future; the executor itself is invoked *outside* the lock —
        an inline executor compiles synchronously right here, and a
        compile must never run (or re-enter the pool) while the
        non-reentrant pool lock is held."""
        key = self._key(artifact, target, flow)
        with self._lock:
            future = self._images.get(key)
            if future is not None:
                self.stats._count(flow.name, hit=True)
                self._images.move_to_end(key)
                return future, False
            self.stats._count(flow.name, hit=False)
            future = Future()
            future.set_running_or_notify_cancel()
            self._images[key] = future
        # Registered before the executor fires so an already-finished
        # compile still settles; it runs outside the lock because
        # _settle needs the (non-reentrant) lock itself.
        future.add_done_callback(
            lambda done, key=key: self._settle(key, done))

        def _chain(done: Future, future: Future = future) -> None:
            try:
                result = done.result()
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)

        try:
            inner = self.executor.submit(self._compile, artifact,
                                         target, flow)
        except BaseException as exc:
            # A rejected submission (e.g. executor shut down) settles
            # the placeholder so the memo drops it and callers see
            # the error from future.result().
            future.set_exception(exc)
            return future, True
        inner.add_done_callback(_chain)
        return future, True

    def _settle(self, key: DeployKey, future: Future) -> None:
        """Drop failed compilations; bound the memo once settled."""
        with self._lock:
            if future.exception() is not None:
                if self._images.get(key) is future:
                    del self._images[key]
                return
            overflow = len(self._images) - self.max_images
            if overflow > 0:
                for victim in [k for k, f in self._images.items()
                               if f.done() and
                               f.exception() is None][:overflow]:
                    del self._images[victim]
                    self.stats.evictions += 1

    @staticmethod
    def _compile(artifact: OfflineArtifact, target: TargetDesc,
                 flow: Flow):
        # Dispatches through the target's registered backend.  No
        # eager predecode here: the fast engine predecodes lazily
        # and caches on the function object, so the first simulation
        # of a memoized image pays decode exactly once — warming
        # eagerly would tax the latency-sensitive cold-deploy path
        # instead (callers that want decode-free first dispatch can
        # use the backend's `warm` hook, or set PVI_JIT_PREDECODE).
        return compile_for_target(select_bytecode(artifact, flow),
                                  target, flow)
