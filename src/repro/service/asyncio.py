"""The asynchronous front end of the compilation service.

A serving layer absorbing deployment traffic for many heterogeneous
cores wants an *async* front door: requests arrive concurrently, most
of them are cache hits, and the expensive ones should coalesce rather
than stampede.  :class:`AsyncCompilationService` is that front door,
layered on the synchronous core's two dedup seams:

* the deployment pool's **in-flight future dedup** — every
  ``(artifact, target, flow)`` future is awaited with
  :func:`asyncio.wrap_future`, so a coroutine waiting on a compile
  never blocks the event loop and concurrent coroutines asking for
  the same triple share one compilation;
* **request coalescing** — two concurrent ``await submit(request)``
  calls with the same identity (artifact key x flow x target set)
  share one served task; the join is counted in
  ``ServiceStats.coalesced_requests``.

The offline compile (pure Python, potentially tens of milliseconds)
is pushed off the event loop with ``run_in_executor``.  Batch fan-out
is one ``asyncio.gather`` away::

    async with AsyncCompilationService() as service:
        results = await service.submit_batch(requests)

Both facades are thin wrappers over the same core — construct the
async service around an existing :class:`CompilationService` to share
its caches, or let it own a private one.
"""

from __future__ import annotations

import asyncio
import functools
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.offline import OfflineArtifact
from repro.flows import Flow, as_flow
from repro.service import CompilationService, artifact_key
from repro.service.requests import (
    CompileOutcome, CompileRequest, DeployResult,
)
from repro.targets.registry import Targetish, as_target

__all__ = ["AsyncCompilationService"]

#: a request's coalescing identity: everything that determines the
#: served result — artifact cache key, flow identity, target set and
#: the failure policy (a tolerant and a strict request must not join)
RequestKey = Tuple[str, str, Tuple[str, ...], bool]


class AsyncCompilationService:
    """``await``-able facade over a :class:`CompilationService` core.

    All methods must be called from a running event loop.  The
    instance is *not* loop-portable: like any asyncio object, use it
    within one loop (its in-flight task map holds loop-bound tasks).
    """

    def __init__(self, service: Optional[CompilationService] = None,
                 **service_kwargs):
        """Wrap an existing service (shared caches) or construct a
        private core from ``service_kwargs`` (same keywords as
        :class:`CompilationService`: ``cache_capacity``,
        ``persist_dir``, ``executor``, ``cache_shards``, ...)."""
        self._owns_core = service is None
        self.service = service if service is not None \
            else CompilationService(**service_kwargs)
        self._inflight: Dict[RequestKey, "asyncio.Task"] = {}

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Release the core's workers (only if this facade owns it)."""
        if self._owns_core:
            self.service.shutdown()

    async def __aenter__(self) -> "AsyncCompilationService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.shutdown()

    # -- pass-throughs ------------------------------------------------------

    @property
    def cache(self):
        return self.service.cache

    @property
    def pool(self):
        return self.service.pool

    def stats(self):
        return self.service.stats()

    # -- offline half -------------------------------------------------------

    async def compile(self, source: str, name: str = "module",
                      **options) -> CompileOutcome:
        """Offline-compile through the cache, off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.service.compile, source, name,
                                    **options))

    async def artifact(self, source: str, name: str = "module",
                       **options) -> OfflineArtifact:
        return (await self.compile(source, name, **options)).artifact

    # -- online half --------------------------------------------------------

    async def deploy_one(self, artifact: OfflineArtifact,
                         target: Targetish, flow="split"):
        """Compile (or reuse) one image, awaiting the pool's future
        instead of blocking a thread on it."""
        self.service._admit(artifact)
        start = time.perf_counter()
        futures = self.service.pool.submit_many(artifact, [target], flow)
        ((future, _),) = futures.values()
        try:
            return await asyncio.wrap_future(future)
        finally:
            self.service._add_deploy_latency(
                time.perf_counter() - start)

    async def deploy_many(self, artifact: OfflineArtifact,
                          targets: Sequence[Targetish],
                          flow="split") -> Dict[str, object]:
        """Fan one artifact out over a catalog; one gather, no
        blocked threads."""
        self.service._admit(artifact)
        start = time.perf_counter()
        futures = self.service.pool.submit_many(artifact, targets, flow)
        names = list(futures)
        try:
            images = await asyncio.gather(
                *(asyncio.wrap_future(futures[name][0])
                  for name in names))
        finally:
            self.service._add_deploy_latency(
                time.perf_counter() - start)
        return dict(zip(names, images))

    # -- batch API ----------------------------------------------------------

    async def submit(self, request: CompileRequest) -> DeployResult:
        """Serve one request; concurrent identical requests coalesce.

        The first caller creates the serving task; callers arriving
        while it is in flight await the *same* task (and are counted
        as coalesced), so a thundering herd of identical requests
        costs one offline compile and one fan-out.

        Two requests coalesce only when their *entire* identity
        matches — see :meth:`request_key`.  In particular the failure
        policy is part of the identity: a ``tolerate_failures=True``
        request must never join a strict request's serving task (the
        strict task raises on the first failing target, while the
        tolerant caller was promised a partial result — and vice
        versa, a strict caller must not receive a degraded result a
        tolerant task recorded).  Identical requests differing only
        in ``tolerate_failures`` are therefore served independently.
        """
        flow = as_flow(request.flow)
        key = self._request_key(request, flow)
        task = self._inflight.get(key)
        if task is None:
            task = asyncio.ensure_future(self._serve(request, flow))
            self._inflight[key] = task
            task.add_done_callback(
                lambda done, key=key: self._inflight.pop(key, None))
        else:
            # A join is still an incoming request: count it so the
            # requests denominator means the same thing through both
            # facades, then mark the coalescence.
            self.service._note_request()
            self.service._note_coalesced()
        # Shield: one caller's cancellation must not kill the shared
        # serving task other callers are awaiting.
        return await asyncio.shield(task)

    #: ``await service.deploy(request)`` — request-level alias of
    #: :meth:`submit`, the verb the redesign's API contract names
    deploy = submit

    async def submit_batch(self, requests: Iterable[CompileRequest]) \
            -> List[DeployResult]:
        """The batch front door: gather over :meth:`submit`, so the
        whole batch shares caches, dedup and coalescing."""
        return await asyncio.gather(
            *(self.submit(request) for request in requests))

    # -- introspection ------------------------------------------------------

    def request_key(self, request: CompileRequest) -> RequestKey:
        """The request's coalescing identity: artifact cache key x
        flow identity x sorted target set x failure policy.  Two
        concurrent :meth:`submit` calls share one serving task iff
        their keys are equal; anything that can change the served
        result — including ``tolerate_failures``, whose two settings
        promise different failure semantics — keeps them apart.  A
        serving edge uses this to detect joins before they happen
        (``request_key(r) in service.inflight_keys()``)."""
        return self._request_key(request, as_flow(request.flow))

    def inflight_keys(self):
        """Snapshot of the request keys currently being served (the
        coalescing map's keys).  Checking membership and then calling
        :meth:`submit` with no intervening ``await`` is join-exact:
        the map only changes from the event loop."""
        return set(self._inflight)

    # -- internals ----------------------------------------------------------

    def _request_key(self, request: CompileRequest,
                     flow: Flow) -> RequestKey:
        options = CompilationService.request_options(request, flow)
        return (
            artifact_key(request.source, request.name, options or None),
            flow.cache_key(),
            tuple(sorted(as_target(target).cache_key()
                         for target in request.targets)),
            request.tolerate_failures,
        )

    async def _serve(self, request: CompileRequest,
                     flow: Flow) -> DeployResult:
        core = self.service
        start = time.perf_counter()
        _, options = core._begin(request)
        loop = asyncio.get_running_loop()
        outcome = await loop.run_in_executor(
            None, functools.partial(core.compile, request.source,
                                    request.name, **options))
        core._admit(outcome.artifact)
        deploy_start = time.perf_counter()
        futures = core.pool.submit_many(outcome.artifact,
                                        request.targets, flow)
        names = list(futures)
        settled = await asyncio.gather(
            *(asyncio.wrap_future(futures[name][0]) for name in names),
            return_exceptions=True)
        info = {}
        for name, result in zip(names, settled):
            reused = futures[name][1]
            if isinstance(result, BaseException):
                if not request.tolerate_failures:
                    core._add_deploy_latency(
                        time.perf_counter() - deploy_start)
                    raise result
                info[name] = (None, reused, result)
            else:
                info[name] = (result, reused, None)
        core._settle_deploy_latency(time.perf_counter() - deploy_start,
                                    info)
        return core._build_result(request, flow, outcome, info, start)
