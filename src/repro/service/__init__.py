"""The compilation service: split compilation as a serving layer.

The paper's economics — expensive µproc-independent analysis offline,
cheap µproc-specific JIT online — only pay off if the offline work is
actually *reused*.  :class:`CompilationService` is the facade that
enforces the reuse:

* :mod:`repro.service.cache` — content-addressed artifact cache keyed
  by ``sha256(source, offline options)``, now N independently locked
  shards (key-hash routing, per-shard LRU + disk directories);
* :mod:`repro.service.executors` — the pluggable
  :class:`DeployExecutor` substrates a deployment compiles on
  (threads, worker processes, inline);
* :mod:`repro.service.deployment` — concurrent multi-target deployment
  with a per-``(artifact, target, flow)`` image memo and in-flight
  future dedup;
* :mod:`repro.service.requests` — the batch request/response API with
  hit/miss/latency accounting;
* :mod:`repro.service.asyncio` — the :class:`AsyncCompilationService`
  front end: ``await service.deploy(request)``, ``asyncio.gather``
  batch fan-out, and coalescing of concurrent identical requests.

Every higher layer (``core.online.deploy``, the platform
``DeploymentManager``, the KPN mapper, the experiment harness) can
route through one service instance so repeated flows hit the cache.

Both facades — this synchronous one and the async front end — are
thin wrappers over the same core: the sharded cache, the deployment
pool and the request assembly below.  All the pre-redesign names
(``CompilationService``, ``ArtifactCache``, ``DeploymentPool``,
``max_workers=``) keep working; ``max_workers`` is deprecated in
favour of handing the pool a configured executor
(``executor="thread" | "process" | "inline"`` or a
:class:`~repro.service.executors.DeployExecutor` instance).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint import AdmissionError, check_admission
from repro.core.offline import OfflineArtifact, offline_compile
from repro.flows import DEFAULT_PIPELINE, Flow, as_flow
from repro.service.cache import (
    ArtifactCache, CacheStats, SCHEMA_VERSION, artifact_fingerprint,
    artifact_key, canonical_options, deserialize_artifact,
    serialize_artifact,
)
from repro.service.deployment import DeploymentPool, DeployStats
from repro.service.executors import (
    DeployExecutor, Executorish, ExecutorStats, InlineExecutor,
    ProcessExecutor, ThreadExecutor, UnknownExecutorError, as_executor,
    executor_names,
)
from repro.service.requests import (
    CompileOutcome, CompileRequest, DeployResult, ServiceStats,
    TargetDeployment,
)
from repro.targets.registry import Targetish

__all__ = [
    "ArtifactCache", "CacheStats", "SCHEMA_VERSION",
    "artifact_key", "artifact_fingerprint",
    "canonical_options", "serialize_artifact", "deserialize_artifact",
    "DeploymentPool", "DeployStats",
    "DeployExecutor", "ExecutorStats", "ThreadExecutor",
    "ProcessExecutor", "InlineExecutor", "UnknownExecutorError",
    "as_executor", "executor_names",
    "CompileRequest", "CompileOutcome", "DeployResult",
    "TargetDeployment", "ServiceStats",
    "CompilationService", "AsyncCompilationService",
    "AdmissionError",
    "default_service", "reset_default_service",
]


class CompilationService:
    """Facade tying the artifact cache to the deployment pool.

    One instance per process is the intended shape (see
    :func:`default_service`); everything on it is safe to call from
    multiple threads.  Compilation of the *same* key racing on two
    threads is deduplicated in flight: the second caller joins the
    first's result instead of compiling twice (counted as a coalesced
    request).
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 cache_capacity: int = 64,
                 persist_dir: Optional[Path] = None,
                 max_workers: Optional[int] = None,
                 executor: Executorish = None,
                 cache_shards: Optional[int] = None,
                 lint: bool = True):
        """``executor`` picks the deployment substrate (name or
        :class:`DeployExecutor` instance; default thread pool) and
        ``cache_shards`` the artifact-cache shard count (default
        ``min(8, capacity)``).  ``max_workers`` is deprecated: it
        only sizes the worker pool when the service constructs the
        executor itself — pass a configured executor instead.
        ``lint=False`` disables the deploy-time admission gate (the
        dataflow-plane lint every artifact passes before any target
        compiles; see :mod:`repro.analysis.lint`)."""
        self.cache = cache if cache is not None else \
            ArtifactCache(cache_capacity, persist_dir,
                          shards=cache_shards)
        self.pool = DeploymentPool(max_workers=max_workers,
                                   executor=executor)
        self.lint = lint
        self._lint_findings: List[Dict[str, object]] = []
        self._lint_rejections = 0
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._coalesced = 0
        self._offline_latency = 0.0
        self._deploy_latency = 0.0
        #: wall time coalesced requests spent *waiting* on work some
        #: other request triggered — kept out of the latency totals
        #: above so they measure real compilation, not herd size
        self._coalesced_wait = 0.0
        #: in-flight offline compiles, keyed by artifact key — the
        #: offline-side mirror of the pool's future dedup
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()

    def shutdown(self) -> None:
        self.pool.shutdown()

    # -- offline half -------------------------------------------------------

    def compile(self, source: str, name: str = "module",
                **options) -> CompileOutcome:
        """Offline-compile through the cache.

        Concurrent calls for the same key coalesce: one thread runs
        the compiler, the rest block on its in-flight future and
        report a cache hit (they triggered no work).
        """
        start = time.perf_counter()
        key = artifact_key(source, name, options or None)
        artifact = self.cache.get(key)
        hit = artifact is not None
        joined = False
        if artifact is None:
            artifact, hit, joined = self._compile_deduped(
                key, source, name, options)
        latency = time.perf_counter() - start
        # A joiner's wall clock is time spent *waiting* on another
        # request's compile, not work this request performed — charge
        # it to the coalesced-wait bucket so the offline latency total
        # scales with compilations, not with herd size.
        with self._counter_lock:
            if joined:
                self._coalesced_wait += latency
            else:
                self._offline_latency += latency
        return CompileOutcome(artifact=artifact, key=key, cache_hit=hit,
                              latency=latency)

    def _compile_deduped(self, key: str, source: str, name: str,
                         options) -> Tuple[OfflineArtifact, bool, bool]:
        """Run (or join) the offline compile for one cache key.

        Returns ``(artifact, hit, joined)`` — ``joined`` is True when
        this call rode another thread's in-flight compilation (it
        triggered no work of its own).
        """
        with self._inflight_lock:
            future = self._inflight.get(key)
            joined = future is not None
            if not joined:
                future = Future()
                self._inflight[key] = future
        if joined:
            self._note_coalesced()
            return future.result(), True, True
        # Won the in-flight slot — but a previous holder may have
        # compiled and stored between our cache miss and now (it puts
        # before it releases the slot).  Re-check so a lost race costs
        # a lookup, not a recompile; peek is stat-free, so the miss
        # already counted stays the truth of this call.
        artifact = self.cache.peek(key)
        if artifact is not None:
            future.set_result(artifact)
            with self._inflight_lock:
                self._inflight.pop(key, None)
            self._note_coalesced()
            return artifact, True, True
        try:
            artifact = offline_compile(
                source, name, **canonical_options(options or None))
            # Remember the content address so deployment keys line up
            # with the cache key without re-encoding the modules.
            artifact._pvi_fingerprint = key
            self.cache.put(key, artifact)
        except BaseException as exc:
            future.set_exception(exc)
            # The future is never awaited again once evicted from the
            # in-flight map; silence the never-retrieved warning path.
            future.exception()
            raise
        else:
            future.set_result(artifact)
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
        return artifact, False, False

    def artifact(self, source: str, name: str = "module",
                 **options) -> OfflineArtifact:
        """Drop-in replacement for ``offline_compile`` (cached)."""
        return self.compile(source, name, **options).artifact

    # -- online half --------------------------------------------------------

    def _admit(self, artifact: OfflineArtifact) -> None:
        """The deploy-time admission gate: verify + lint the artifact
        before any target compiles.  ``error`` findings raise
        :class:`AdmissionError` (the structured diagnostic carries the
        findings); ``warn`` findings are surfaced once per artifact in
        ``ServiceStats.lint_findings``.  Findings are memoized on the
        artifact, so repeat deployments re-check nothing."""
        if not self.lint:
            return
        try:
            findings = check_admission(artifact)
        except AdmissionError:
            with self._counter_lock:
                self._lint_rejections += 1
            raise
        warns = [f.as_dict() for f in findings if f.severity == "warn"]
        if warns and not getattr(artifact, "_pvi_lint_surfaced", False):
            artifact._pvi_lint_surfaced = True
            with self._counter_lock:
                self._lint_findings.extend(warns)

    def deploy(self, artifact: OfflineArtifact, target: Targetish,
               flow="split"):
        """Compile (or reuse) one image for one target (descriptor or
        registered name); the compile runs on the pool's executor
        through the target's backend."""
        self._admit(artifact)
        start = time.perf_counter()
        image = self.pool.deploy_one(artifact, target, flow)
        with self._counter_lock:
            self._deploy_latency += time.perf_counter() - start
        return image

    def deploy_many(self, artifact: OfflineArtifact,
                    targets: Sequence[Targetish], flow="split",
                    concurrent: bool = True) -> Dict[str, object]:
        """Fan one artifact out over a target catalog (descriptors or
        registered names, mixed freely)."""
        self._admit(artifact)
        start = time.perf_counter()
        images = self.pool.deploy_many(artifact, targets, flow,
                                       concurrent=concurrent)
        with self._counter_lock:
            self._deploy_latency += time.perf_counter() - start
        return images

    # -- batch API ----------------------------------------------------------

    def submit(self, request: CompileRequest) -> DeployResult:
        """Serve one request end to end: cache, then fan-out.

        The flow is resolved through the registry up front (raising
        ``UnknownFlowError`` before any work happens), and its offline
        pipeline spec joins the artifact cache key, so flows with
        distinct pipelines get distinct cached artifacts.  With
        ``request.tolerate_failures`` a raising target is recorded on
        its :class:`TargetDeployment` instead of failing the request.
        """
        start = time.perf_counter()
        flow, options = self._begin(request)
        outcome = self.compile(request.source, request.name, **options)
        self._admit(outcome.artifact)
        deploy_start = time.perf_counter()
        futures = self.pool.submit_many(outcome.artifact,
                                        request.targets, flow)
        info = {}
        for name, (future, reused) in futures.items():
            try:
                info[name] = (future.result(), reused, None)
            except Exception as exc:
                if not request.tolerate_failures:
                    raise
                info[name] = (None, reused, exc)
        self._settle_deploy_latency(time.perf_counter() - deploy_start,
                                    info)
        return self._build_result(request, flow, outcome, info, start)

    def submit_batch(self, requests: Iterable[CompileRequest]) \
            -> List[DeployResult]:
        return [self.submit(request) for request in requests]

    # -- shared request plumbing (both facades) -----------------------------

    def _begin(self, request: CompileRequest):
        """Count the request and resolve its flow + offline options."""
        flow = as_flow(request.flow)
        self._note_request()
        return flow, self.request_options(request, flow)

    @staticmethod
    def request_options(request: CompileRequest,
                        flow: Flow) -> Dict[str, object]:
        """The offline options a request actually compiles under: the
        request's own options, with the flow's pipeline spec filled in
        when it differs from the default (this is what joins the
        artifact cache key)."""
        options = dict(request.options or {})
        if "pipeline" not in options and \
                flow.pipeline != DEFAULT_PIPELINE:
            options["pipeline"] = flow.pipeline
        return options

    def _build_result(self, request: CompileRequest, flow: Flow,
                      outcome: CompileOutcome, info, start: float) \
            -> DeployResult:
        """Assemble the DeployResult from collected fan-out results:
        ``info`` maps target name -> (image or None, reused, error)."""
        deployments = {}
        for name, (compiled, reused, error) in info.items():
            # memo_hit means this request did not trigger the JIT —
            # either the image was memoized or another caller's
            # in-flight compilation was joined; only a triggering
            # request is charged the JIT time.
            deployments[name] = TargetDeployment(
                target=name,
                compiled=compiled,
                memo_hit=reused,
                latency=0.0 if (reused or compiled is None) else sum(
                    f.jit_time for f in compiled.functions.values()),
                error=error)
        return DeployResult(
            name=request.name,
            artifact_key=outcome.key,
            artifact_cache_hit=outcome.cache_hit,
            offline_latency=outcome.latency,
            deployments=deployments,
            total_latency=time.perf_counter() - start,
            flow=flow.name,
            offline_pass_work=dict(
                outcome.artifact.pass_stats.work_by_pass))

    def _add_deploy_latency(self, seconds: float) -> None:
        with self._counter_lock:
            self._deploy_latency += seconds

    def _add_coalesced_wait(self, seconds: float) -> None:
        with self._counter_lock:
            self._coalesced_wait += seconds

    def _settle_deploy_latency(self, seconds: float, info) -> None:
        """Charge one fan-out's wall clock to the right bucket: a
        request whose every target rode the memo or an in-flight
        compile triggered no JIT work — its wait belongs to
        ``coalesced_wait``, not the deploy latency total."""
        if info and all(reused for (_c, reused, _e) in info.values()):
            self._add_coalesced_wait(seconds)
        else:
            self._add_deploy_latency(seconds)

    def _note_request(self) -> None:
        with self._counter_lock:
            self._requests += 1

    def _note_coalesced(self) -> None:
        with self._counter_lock:
            self._coalesced += 1

    # -- observability ------------------------------------------------------

    def stats(self) -> ServiceStats:
        cache = self.cache.stats
        pool = self.pool.stats
        executor = self.pool.executor
        return ServiceStats(
            artifact_hits=cache.hits,
            artifact_disk_hits=cache.disk_hits,
            artifact_misses=cache.misses,
            artifact_stores=cache.stores,
            artifact_evictions=cache.evictions,
            artifact_corrupt_entries=cache.corrupt_entries,
            artifact_io_errors=cache.io_errors,
            artifact_facts_warm=cache.facts_warm,
            deploy_compiles=pool.compiles,
            deploy_memo_hits=pool.memo_hits,
            deploy_evictions=pool.evictions,
            requests=self._requests,
            coalesced_requests=self._coalesced,
            total_offline_latency=self._offline_latency,
            total_deploy_latency=self._deploy_latency,
            total_coalesced_wait=self._coalesced_wait,
            lint_findings=list(self._lint_findings),
            lint_rejections=self._lint_rejections,
            deploy_by_flow={
                name: {"compiles": entry.compiles,
                       "memo_hits": entry.memo_hits}
                for name, entry in self.pool.flow_stats().items()},
            artifact_shards=[shard.as_dict()
                             for shard in self.cache.shard_stats()],
            deploy_executors={
                executor.name: executor.stats.as_dict()})


def __getattr__(name: str):
    # AsyncCompilationService lives in repro.service.asyncio;
    # importing it lazily here keeps `repro.service` the one-stop
    # namespace without dragging event-loop plumbing into every
    # synchronous consumer's import.
    if name == "AsyncCompilationService":
        from repro.service.asyncio import AsyncCompilationService
        return AsyncCompilationService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


_DEFAULT: Optional[CompilationService] = None
_DEFAULT_LOCK = threading.Lock()


def default_service() -> CompilationService:
    """The process-wide service instance (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = CompilationService()
        return _DEFAULT


def reset_default_service() -> None:
    """Drop the process-wide instance (tests use this for isolation)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown()
        _DEFAULT = None
