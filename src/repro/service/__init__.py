"""The compilation service: split compilation as a serving layer.

The paper's economics — expensive µproc-independent analysis offline,
cheap µproc-specific JIT online — only pay off if the offline work is
actually *reused*.  :class:`CompilationService` is the facade that
enforces the reuse:

* :mod:`repro.service.cache` — content-addressed artifact cache keyed
  by ``sha256(source, offline options)``, LRU in memory with optional
  on-disk persistence of the binary PVI encoding;
* :mod:`repro.service.deployment` — concurrent multi-target deployment
  with a per-``(artifact, target, flow)`` image memo;
* :mod:`repro.service.requests` — the batch request/response API with
  hit/miss/latency accounting.

Every higher layer (``core.online.deploy``, the platform
``DeploymentManager``, the KPN mapper, the experiment harness) can
route through one service instance so repeated flows hit the cache.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.offline import OfflineArtifact, offline_compile
from repro.flows import DEFAULT_PIPELINE, as_flow
from repro.service.cache import (
    ArtifactCache, CacheStats, SCHEMA_VERSION, artifact_fingerprint,
    artifact_key, canonical_options, deserialize_artifact,
    serialize_artifact,
)
from repro.service.deployment import DeploymentPool, DeployStats
from repro.service.requests import (
    CompileOutcome, CompileRequest, DeployResult, ServiceStats,
    TargetDeployment,
)
from repro.targets.registry import Targetish

__all__ = [
    "ArtifactCache", "CacheStats", "SCHEMA_VERSION",
    "artifact_key", "artifact_fingerprint",
    "canonical_options", "serialize_artifact", "deserialize_artifact",
    "DeploymentPool", "DeployStats",
    "CompileRequest", "CompileOutcome", "DeployResult",
    "TargetDeployment", "ServiceStats",
    "CompilationService", "default_service", "reset_default_service",
]


class CompilationService:
    """Facade tying the artifact cache to the deployment pool.

    One instance per process is the intended shape (see
    :func:`default_service`); everything on it is safe to call from
    multiple threads.  Compilation of the *same* key racing on two
    threads may run twice — both results are identical and the second
    store is idempotent, so this costs time, never correctness.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 cache_capacity: int = 64,
                 persist_dir: Optional[Path] = None,
                 max_workers: Optional[int] = None):
        self.cache = cache if cache is not None else \
            ArtifactCache(cache_capacity, persist_dir)
        self.pool = DeploymentPool(max_workers=max_workers)
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._offline_latency = 0.0
        self._deploy_latency = 0.0

    def shutdown(self) -> None:
        self.pool.shutdown()

    # -- offline half -------------------------------------------------------

    def compile(self, source: str, name: str = "module",
                **options) -> CompileOutcome:
        """Offline-compile through the cache."""
        start = time.perf_counter()
        key = artifact_key(source, name, options or None)
        artifact = self.cache.get(key)
        hit = artifact is not None
        if artifact is None:
            artifact = offline_compile(source, name,
                                       **canonical_options(options or None))
            # Remember the content address so deployment keys line up
            # with the cache key without re-encoding the modules.
            artifact._pvi_fingerprint = key
            self.cache.put(key, artifact)
        latency = time.perf_counter() - start
        with self._counter_lock:
            self._offline_latency += latency
        return CompileOutcome(artifact=artifact, key=key, cache_hit=hit,
                              latency=latency)

    def artifact(self, source: str, name: str = "module",
                 **options) -> OfflineArtifact:
        """Drop-in replacement for ``offline_compile`` (cached)."""
        return self.compile(source, name, **options).artifact

    # -- online half --------------------------------------------------------

    def deploy(self, artifact: OfflineArtifact, target: Targetish,
               flow="split"):
        """Compile (or reuse) one image for one target (descriptor or
        registered name); the compile runs on the target's backend."""
        start = time.perf_counter()
        image = self.pool.deploy_one(artifact, target, flow)
        with self._counter_lock:
            self._deploy_latency += time.perf_counter() - start
        return image

    def deploy_many(self, artifact: OfflineArtifact,
                    targets: Sequence[Targetish], flow="split",
                    concurrent: bool = True) -> Dict[str, object]:
        """Fan one artifact out over a target catalog (descriptors or
        registered names, mixed freely)."""
        start = time.perf_counter()
        images = self.pool.deploy_many(artifact, targets, flow,
                                       concurrent=concurrent)
        with self._counter_lock:
            self._deploy_latency += time.perf_counter() - start
        return images

    # -- batch API ----------------------------------------------------------

    def submit(self, request: CompileRequest) -> DeployResult:
        """Serve one request end to end: cache, then fan-out.

        The flow is resolved through the registry up front (raising
        ``UnknownFlowError`` before any work happens), and its offline
        pipeline spec joins the artifact cache key, so flows with
        distinct pipelines get distinct cached artifacts."""
        start = time.perf_counter()
        flow = as_flow(request.flow)
        with self._counter_lock:
            self._requests += 1
        options = dict(request.options or {})
        if "pipeline" not in options and \
                flow.pipeline != DEFAULT_PIPELINE:
            options["pipeline"] = flow.pipeline
        outcome = self.compile(request.source, request.name, **options)
        deploy_start = time.perf_counter()
        info = self.pool.deploy_many_info(outcome.artifact,
                                          request.targets, flow)
        with self._counter_lock:
            self._deploy_latency += time.perf_counter() - deploy_start
        deployments = {}
        for name, (compiled, reused) in info.items():
            # memo_hit means this request did not trigger the JIT —
            # either the image was memoized or another thread's
            # in-flight compilation was joined; only a triggering
            # request is charged the JIT time.
            deployments[name] = TargetDeployment(
                target=name,
                compiled=compiled,
                memo_hit=reused,
                latency=0.0 if reused else sum(
                    f.jit_time for f in compiled.functions.values()))
        return DeployResult(
            name=request.name,
            artifact_key=outcome.key,
            artifact_cache_hit=outcome.cache_hit,
            offline_latency=outcome.latency,
            deployments=deployments,
            total_latency=time.perf_counter() - start,
            flow=flow.name,
            offline_pass_work=dict(
                outcome.artifact.pass_stats.work_by_pass))

    def submit_batch(self, requests: Iterable[CompileRequest]) \
            -> List[DeployResult]:
        return [self.submit(request) for request in requests]

    # -- observability ------------------------------------------------------

    def stats(self) -> ServiceStats:
        cache = self.cache.stats
        pool = self.pool.stats
        return ServiceStats(
            artifact_hits=cache.hits,
            artifact_disk_hits=cache.disk_hits,
            artifact_misses=cache.misses,
            artifact_evictions=cache.evictions,
            deploy_compiles=pool.compiles,
            deploy_memo_hits=pool.memo_hits,
            requests=self._requests,
            total_offline_latency=self._offline_latency,
            total_deploy_latency=self._deploy_latency,
            deploy_by_flow={
                name: {"compiles": entry.compiles,
                       "memo_hits": entry.memo_hits}
                for name, entry in self.pool.flow_stats().items()})


_DEFAULT: Optional[CompilationService] = None
_DEFAULT_LOCK = threading.Lock()


def default_service() -> CompilationService:
    """The process-wide service instance (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = CompilationService()
        return _DEFAULT


def reset_default_service() -> None:
    """Drop the process-wide instance (tests use this for isolation)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown()
        _DEFAULT = None
