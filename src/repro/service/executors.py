"""Pluggable deployment executors: where a JIT compile actually runs.

The deployment pool used to *be* a thread pool; this module makes the
execution substrate a first-class, swappable axis — the
:class:`DeployExecutor` protocol — mirroring how flows and targets
became data in earlier redesigns.  Three implementations ship:

* :class:`ThreadExecutor` — today's behaviour and the default: a
  shared :class:`~concurrent.futures.ThreadPoolExecutor`.  Wins by
  memoization and by overlapping the non-Python parts; cold compiles
  of *distinct* triples still serialize on the GIL.
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.
  ProcessPoolExecutor` that ships the pickled artifact wire encoding
  plus the (frozen, picklable) ``TargetDesc`` and ``Flow`` across the
  process seam, compiles in the worker, and re-warms the predecode
  cache on return.  This is the one that parallelizes *cold* JIT
  fan-out past the GIL — the process-level parallelism the roadmap
  queued once ``Flow``/``PipelineSpec``/``JITOptions`` (PR 2) and
  ``TargetDesc`` (PR 4) became picklable.
* :class:`InlineExecutor` — runs the compile synchronously in the
  calling thread and returns an already-settled future.  Fully
  deterministic; the differential suite and unit tests use it to take
  scheduling out of the picture.

Every executor exposes the same ``submit(compile_fn, artifact,
target, flow) -> Future`` surface plus per-executor
:class:`ExecutorStats`, which the service aggregates into
``ServiceStats.deploy_executors``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import (
    Future, ProcessPoolExecutor, ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union


class UnknownExecutorError(KeyError, ValueError):
    """Raised when a deployment executor name is not registered;
    the message lists what *is* (matching ``UnknownFlowError`` /
    ``UnknownTargetError`` ergonomics)."""

    def __init__(self, name: object, known: Tuple[str, ...]):
        self.executor_name = name
        self.known = known
        message = (f"unknown deploy executor {name!r}; available "
                   f"executors: {', '.join(known) if known else '(none)'}")
        ValueError.__init__(self, message)

    def __str__(self) -> str:          # KeyError would repr() the args
        return self.args[0]


@dataclass
class ExecutorStats:
    """Per-executor traffic counters (live object; copy to snapshot)."""
    name: str = ""
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: images re-warmed on return from a worker (predecode + tier-2
    #: translation prepaid before the image is served), so a bench can
    #: assert that served calls never compile in-request
    warmed: int = 0

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.failed

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "submitted": self.submitted,
                "completed": self.completed, "failed": self.failed,
                "warmed": self.warmed, "in_flight": self.in_flight}


class DeployExecutor:
    """The protocol a deployment execution substrate must satisfy.

    ``submit`` schedules one JIT compilation and returns a
    :class:`concurrent.futures.Future` resolving to the compiled
    image; ``compile_fn(artifact, target, flow)`` is the pool's
    canonical compile entry point.  Implementations may run it
    anywhere (caller thread, worker thread, worker process) — the
    deployment pool's in-flight dedup and memoization sit *above*
    this seam, so an executor never sees the same triple twice while
    a compile is in flight.
    """

    #: the name ``as_executor`` resolves (and stats report)
    name = "executor"

    def __init__(self):
        self.stats = ExecutorStats(name=self.name)
        self._stats_lock = threading.Lock()

    def submit(self, compile_fn: Callable, artifact, target,
               flow) -> Future:
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        """Release worker resources (default: nothing to release)."""

    def _track(self, future: Future) -> Future:
        """Wire the per-executor counters onto one submitted future."""
        with self._stats_lock:
            self.stats.submitted += 1

        def _done(settled: Future) -> None:
            failed = settled.cancelled() or \
                settled.exception() is not None
            with self._stats_lock:
                if failed:
                    self.stats.failed += 1
                else:
                    self.stats.completed += 1

        future.add_done_callback(_done)
        return future


class InlineExecutor(DeployExecutor):
    """Run compiles synchronously in the submitting thread.

    Deterministic by construction (no scheduler, no worker state), so
    tests and the differential suite can rule out concurrency as a
    variable.  ``max_workers`` is accepted for constructor uniformity
    and ignored.
    """

    name = "inline"

    def __init__(self, max_workers: Optional[int] = None):
        super().__init__()

    def submit(self, compile_fn: Callable, artifact, target,
               flow) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            result = compile_fn(artifact, target, flow)
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)
        return self._track(future)


class ThreadExecutor(DeployExecutor):
    """The default substrate: a shared thread pool.

    Exactly the behaviour the pool always had — concurrent fan-out,
    GIL-bound cold compiles — now expressed through the protocol.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        super().__init__()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="pvi-deploy")

    def submit(self, compile_fn: Callable, artifact, target,
               flow) -> Future:
        return self._track(
            self._pool.submit(compile_fn, artifact, target, flow))

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


# ---------------------------------------------------------------------------
# the process executor and its worker half
# ---------------------------------------------------------------------------

#: worker-side artifact cache: fingerprint -> decoded artifact, so one
#: artifact fanned out over many targets is deserialized once per
#: worker, not once per target
_WORKER_ARTIFACTS: "OrderedDict[str, object]" = OrderedDict()
_WORKER_ARTIFACT_CAP = 8


def _worker_init(flows, targets) -> None:
    """Worker bootstrap: replicate the parent's registries.

    ``import repro.targets`` registers the built-in backends (native
    and the wasm32 stack backend); the parent's registered flows and
    targets — both plain frozen dataclasses — are re-registered so a
    compile of a runtime-registered flow/target resolves in the worker
    exactly as it did in the parent.  Required on spawn platforms,
    harmless (idempotent) under fork.
    """
    import repro.targets  # noqa: F401  (registers built-in backends)
    from repro.flows import register_flow
    from repro.targets.registry import register_target
    for flow in flows:
        register_flow(flow, replace=True)
    for target in targets:
        register_target(target, replace=True)


def _strip_predecode(image) -> None:
    """Drop predecode caches before the image crosses back.

    Predecode payloads are handler *closures* — unpicklable by design.
    The parent re-warms through the target backend's ``warm`` hook, so
    stripping costs nothing but the decode the parent prepays anyway.
    """
    for holder in (image, getattr(image, "module", None)):
        functions = getattr(holder, "functions", None)
        if not isinstance(functions, dict):
            continue
        for func in functions.values():
            if hasattr(func, "_predecode_cache"):
                del func._predecode_cache


def _compile_in_worker(wire: bytes, fingerprint: str, target, flow):
    """The worker-side compile: bytes in, picklable image out."""
    from repro.core.online import select_bytecode
    from repro.jit import compile_for_target
    from repro.service.cache import deserialize_artifact

    artifact = _WORKER_ARTIFACTS.get(fingerprint)
    if artifact is None:
        artifact = deserialize_artifact(wire)
        artifact._pvi_fingerprint = fingerprint
        _WORKER_ARTIFACTS[fingerprint] = artifact
        while len(_WORKER_ARTIFACTS) > _WORKER_ARTIFACT_CAP:
            _WORKER_ARTIFACTS.popitem(last=False)
    else:
        _WORKER_ARTIFACTS.move_to_end(fingerprint)
    image = compile_for_target(select_bytecode(artifact, flow), target,
                               flow)
    _strip_predecode(image)
    return image


#: parent-side wire-encoding cache bound (entries are full artifact
#: encodings — keep the working set, not every artifact ever shipped)
_WIRE_CACHE_CAP = 8


class ProcessExecutor(DeployExecutor):
    """Compile in worker *processes*: cold fan-out past the GIL.

    Each job ships ``(artifact wire bytes, fingerprint, TargetDesc,
    Flow)`` — all picklable by prior design — to a lazily created
    :class:`~concurrent.futures.ProcessPoolExecutor`; the worker
    decodes (once per artifact, cached), compiles through the target's
    registered backend, strips the unpicklable predecode closures and
    returns the image.  On return the parent re-warms predecode via
    the backend's ``warm`` hook, so memoized images still dispatch
    decode-free.

    ``compile_fn`` is ignored: the compile must be the canonical
    module-level path (a monkeypatched or closure-bound compile cannot
    cross the process seam).  Use :class:`InlineExecutor` or
    :class:`ThreadExecutor` when tests need to intercept the compile.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None,
                 warm_on_return: bool = True):
        super().__init__()
        self.max_workers = max_workers
        self.warm_on_return = warm_on_return
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        #: fingerprint -> serialized artifact, bounded — one encoding
        #: per in-rotation artifact however many targets it fans out
        #: to, without pinning wire bytes onto long-lived artifacts
        self._wires: "OrderedDict[str, bytes]" = OrderedDict()
        self._wire_lock = threading.Lock()
        #: warming runs here, NOT on the process pool's single
        #: result-handler thread — a warm there would serialize all
        #: warms and delay delivery of every other worker's result
        self._warm_pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                from repro.flows import registered_flows
                from repro.targets.registry import registered_targets
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_worker_init,
                    initargs=(registered_flows(), registered_targets()))
                self._warm_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="pvi-warm")
            return self._pool

    def _wire_for(self, artifact) -> Tuple[bytes, str]:
        from repro.service.cache import (
            artifact_fingerprint, serialize_artifact,
        )
        fingerprint = artifact_fingerprint(artifact)
        with self._wire_lock:
            wire = self._wires.get(fingerprint)
            if wire is not None:
                self._wires.move_to_end(fingerprint)
                return wire, fingerprint
        wire = serialize_artifact(artifact)
        with self._wire_lock:
            self._wires[fingerprint] = wire
            while len(self._wires) > _WIRE_CACHE_CAP:
                self._wires.popitem(last=False)
        return wire, fingerprint

    def submit(self, compile_fn: Callable, artifact, target,
               flow) -> Future:
        pool = self._ensure_pool()
        wire, fingerprint = self._wire_for(artifact)
        inner = pool.submit(_compile_in_worker, wire, fingerprint,
                            target, flow)
        outer: Future = Future()
        outer.set_running_or_notify_cancel()

        def _finish(done: Future) -> None:
            try:
                image = done.result()
            except BaseException as exc:
                outer.set_exception(exc)
                return
            if self.warm_on_return:
                try:
                    from repro.targets.registry import backend_for
                    backend_for(target).warm(image)
                except Exception:
                    pass   # warming is an optimization, never correctness
                else:
                    with self._stats_lock:
                        self.stats.warmed += 1
            outer.set_result(image)

        def _relay(done: Future) -> None:
            # Runs on the process pool's single result-handler thread:
            # do nothing heavy here — hand the (possibly expensive)
            # warm-and-settle to the warm pool so other workers'
            # results keep flowing.
            warm_pool = self._warm_pool
            if self.warm_on_return and warm_pool is not None:
                try:
                    warm_pool.submit(_finish, done)
                    return
                except RuntimeError:
                    pass            # warm pool shut down mid-flight
            _finish(done)

        inner.add_done_callback(_relay)
        return self._track(outer)

    def shutdown(self, wait: bool = True) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            warm_pool, self._warm_pool = self._warm_pool, None
        with self._wire_lock:
            self._wires.clear()
        # Process pool first: its result-handler callbacks are what
        # feed the warm pool, so draining it before the warm pool
        # closes keeps every in-flight future settling.
        if pool is not None:
            pool.shutdown(wait=wait)
        if warm_pool is not None:
            warm_pool.shutdown(wait=wait)


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------

#: name -> factory; factories accept ``max_workers=``
EXECUTOR_FACTORIES: Dict[str, Callable[..., DeployExecutor]] = {
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    InlineExecutor.name: InlineExecutor,
}

Executorish = Union[None, str, DeployExecutor]


def executor_names() -> Tuple[str, ...]:
    return tuple(EXECUTOR_FACTORIES)


def as_executor(executor: Executorish = None,
                max_workers: Optional[int] = None) -> DeployExecutor:
    """Resolve an executor argument: ``None`` (default thread pool),
    a known name, or a :class:`DeployExecutor` instance passed
    through unchanged."""
    if executor is None:
        return ThreadExecutor(max_workers=max_workers)
    if isinstance(executor, DeployExecutor):
        return executor
    factory = EXECUTOR_FACTORIES.get(executor) \
        if isinstance(executor, str) else None
    if factory is None:
        raise UnknownExecutorError(executor, executor_names())
    return factory(max_workers=max_workers)
