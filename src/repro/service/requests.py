"""Batch request/response types for the compilation service.

A :class:`CompileRequest` is the unit of work a client submits: one
program plus the set of targets it must land on.  The service answers
with a :class:`DeployResult` that carries the compiled images *and*
the observability data a serving layer needs — which stages were cache
hits, and how long each took.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.offline import OfflineArtifact
from repro.flows import Flow
from repro.targets.registry import Targetish


@dataclass
class CompileRequest:
    """One program headed for one or more targets under one flow.

    ``targets`` are descriptors or registered target names (mixed
    freely) and ``flow`` is a registered flow name or a
    :class:`~repro.flows.Flow` object; the flow's offline pipeline
    spec feeds the artifact cache key, so two flows with different
    pipelines never share an artifact entry.  Unknown target or flow
    names fail the request up front with the unified
    ``UnknownTargetError`` / ``UnknownFlowError``.
    """
    source: str
    name: str = "module"
    targets: Sequence[Targetish] = ()
    flow: Union[str, Flow] = "split"
    #: offline_compile keyword options (see DEFAULT_OFFLINE_OPTIONS);
    #: a 'pipeline' entry here overrides the flow's own pipeline spec
    options: Optional[Dict[str, object]] = None


@dataclass
class CompileOutcome:
    """The offline half of a request: the (possibly cached) artifact."""
    artifact: OfflineArtifact
    key: str                    # content address in the artifact cache
    cache_hit: bool
    latency: float              # seconds spent in this call


@dataclass
class TargetDeployment:
    """One target's share of a deployment fan-out."""
    target: str
    compiled: object            # the backend's image type
    memo_hit: bool              # image reused from the deployment memo
    latency: float


@dataclass
class DeployResult:
    """Everything the service produced for one request."""
    name: str
    artifact_key: str
    artifact_cache_hit: bool
    offline_latency: float
    deployments: Dict[str, TargetDeployment] = field(default_factory=dict)
    total_latency: float = 0.0
    #: which flow served the request (flow name)
    flow: str = "split"
    #: offline analysis work by pass for the served artifact — the
    #: per-pass instrumentation of the flow's offline pipeline
    offline_pass_work: Dict[str, int] = field(default_factory=dict)

    def image_for(self, target_name: str):
        return self.deployments[target_name].compiled

    @property
    def target_names(self) -> List[str]:
        return list(self.deployments)

    @property
    def fully_cached(self) -> bool:
        return self.artifact_cache_hit and \
            all(d.memo_hit for d in self.deployments.values())


@dataclass
class ServiceStats:
    """Aggregate service-level counters (snapshot, not live)."""
    artifact_hits: int = 0
    artifact_disk_hits: int = 0
    artifact_misses: int = 0
    artifact_evictions: int = 0
    deploy_compiles: int = 0
    deploy_memo_hits: int = 0
    requests: int = 0
    total_offline_latency: float = 0.0
    total_deploy_latency: float = 0.0
    #: deployment traffic per flow name: {flow: {"compiles": n,
    #: "memo_hits": m}} — registered custom flows appear here the
    #: moment they are first deployed
    deploy_by_flow: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def artifact_hit_rate(self) -> float:
        lookups = (self.artifact_hits + self.artifact_disk_hits +
                   self.artifact_misses)
        if lookups == 0:
            return 0.0
        return (self.artifact_hits + self.artifact_disk_hits) / lookups

    @property
    def deploy_hit_rate(self) -> float:
        total = self.deploy_compiles + self.deploy_memo_hits
        if total == 0:
            return 0.0
        return self.deploy_memo_hits / total
