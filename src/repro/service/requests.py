"""Batch request/response types for the compilation service.

A :class:`CompileRequest` is the unit of work a client submits: one
program plus the set of targets it must land on.  The service answers
with a :class:`DeployResult` that carries the compiled images *and*
the observability data a serving layer needs — which stages were cache
hits, and how long each took.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.offline import OfflineArtifact
from repro.flows import Flow
from repro.targets.registry import Targetish


@dataclass
class CompileRequest:
    """One program headed for one or more targets under one flow.

    ``targets`` are descriptors or registered target names (mixed
    freely) and ``flow`` is a registered flow name or a
    :class:`~repro.flows.Flow` object; the flow's offline pipeline
    spec feeds the artifact cache key, so two flows with different
    pipelines never share an artifact entry.  Unknown target or flow
    names fail the request up front with the unified
    ``UnknownTargetError`` / ``UnknownFlowError``.
    """
    source: str
    name: str = "module"
    targets: Sequence[Targetish] = ()
    flow: Union[str, Flow] = "split"
    #: offline_compile keyword options (see DEFAULT_OFFLINE_OPTIONS);
    #: a 'pipeline' entry here overrides the flow's own pipeline spec
    options: Optional[Dict[str, object]] = None
    #: when True, a target whose JIT raises is *recorded* (its
    #: :class:`TargetDeployment` carries the error and no image)
    #: instead of failing the whole request — partial fan-out
    #: semantics for a serving layer that should degrade, not drop
    tolerate_failures: bool = False


@dataclass
class CompileOutcome:
    """The offline half of a request: the (possibly cached) artifact."""
    artifact: OfflineArtifact
    key: str                    # content address in the artifact cache
    cache_hit: bool
    latency: float              # seconds spent in this call


@dataclass
class TargetDeployment:
    """One target's share of a deployment fan-out."""
    target: str
    compiled: object            # the backend's image type (None on error)
    memo_hit: bool              # image reused from the deployment memo
    latency: float
    #: the exception the JIT raised for this target, when the request
    #: tolerated failures; ``None`` on success
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DeployResult:
    """Everything the service produced for one request."""
    name: str
    artifact_key: str
    artifact_cache_hit: bool
    offline_latency: float
    deployments: Dict[str, TargetDeployment] = field(default_factory=dict)
    total_latency: float = 0.0
    #: which flow served the request (flow name)
    flow: str = "split"
    #: offline analysis work by pass for the served artifact — the
    #: per-pass instrumentation of the flow's offline pipeline
    offline_pass_work: Dict[str, int] = field(default_factory=dict)

    def image_for(self, target_name: str):
        deployment = self.deployments[target_name]
        if deployment.error is not None:
            raise deployment.error
        return deployment.compiled

    @property
    def target_names(self) -> List[str]:
        return list(self.deployments)

    @property
    def failed_targets(self) -> List[str]:
        """Targets whose deployment errored (tolerated failures)."""
        return [name for name, d in self.deployments.items()
                if d.error is not None]

    @property
    def errors(self) -> Dict[str, BaseException]:
        return {name: d.error for name, d in self.deployments.items()
                if d.error is not None}

    @property
    def fully_cached(self) -> bool:
        """Did this request cost zero compilation anywhere?

        A deployment that *errored* is not cached work — a failed
        target means the request cannot be fully cached, whatever the
        memo said on the way in.
        """
        return self.artifact_cache_hit and \
            all(d.memo_hit and d.error is None
                for d in self.deployments.values())


@dataclass
class ServiceStats:
    """Aggregate service-level counters (snapshot, not live).

    Aggregates roll up from the sharded artifact cache (per-shard
    counters in ``artifact_shards``) and the deployment executor
    (per-executor counters in ``deploy_executors``); ``as_dict()`` is
    the machine-readable form the benches emit into ``BENCH_*.json``.
    """
    artifact_hits: int = 0
    artifact_disk_hits: int = 0
    artifact_misses: int = 0
    artifact_stores: int = 0
    artifact_evictions: int = 0
    artifact_corrupt_entries: int = 0
    #: persist-side I/O failures (unreadable or unwritable entries) —
    #: distinct from decode corruption: the entry may be fine, the
    #: filesystem is not, so nothing is self-healed
    artifact_io_errors: int = 0
    #: dataflow-facts tables revived from the disk cache alongside
    #: their artifact — analysis runs a warm service start skipped
    artifact_facts_warm: int = 0
    deploy_compiles: int = 0
    deploy_memo_hits: int = 0
    deploy_evictions: int = 0
    requests: int = 0
    #: requests answered by joining another request already in flight
    #: (async facade coalescing + the sync offline in-flight dedup)
    coalesced_requests: int = 0
    total_offline_latency: float = 0.0
    total_deploy_latency: float = 0.0
    #: wall clock spent by coalesced requests *waiting* on work some
    #: other request was already doing — kept out of the latency
    #: totals above so those reflect real compilation effort
    total_coalesced_wait: float = 0.0
    #: warn-severity admission-lint findings surfaced at deploy time
    #: (one entry per finding, ``LintFinding.as_dict()`` form; each
    #: artifact's findings are recorded once, however many targets it
    #: fans out to).  ``error`` findings never appear here — they
    #: reject the deployment with ``AdmissionError`` and are counted
    #: in ``lint_rejections``.
    lint_findings: List[Dict[str, object]] = field(default_factory=list)
    #: deployments refused by the admission gate (error findings)
    lint_rejections: int = 0
    #: deployment traffic per flow name: {flow: {"compiles": n,
    #: "memo_hits": m}} — registered custom flows appear here the
    #: moment they are first deployed
    deploy_by_flow: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-shard artifact cache counters, in shard order
    artifact_shards: List[Dict[str, object]] = field(default_factory=list)
    #: per-executor deployment counters: {executor name: counters}
    deploy_executors: Dict[str, Dict[str, object]] = \
        field(default_factory=dict)

    @property
    def artifact_hit_rate(self) -> float:
        lookups = (self.artifact_hits + self.artifact_disk_hits +
                   self.artifact_misses)
        if lookups == 0:
            return 0.0
        return (self.artifact_hits + self.artifact_disk_hits) / lookups

    @property
    def deploy_hit_rate(self) -> float:
        total = self.deploy_compiles + self.deploy_memo_hits
        if total == 0:
            return 0.0
        return self.deploy_memo_hits / total

    def as_dict(self) -> Dict[str, object]:
        """The full snapshot as plain JSON-able data (bench output,
        dashboards, log lines)."""
        return {
            "requests": self.requests,
            "coalesced_requests": self.coalesced_requests,
            "artifact": {
                "hits": self.artifact_hits,
                "disk_hits": self.artifact_disk_hits,
                "misses": self.artifact_misses,
                "stores": self.artifact_stores,
                "evictions": self.artifact_evictions,
                "corrupt_entries": self.artifact_corrupt_entries,
                "io_errors": self.artifact_io_errors,
                "facts_warm": self.artifact_facts_warm,
                "hit_rate": self.artifact_hit_rate,
                "shards": list(self.artifact_shards),
            },
            "deploy": {
                "compiles": self.deploy_compiles,
                "memo_hits": self.deploy_memo_hits,
                "evictions": self.deploy_evictions,
                "hit_rate": self.deploy_hit_rate,
                "by_flow": {name: dict(entry) for name, entry
                            in self.deploy_by_flow.items()},
                "executors": {name: dict(entry) for name, entry
                              in self.deploy_executors.items()},
            },
            "lint": {
                "findings": [dict(entry) for entry in
                             self.lint_findings],
                "rejections": self.lint_rejections,
            },
            "latency": {
                "offline_s": self.total_offline_latency,
                "deploy_s": self.total_deploy_latency,
                "coalesced_wait_s": self.total_coalesced_wait,
            },
        }
