"""Content-addressed artifact cache for the compilation service.

The offline step is the expensive, µproc-independent half of Figure 1;
its whole point is to run *once* per program and be reused by every
deployment.  This module makes that concrete: offline artifacts are
keyed by ``sha256(source, offline options)`` so any two requests for
the same compilation share one artifact, across an in-memory LRU and
(optionally) an on-disk store that survives the process.

The LRU is *sharded*: N independently locked slices with key-hash
routing, per-shard recency and per-shard disk directories, so
concurrent lookups of different keys no longer serialize on one
global lock (the hot path of a service absorbing deployment traffic
for many cores at once).

Persistence reuses the binary PVI serialization (`encode_module` /
`decode_module`) for both bytecode flavours, plus a small JSON metadata
sidecar carrying the fields of :class:`OfflineArtifact` that the
bytecode itself does not record (analysis work, vectorized functions).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.bytecode.encode import VERSION as PVI_ENCODER_VERSION
from repro.bytecode.encode import decode_module, encode_module
from repro.bytecode.varint import read_bytes, write_bytes
from repro.core.offline import (
    OfflineArtifact, effective_pipeline, offline_compile,
)
from repro.opt import PassStats

#: magic prefix of a persisted artifact file (PVI Artifact, container
#: layout 2: metadata sidecar carries schema/source/pipeline/per-pass)
ARTIFACT_MAGIC = b"PVA2"

#: full schema identity of anything this module writes or keys:
#: the artifact container layout plus the PVI wire-format version.
#: It is embedded in every cache key and persisted entry, so artifacts
#: written by an older encoding self-invalidate (key miss on lookup,
#: rejection on decode) instead of decoding garbage.
SCHEMA_VERSION = f"pva2+pvi{PVI_ENCODER_VERSION}"

#: default options of :func:`repro.core.offline.offline_compile` — the
#: key canonicalization fills these in so explicit-default and implicit
#: calls hash identically.  Derived from the signature (its options are
#: exactly the keyword-only parameters) so adding or re-defaulting an
#: offline option can never silently desynchronize the cache key.
DEFAULT_OFFLINE_OPTIONS: Dict[str, object] = {
    param.name: param.default
    for param in inspect.signature(offline_compile).parameters.values()
    if param.kind == inspect.Parameter.KEYWORD_ONLY
}


def canonical_options(options: Optional[Dict[str, object]] = None) \
        -> Dict[str, object]:
    """Fill defaults and reject unknown offline options.

    A ``pipeline`` option (a :class:`~repro.flows.PipelineSpec` or its
    dict form) is normalized to a validated spec; it overrides the
    legacy boolean knobs exactly as ``offline_compile`` would.
    """
    merged = dict(DEFAULT_OFFLINE_OPTIONS)
    if options:
        unknown = set(options) - set(DEFAULT_OFFLINE_OPTIONS)
        if unknown:
            raise ValueError(f"unknown offline options {sorted(unknown)}; "
                             f"have {sorted(DEFAULT_OFFLINE_OPTIONS)}")
        merged.update(options)
    hotness = merged["hotness"]
    if hotness is not None:
        merged["hotness"] = {name: int(w)
                             for name, w in sorted(hotness.items())}
    if merged.get("pipeline") is not None:
        merged["pipeline"] = effective_pipeline(merged["pipeline"])
    return merged


def _json_options(merged: Dict[str, object]) -> Dict[str, object]:
    """Canonicalized options in JSON-able form (for key hashing)."""
    out = dict(merged)
    pipeline = out.get("pipeline")
    if pipeline is not None:
        out["pipeline"] = pipeline.to_dict()
    return out


def artifact_key(source: str, name: str = "module",
                 options: Optional[Dict[str, object]] = None) -> str:
    """Content address of one offline compilation.

    Covers everything that determines the artifact: the program text,
    the module name (it is embedded in the bytecode), the full
    canonicalized option set — including the pipeline spec, so every
    flow with its own offline pipeline gets its own entry — and the
    encoder schema version, so entries persisted by an older encoding
    can never be served to a newer decoder.
    """
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "source": source, "name": name,
         "options": _json_options(canonical_options(options))},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def artifact_fingerprint(artifact: OfflineArtifact) -> str:
    """Content address of an already-built artifact (deployment key).

    Used when a caller hands the deployment layer an artifact that did
    not come through the cache: the hash of both encoded bytecode
    flavours identifies it exactly.  Memoized on the artifact object —
    encoding is linear but not free.
    """
    cached = getattr(artifact, "_pvi_fingerprint", None)
    if cached is None:
        digest = hashlib.sha256()
        digest.update(encode_module(artifact.bytecode))
        digest.update(encode_module(artifact.scalar_bytecode))
        cached = digest.hexdigest()
        artifact._pvi_fingerprint = cached
    return cached


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def _module_facts_wire(module) -> Dict[str, object]:
    """Canonical wire form of one module's per-function facts.

    Facts not yet computed are computed *here* — persisting an
    artifact is exactly the offline moment the paper wants analysis
    spent at, so the disk entry (and the process-executor wire) always
    carries a full table and every consumer downstream of a revival
    skips the analysis plane entirely."""
    from repro.analysis.facts import bytecode_facts, facts_to_wire
    wire = {}
    for func in module.functions.values():
        facts, _ = bytecode_facts(func)
        wire[func.name] = facts_to_wire(facts)
    return wire


def _restore_module_facts(module, wire) -> int:
    """Attach persisted facts to a decoded module's functions; returns
    the number of functions whose analysis was skipped.  A function
    whose wire entry is missing simply recomputes lazily."""
    from repro.analysis.facts import _facts_token, facts_from_wire
    restored = 0
    for func in module.functions.values():
        entry = wire.get(func.name, _MISSING)
        if entry is _MISSING:
            continue
        func._pvi_facts_cache = (_facts_token(func),
                                 facts_from_wire(entry))
        restored += 1
    return restored


_MISSING = object()


def serialize_artifact(artifact: OfflineArtifact) -> bytes:
    """Artifact -> bytes: magic, JSON metadata sidecar, both modules.

    The sidecar records the schema version, the source text, the
    pipeline spec that produced the artifact, the per-pass
    instrumentation summary, and the dataflow plane's proven-facts
    tables for both bytecode flavours — so a disk-revived artifact is
    a faithful stand-in for the original (and an entry written under
    any other schema self-invalidates on decode), and a warm service
    start pays zero analysis before tier-2 compiles."""
    from repro.analysis.facts import FACTS_SCHEMA
    meta = {
        "schema": SCHEMA_VERSION,
        "name": artifact.name,
        "offline_work": artifact.offline_work,
        "offline_time": artifact.offline_time,
        "vectorized_functions": list(artifact.vectorized_functions),
        "source": artifact.source,
        "pipeline": artifact.pipeline.to_dict()
        if artifact.pipeline is not None else None,
        "hotness": artifact.hotness,
        "per_pass": artifact.pass_stats.summary_dict(),
        "facts": {
            "schema": FACTS_SCHEMA,
            "bytecode": _module_facts_wire(artifact.bytecode),
            "scalar": _module_facts_wire(artifact.scalar_bytecode),
        },
    }
    out = bytearray()
    out.extend(ARTIFACT_MAGIC)
    write_bytes(out, json.dumps(meta, sort_keys=True).encode("utf-8"))
    write_bytes(out, encode_module(artifact.bytecode))
    write_bytes(out, encode_module(artifact.scalar_bytecode))
    return bytes(out)


def deserialize_artifact(raw: bytes) -> OfflineArtifact:
    if raw[:4] != ARTIFACT_MAGIC:
        raise ValueError("not a persisted PVI artifact (bad magic)")
    pos = 4
    meta_raw, pos = read_bytes(raw, pos)
    meta = json.loads(meta_raw.decode("utf-8"))
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"persisted artifact schema {schema!r} does not match this "
            f"encoder ({SCHEMA_VERSION!r}); entry is stale")
    bytecode_raw, pos = read_bytes(raw, pos)
    scalar_raw, pos = read_bytes(raw, pos)
    pipeline = meta.get("pipeline")
    # disk-revived modules are as immutable as freshly compiled
    # ones: freeze so the VM's call inline caching applies
    bytecode = decode_module(bytecode_raw).freeze()
    scalar = decode_module(scalar_raw).freeze()
    facts_meta = meta.get("facts")
    facts_restored = 0
    if facts_meta is not None:
        from repro.analysis.facts import FACTS_SCHEMA
        # a table written by another analysis plane never validates;
        # the facts just recompute lazily (never a decode failure)
        if facts_meta.get("schema") == FACTS_SCHEMA:
            facts_restored = (
                _restore_module_facts(bytecode,
                                      facts_meta.get("bytecode", {})) +
                _restore_module_facts(scalar,
                                      facts_meta.get("scalar", {})))
    artifact = OfflineArtifact(
        name=meta["name"],
        bytecode=bytecode,
        scalar_bytecode=scalar,
        offline_work=int(meta["offline_work"]),
        offline_time=float(meta["offline_time"]),
        vectorized_functions=list(meta["vectorized_functions"]),
        source=meta.get("source"),
        pipeline=effective_pipeline(pipeline)
        if pipeline is not None else None,
        hotness={name: int(w)
                 for name, w in meta["hotness"].items()}
        if meta.get("hotness") else None,
        pass_stats=PassStats.from_summary(meta.get("per_pass", {})),
    )
    #: functions whose persisted facts made a later analysis request a
    #: cache hit — the shard rolls this into ``CacheStats.facts_warm``
    artifact._pvi_facts_revived = facts_restored
    return artifact


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    hits: int = 0              # served from the in-memory LRU
    disk_hits: int = 0         # revived from the persistence directory
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0   # undecodable disk entries (self-healed)
    #: I/O failures against the persistence directory (permission
    #: denied, disk full, ...).  Distinct from ``corrupt_entries``:
    #: the entry bytes were never seen, so nothing is unlinked and the
    #: lookup degrades to a miss — a climbing count here is how an
    #: unreadable/unwritable persist dir shows up instead of
    #: masquerading as an endless cache-miss recompile loop.
    io_errors: int = 0
    #: functions revived from disk *with* their persisted dataflow
    #: facts attached — each one is an analysis run a warm service
    #: start skipped (surfaced as ``facts_warm`` in service stats)
    facts_warm: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.hits + self.disk_hits) / lookups

    def add(self, other: "CacheStats") -> "CacheStats":
        """Accumulate another counter set (shard aggregation)."""
        self.hits += other.hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.corrupt_entries += other.corrupt_entries
        self.io_errors += other.io_errors
        self.facts_warm += other.facts_warm
        return self

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "evictions": self.evictions,
                "corrupt_entries": self.corrupt_entries,
                "io_errors": self.io_errors,
                "facts_warm": self.facts_warm,
                "hit_rate": self.hit_rate}


#: shard-count ceiling when the caller does not choose one; the
#: auto-pick never exceeds the capacity (a shard must hold >= 1 entry)
DEFAULT_CACHE_SHARDS = 8

#: disk-layout fan-out, *fixed* regardless of the in-memory shard
#: count: a key's ``shard-NN/`` directory depends only on the key, so
#: a persistence directory written under any shard/capacity
#: configuration stays fully readable under any other
DISK_SHARDS = 16


class _CacheShard:
    """One independently locked slice of the cache: its own LRU, its
    own stats.  All the locking lives here — two lookups that route
    to different shards never contend.  Disk paths come from the
    owning cache (``path_for`` / ``legacy_path_for``), whose layout
    is shard-count independent."""

    __slots__ = ("capacity", "path_for", "legacy_path_for", "stats",
                 "_entries", "_lock")

    def __init__(self, capacity: int, path_for, legacy_path_for):
        self.capacity = capacity
        self.path_for = path_for
        #: pre-shard flat layout, probed as a read-only fallback so a
        #: persistence directory written before sharding still serves
        self.legacy_path_for = legacy_path_for
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, OfflineArtifact]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[OfflineArtifact]:
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return artifact
        artifact = self._load_persisted(key)
        if artifact is not None:
            # The cache key IS the content address; pin it so the
            # deployment memo sees the same identity as the in-memory
            # copy it replaces.
            artifact._pvi_fingerprint = key
            with self._lock:
                self.stats.disk_hits += 1
                self.stats.facts_warm += getattr(
                    artifact, "_pvi_facts_revived", 0)
                self._insert(key, artifact)
            return artifact
        with self._lock:
            self.stats.misses += 1
        return None

    def peek(self, key: str) -> Optional[OfflineArtifact]:
        """Stat-free, recency-free in-memory lookup (the in-flight
        dedup's lost-race re-check)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, artifact: OfflineArtifact) -> None:
        if getattr(artifact, "_pvi_fingerprint", None) is None:
            artifact._pvi_fingerprint = key
        with self._lock:
            self.stats.stores += 1
            self._insert(key, artifact)
        path = self.path_for(key)
        if path is not None and not path.exists():
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(serialize_artifact(artifact))
            except OSError:
                # Persistence is an optimization; a read-only persist
                # dir must not fail the compile that produced the
                # artifact.  Surface it instead of looping silently.
                with self._lock:
                    self.stats.io_errors += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- internals ----------------------------------------------------------

    def _insert(self, key: str, artifact: OfflineArtifact) -> None:
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _load_persisted(self, key: str) -> Optional[OfflineArtifact]:
        for path in (self.path_for(key), self.legacy_path_for(key)):
            if path is None or not path.exists():
                continue
            try:
                raw = path.read_bytes()
            except FileNotFoundError:
                continue                # raced with another unlink
            except OSError:
                # The entry could not be *read* (permissions, I/O
                # error) — that says nothing about its content, so it
                # is neither corrupt nor healed by deletion.  Count it
                # where operators can see it (``io_errors``, surfaced
                # through ``ServiceStats``) and degrade this lookup to
                # a miss; recompilation keeps the service alive.
                with self._lock:
                    self.stats.io_errors += 1
                continue
            try:
                return deserialize_artifact(raw)
            except Exception:
                # A truncated or corrupted entry degrades to a miss
                # (and a recompile overwrites it); it must never take
                # the service down.  Self-heal by deleting the entry —
                # but a deletion *failure* is an I/O problem, not more
                # corruption.
                with self._lock:
                    self.stats.corrupt_entries += 1
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    with self._lock:
                        self.stats.io_errors += 1
        return None


class ArtifactCache:
    """Sharded in-memory LRU over content-addressed artifacts, with
    optional on-disk persistence.

    The cache is split into ``shards`` independently locked
    :class:`_CacheShard` slices; a key is routed by a stable hash of
    its text (CRC32 — deterministic across processes, so disk entries
    land in the same shard directory every run).  ``get``/``put`` are
    thread-safe and, across shards, contention-free: the single global
    lock the service's hot path used to funnel through is gone.

    ``capacity`` is the *total* entry budget, divided evenly across
    shards (per-shard LRU; the per-shard slice rounds *up*, so the
    effective bound can exceed ``capacity`` by at most ``shards - 1``
    entries).  Disk entries outlive LRU eviction, so an
    evicted artifact costs a decode instead of a full recompilation.
    The on-disk layout (``shard-NN/`` by ``crc32(key) % DISK_SHARDS``)
    is deliberately *independent* of the in-memory shard count, so one
    persistence directory serves every shard/capacity configuration;
    a flat pre-shard directory is still probed as a read fallback.

    ``shards=1`` restores the exact single-LRU behaviour (strict
    global recency ordering), which a few tests rely on.
    """

    def __init__(self, capacity: int = 64,
                 persist_dir: Optional[Path] = None,
                 shards: Optional[int] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if shards is None:
            shards = min(DEFAULT_CACHE_SHARDS, capacity)
        if shards < 1:
            raise ValueError("cache shard count must be >= 1")
        self.capacity = capacity
        self.shard_count = shards
        self.persist_dir = Path(persist_dir) if persist_dir else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
        per_shard = -(-capacity // shards)            # ceil division
        self._shards = tuple(
            _CacheShard(per_shard, self._disk_path, self._legacy_path)
            for _ in range(shards))

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.persist_dir is None:
            return None
        index = zlib.crc32(key.encode("utf-8")) % DISK_SHARDS
        return self.persist_dir / f"shard-{index:02d}" / f"{key}.pvia"

    def _legacy_path(self, key: str) -> Optional[Path]:
        if self.persist_dir is None:
            return None
        return self.persist_dir / f"{key}.pvia"

    def _shard_for(self, key: str) -> _CacheShard:
        if self.shard_count == 1:
            return self._shards[0]
        return self._shards[
            zlib.crc32(key.encode("utf-8")) % self.shard_count]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: str) -> bool:
        return key in self._shard_for(key)

    def get(self, key: str) -> Optional[OfflineArtifact]:
        return self._shard_for(key).get(key)

    def peek(self, key: str) -> Optional[OfflineArtifact]:
        """In-memory lookup with no stats and no recency update."""
        return self._shard_for(key).peek(key)

    def put(self, key: str, artifact: OfflineArtifact) -> None:
        self._shard_for(key).put(key, artifact)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across every shard (snapshot)."""
        total = CacheStats()
        for shard in self._shards:
            total.add(shard.stats)
        return total

    def shard_stats(self) -> List[CacheStats]:
        """Per-shard counter snapshots, in shard order."""
        return [CacheStats().add(shard.stats)
                for shard in self._shards]
