"""Content-addressed artifact cache for the compilation service.

The offline step is the expensive, µproc-independent half of Figure 1;
its whole point is to run *once* per program and be reused by every
deployment.  This module makes that concrete: offline artifacts are
keyed by ``sha256(source, offline options)`` so any two requests for
the same compilation share one artifact, across an in-memory LRU and
(optionally) an on-disk store that survives the process.

Persistence reuses the binary PVI serialization (`encode_module` /
`decode_module`) for both bytecode flavours, plus a small JSON metadata
sidecar carrying the fields of :class:`OfflineArtifact` that the
bytecode itself does not record (analysis work, vectorized functions).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.bytecode.encode import VERSION as PVI_ENCODER_VERSION
from repro.bytecode.encode import decode_module, encode_module
from repro.bytecode.varint import read_bytes, write_bytes
from repro.core.offline import (
    OfflineArtifact, effective_pipeline, offline_compile,
)
from repro.opt import PassStats

#: magic prefix of a persisted artifact file (PVI Artifact, container
#: layout 2: metadata sidecar carries schema/source/pipeline/per-pass)
ARTIFACT_MAGIC = b"PVA2"

#: full schema identity of anything this module writes or keys:
#: the artifact container layout plus the PVI wire-format version.
#: It is embedded in every cache key and persisted entry, so artifacts
#: written by an older encoding self-invalidate (key miss on lookup,
#: rejection on decode) instead of decoding garbage.
SCHEMA_VERSION = f"pva2+pvi{PVI_ENCODER_VERSION}"

#: default options of :func:`repro.core.offline.offline_compile` — the
#: key canonicalization fills these in so explicit-default and implicit
#: calls hash identically.  Derived from the signature (its options are
#: exactly the keyword-only parameters) so adding or re-defaulting an
#: offline option can never silently desynchronize the cache key.
DEFAULT_OFFLINE_OPTIONS: Dict[str, object] = {
    param.name: param.default
    for param in inspect.signature(offline_compile).parameters.values()
    if param.kind == inspect.Parameter.KEYWORD_ONLY
}


def canonical_options(options: Optional[Dict[str, object]] = None) \
        -> Dict[str, object]:
    """Fill defaults and reject unknown offline options.

    A ``pipeline`` option (a :class:`~repro.flows.PipelineSpec` or its
    dict form) is normalized to a validated spec; it overrides the
    legacy boolean knobs exactly as ``offline_compile`` would.
    """
    merged = dict(DEFAULT_OFFLINE_OPTIONS)
    if options:
        unknown = set(options) - set(DEFAULT_OFFLINE_OPTIONS)
        if unknown:
            raise ValueError(f"unknown offline options {sorted(unknown)}; "
                             f"have {sorted(DEFAULT_OFFLINE_OPTIONS)}")
        merged.update(options)
    hotness = merged["hotness"]
    if hotness is not None:
        merged["hotness"] = {name: int(w)
                             for name, w in sorted(hotness.items())}
    if merged.get("pipeline") is not None:
        merged["pipeline"] = effective_pipeline(merged["pipeline"])
    return merged


def _json_options(merged: Dict[str, object]) -> Dict[str, object]:
    """Canonicalized options in JSON-able form (for key hashing)."""
    out = dict(merged)
    pipeline = out.get("pipeline")
    if pipeline is not None:
        out["pipeline"] = pipeline.to_dict()
    return out


def artifact_key(source: str, name: str = "module",
                 options: Optional[Dict[str, object]] = None) -> str:
    """Content address of one offline compilation.

    Covers everything that determines the artifact: the program text,
    the module name (it is embedded in the bytecode), the full
    canonicalized option set — including the pipeline spec, so every
    flow with its own offline pipeline gets its own entry — and the
    encoder schema version, so entries persisted by an older encoding
    can never be served to a newer decoder.
    """
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "source": source, "name": name,
         "options": _json_options(canonical_options(options))},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def artifact_fingerprint(artifact: OfflineArtifact) -> str:
    """Content address of an already-built artifact (deployment key).

    Used when a caller hands the deployment layer an artifact that did
    not come through the cache: the hash of both encoded bytecode
    flavours identifies it exactly.  Memoized on the artifact object —
    encoding is linear but not free.
    """
    cached = getattr(artifact, "_pvi_fingerprint", None)
    if cached is None:
        digest = hashlib.sha256()
        digest.update(encode_module(artifact.bytecode))
        digest.update(encode_module(artifact.scalar_bytecode))
        cached = digest.hexdigest()
        artifact._pvi_fingerprint = cached
    return cached


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def serialize_artifact(artifact: OfflineArtifact) -> bytes:
    """Artifact -> bytes: magic, JSON metadata sidecar, both modules.

    The sidecar records the schema version, the source text, the
    pipeline spec that produced the artifact and the per-pass
    instrumentation summary, so a disk-revived artifact is a faithful
    stand-in for the original (and an entry written under any other
    schema self-invalidates on decode)."""
    meta = {
        "schema": SCHEMA_VERSION,
        "name": artifact.name,
        "offline_work": artifact.offline_work,
        "offline_time": artifact.offline_time,
        "vectorized_functions": list(artifact.vectorized_functions),
        "source": artifact.source,
        "pipeline": artifact.pipeline.to_dict()
        if artifact.pipeline is not None else None,
        "hotness": artifact.hotness,
        "per_pass": artifact.pass_stats.summary_dict(),
    }
    out = bytearray()
    out.extend(ARTIFACT_MAGIC)
    write_bytes(out, json.dumps(meta, sort_keys=True).encode("utf-8"))
    write_bytes(out, encode_module(artifact.bytecode))
    write_bytes(out, encode_module(artifact.scalar_bytecode))
    return bytes(out)


def deserialize_artifact(raw: bytes) -> OfflineArtifact:
    if raw[:4] != ARTIFACT_MAGIC:
        raise ValueError("not a persisted PVI artifact (bad magic)")
    pos = 4
    meta_raw, pos = read_bytes(raw, pos)
    meta = json.loads(meta_raw.decode("utf-8"))
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"persisted artifact schema {schema!r} does not match this "
            f"encoder ({SCHEMA_VERSION!r}); entry is stale")
    bytecode_raw, pos = read_bytes(raw, pos)
    scalar_raw, pos = read_bytes(raw, pos)
    pipeline = meta.get("pipeline")
    return OfflineArtifact(
        name=meta["name"],
        # disk-revived modules are as immutable as freshly compiled
        # ones: freeze so the VM's call inline caching applies
        bytecode=decode_module(bytecode_raw).freeze(),
        scalar_bytecode=decode_module(scalar_raw).freeze(),
        offline_work=int(meta["offline_work"]),
        offline_time=float(meta["offline_time"]),
        vectorized_functions=list(meta["vectorized_functions"]),
        source=meta.get("source"),
        pipeline=effective_pipeline(pipeline)
        if pipeline is not None else None,
        hotness={name: int(w)
                 for name, w in meta["hotness"].items()}
        if meta.get("hotness") else None,
        pass_stats=PassStats.from_summary(meta.get("per_pass", {})),
    )


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    hits: int = 0              # served from the in-memory LRU
    disk_hits: int = 0         # revived from the persistence directory
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0   # unreadable disk entries (dropped)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.hits + self.disk_hits) / lookups


class ArtifactCache:
    """In-memory LRU over content-addressed artifacts, with optional
    on-disk persistence.

    ``get``/``put`` are thread-safe; the deployment pool calls them
    from worker threads.  Disk entries outlive LRU eviction, so an
    evicted artifact costs a decode instead of a full recompilation.
    """

    def __init__(self, capacity: int = 64,
                 persist_dir: Optional[Path] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.persist_dir = Path(persist_dir) if persist_dir else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, OfflineArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[OfflineArtifact]:
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return artifact
        artifact = self._load_persisted(key)
        if artifact is not None:
            # The cache key IS the content address; pin it so the
            # deployment memo sees the same identity as the in-memory
            # copy it replaces.
            artifact._pvi_fingerprint = key
            with self._lock:
                self.stats.disk_hits += 1
                self._insert(key, artifact)
            return artifact
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, artifact: OfflineArtifact) -> None:
        if getattr(artifact, "_pvi_fingerprint", None) is None:
            artifact._pvi_fingerprint = key
        with self._lock:
            self.stats.stores += 1
            self._insert(key, artifact)
        if self.persist_dir is not None:
            path = self._path(key)
            if not path.exists():
                path.write_bytes(serialize_artifact(artifact))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- internals ----------------------------------------------------------

    def _insert(self, key: str, artifact: OfflineArtifact) -> None:
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        return self.persist_dir / f"{key}.pvia"

    def _load_persisted(self, key: str) -> Optional[OfflineArtifact]:
        if self.persist_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            return deserialize_artifact(path.read_bytes())
        except Exception:
            # A truncated or corrupted entry degrades to a miss (and a
            # recompile overwrites it); it must never take the service
            # down.
            self.stats.corrupt_entries += 1
            path.unlink(missing_ok=True)
            return None
