"""The HTTP/JSON serving edge over :class:`AsyncCompilationService`.

This is the network boundary the ROADMAP's "millions of users" story
needs: a stdlib-only (``asyncio.start_server``) HTTP/1.1 server that
turns wire requests into :class:`CompileRequest`s and runs them
through the full serving stack —

``auth (401/403) -> quota (429) -> coalesce -> admission (503)
-> bounded queue -> worker pool -> AsyncCompilationService``

with adaptive executor routing underneath (cold fan-outs on worker
processes, warm residual compiles on threads) and per-tenant,
per-route, per-queue observability at ``GET /stats``.

Endpoints:

* ``GET  /healthz`` — liveness, never authenticated, never queued;
* ``GET  /stats``   — edge counters + full ``ServiceStats.as_dict()``
  + tier-2 build provenance (``facts_warm`` shows warm starts
  skipping analysis);
* ``POST /compile`` — offline half only: body ``{source, name,
  options}`` -> artifact key and cache verdict;
* ``POST /deploy``  — the whole request: body ``{source, name,
  targets, flow, options, tolerate_failures}`` -> deployment
  metadata per target.

Run one with ``pvi-serve`` (console script) or programmatically::

    async with EdgeServer(EdgeConfig(port=0)) as edge:
        ...  # edge.port is the bound port

Identical concurrent requests coalesce at *three* layers: the edge's
pending-job map (queued duplicates attach to the queued job and
consume no extra queue slot), the async facade's in-flight task map,
and the pool's future dedup — a thundering herd of identical requests
costs one queue slot, one offline compile and one fan-out.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.service import CompilationService, artifact_key
from repro.service.asyncio import AsyncCompilationService
from repro.service.edge.admission import (
    AdmissionController, LatencyHistogram,
)
from repro.service.edge.auth import Tenant, TenantTable, anonymous_tenant
from repro.service.edge.routing import AdaptiveExecutor
from repro.service.edge.wire import (
    WireError, deploy_result_wire, error_wire, parse_compile_request,
    parse_deploy_request, retry_after_header,
)
from repro.service.executors import Executorish
from repro.service.requests import CompileRequest

__all__ = ["EdgeConfig", "EdgeServer", "main"]

SERVER_NAME = "pvi-edge"

#: header caps — a parser this small refuses pathology instead of
#: handling it gracefully
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024


@dataclass
class EdgeConfig:
    """Everything an operator tunes about one edge process."""
    host: str = "127.0.0.1"
    port: int = 8421                    # 0 -> ephemeral (tests/benches)
    #: admission queue bound (queued, not yet in service)
    queue_depth: int = 64
    #: estimated-wait shed threshold; None disables the overload gate
    max_wait_s: Optional[float] = 2.0
    #: concurrent serving tasks draining the queue
    workers: int = 8
    max_body_bytes: int = 1 << 20
    #: executor routing: adaptive (cold/warm) unless ``adaptive=False``,
    #: in which case ``cold_executor`` alone is the pool's executor
    adaptive: bool = True
    cold_executor: Executorish = "process"
    warm_executor: Executorish = "thread"
    #: API-key table; ``None`` serves an open edge (anonymous tenant,
    #: no quotas) — a dev/bench convenience, never the production shape
    tenants: Optional[TenantTable] = None
    #: keyword arguments for the owned :class:`CompilationService`
    #: (``cache_capacity``, ``persist_dir``, ``cache_shards``, ...)
    service_kwargs: Dict[str, object] = field(default_factory=dict)


class _Job:
    """One admitted unit of queue work, with every identical request
    that arrived while it was pending attached as a waiter."""

    __slots__ = ("kind", "request", "payload", "key", "waiters",
                 "tenants")

    def __init__(self, kind: str, key, request=None, payload=None):
        self.kind = kind                  # "deploy" | "compile"
        self.key = key
        self.request = request            # CompileRequest (deploy)
        self.payload = payload            # dict (compile)
        self.waiters: List[asyncio.Future] = []
        self.tenants: List[Tenant] = []

    def attach(self, tenant: Tenant) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        self.waiters.append(future)
        self.tenants.append(tenant)
        return future

    def resolve(self, result=None, error: Optional[BaseException] = None):
        for future in self.waiters:
            if future.done():
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)


class EdgeStats:
    """Edge-level counters (event-loop only — no locks)."""

    def __init__(self):
        self.requests = 0            # work requests past auth parsing
        self.accepted = 0
        self.coalesced = 0
        self.shed_quota = 0
        self.shed_queue = 0
        self.shed_overload = 0
        self.auth_unauthorized = 0
        self.auth_forbidden = 0
        self.bad_requests = 0
        self.failed = 0              # served but errored
        self.latency = LatencyHistogram()
        self.started_at = time.monotonic()

    @property
    def shed(self) -> int:
        return self.shed_quota + self.shed_queue + self.shed_overload

    def as_dict(self) -> Dict[str, object]:
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": self.requests,
            "accepted": self.accepted,
            "coalesced": self.coalesced,
            "shed": {"quota": self.shed_quota,
                     "queue_full": self.shed_queue,
                     "overload": self.shed_overload,
                     "total": self.shed},
            "auth_failures": {"unauthorized": self.auth_unauthorized,
                              "forbidden": self.auth_forbidden},
            "bad_requests": self.bad_requests,
            "failed": self.failed,
            "latency": self.latency.as_dict(),
        }


class EdgeServer:
    """One serving-edge process: HTTP front, admission middle,
    :class:`AsyncCompilationService` back.

    Construct with an :class:`EdgeConfig` (and optionally an existing
    :class:`CompilationService` to share caches with in-process
    callers); ``await start()`` binds the socket and spins up the
    worker pool; ``await close()`` drains and releases everything the
    server owns.
    """

    def __init__(self, config: Optional[EdgeConfig] = None,
                 service: Optional[CompilationService] = None):
        self.config = config or EdgeConfig()
        self._owns_core = service is None
        if service is None:
            executor = (AdaptiveExecutor(self.config.cold_executor,
                                         self.config.warm_executor)
                        if self.config.adaptive
                        else self.config.cold_executor)
            service = CompilationService(
                executor=executor, **self.config.service_kwargs)
        self.core = service
        self.router: Optional[AdaptiveExecutor] = \
            service.pool.executor if isinstance(
                service.pool.executor, AdaptiveExecutor) else None
        self.tenants = self.config.tenants
        self._anonymous = anonymous_tenant()
        self.stats = EdgeStats()
        self.admission = AdmissionController(
            capacity=self.config.queue_depth,
            max_wait_s=self.config.max_wait_s,
            workers=self.config.workers)
        # loop-bound state, created in start()
        self.service: Optional[AsyncCompilationService] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pending: Dict[object, _Job] = {}
        self._workers: List[asyncio.Task] = []
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "EdgeServer":
        self.service = AsyncCompilationService(self.core)
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"edge-worker-{i}")
            for i in range(self.config.workers)]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port)
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._owns_core:
            self.core.shutdown()

    async def __aenter__(self) -> "EdgeServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body, parse_error = parsed
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                if parse_error is not None:
                    await self._respond(writer, parse_error.status,
                                        parse_error.body(),
                                        keep_alive=False,
                                        retry_after=parse_error
                                        .retry_after)
                    break
                status, payload, retry_after = \
                    await self._dispatch(method, path, headers, body)
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive,
                                    retry_after=retry_after)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request -> (method, path, headers, body,
        error-or-None); ``None`` on a cleanly closed connection."""
        try:
            line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            return ("GET", "/", {}, b"",
                    WireError(431, "request_too_large",
                              "request line too long"))
        try:
            method, path, _version = \
                line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            return ("GET", "/", {}, b"",
                    WireError(400, "bad_request",
                              "malformed HTTP request line"))
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                return (method, path, headers, b"",
                        WireError(431, "request_too_large",
                                  "headers too large"))
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                return (method, path, headers, b"",
                        WireError(400, "bad_request",
                                  "malformed Content-Length"))
            if n > self.config.max_body_bytes:
                return (method, path, headers, b"",
                        WireError(413, "payload_too_large",
                                  f"body exceeds "
                                  f"{self.config.max_body_bytes} "
                                  f"bytes"))
            body = await reader.readexactly(n)
        return method.upper(), path, headers, body, None

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, object], *,
                       keep_alive: bool = True,
                       retry_after: Optional[float] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
                  403: "Forbidden", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  422: "Unprocessable Entity",
                  429: "Too Many Requests", 431: "Headers Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Status")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Server: {SERVER_NAME}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        if status in (429, 503) or retry_after is not None:
            head.append(f"Retry-After: "
                        f"{retry_after_header(retry_after)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n")
                     .encode("latin-1") + body)
        await writer.drain()

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes) \
            -> Tuple[int, Dict[str, object], Optional[float]]:
        try:
            if path == "/healthz":
                if method != "GET":
                    raise WireError(405, "method_not_allowed",
                                    "/healthz is GET")
                return 200, self._healthz(), None
            if path == "/stats":
                if method != "GET":
                    raise WireError(405, "method_not_allowed",
                                    "/stats is GET")
                self._authenticate(headers)
                return 200, self.stats_snapshot(), None
            if path in ("/deploy", "/compile"):
                if method != "POST":
                    raise WireError(405, "method_not_allowed",
                                    f"{path} is POST")
                return await self._serve_work(path, headers, body)
            raise WireError(404, "not_found",
                            f"no such endpoint {path!r}; have "
                            f"/healthz /stats /compile /deploy")
        except WireError as exc:
            self._count_wire_error(exc)
            return exc.status, exc.body(), exc.retry_after

    def _count_wire_error(self, exc: WireError) -> None:
        if exc.status == 401:
            self.stats.auth_unauthorized += 1
        elif exc.status == 403:
            self.stats.auth_forbidden += 1
        elif exc.status == 429:
            self.stats.shed_quota += 1
        elif exc.status == 400:
            self.stats.bad_requests += 1

    def _authenticate(self, headers: Dict[str, str]) -> Tenant:
        key = headers.get("x-api-key")
        if key is None:
            bearer = headers.get("authorization", "")
            if bearer.lower().startswith("bearer "):
                key = bearer[7:].strip()
        if self.tenants is None:
            return self._anonymous
        return self.tenants.authenticate(key)

    # -- the work path ------------------------------------------------------

    async def _serve_work(self, path: str, headers: Dict[str, str],
                          body: bytes) \
            -> Tuple[int, Dict[str, object], Optional[float]]:
        tenant = self._authenticate(headers)
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise WireError(400, "bad_request",
                            "request body is not valid JSON")
        if path == "/deploy":
            request = parse_deploy_request(payload)
            key = ("deploy", self.service.request_key(request))
            job_args = {"request": request}
        else:
            fields = parse_compile_request(payload)
            try:
                key = ("compile",
                       artifact_key(fields["source"], fields["name"],
                                    fields["options"]))
            except ValueError as exc:     # unknown offline options
                raise WireError(400, "bad_request", str(exc))
            job_args = {"payload": fields}
        tenant.stats.requests += 1
        self.stats.requests += 1
        tenant.charge()                   # 429 on an empty bucket
        arrived = time.monotonic()
        kind = path.lstrip("/")

        # -- coalesce: attach to an identical pending job ------------------
        job = self._pending.get(key)
        coalesced = job is not None
        if not coalesced:
            decision = self.admission.evaluate()
            if not decision.admitted:
                return self._shed(tenant, decision)
            job = _Job(kind, key, **job_args)
            self._pending[key] = job
            self.admission.on_enqueue()
            self._queue.put_nowait(job)   # never full: gate == bound
        future = job.attach(tenant)
        tenant.stats.accepted += 1
        self.stats.accepted += 1
        if coalesced:
            tenant.stats.coalesced += 1
            self.stats.coalesced += 1
        try:
            result = await asyncio.shield(future)
        except WireError as exc:
            tenant.stats.failed += 1
            self.stats.failed += 1
            raise exc
        except Exception as exc:
            tenant.stats.failed += 1
            self.stats.failed += 1
            return self._server_error(exc)
        elapsed = time.monotonic() - arrived
        self.stats.latency.observe(elapsed)
        tenant.stats.latency.observe(elapsed)
        return 200, result, None

    def _shed(self, tenant: Tenant, decision) \
            -> Tuple[int, Dict[str, object], float]:
        if decision.reason == "queue_full":
            tenant.stats.shed_queue += 1
            self.stats.shed_queue += 1
        else:
            tenant.stats.shed_overload += 1
            self.stats.shed_overload += 1
        wait = max(decision.estimated_wait_s,
                   self.admission.ewma_service_s, 0.05)
        body = error_wire(
            decision.reason,
            "admission control shed this request "
            f"({decision.reason}); retry after backoff",
            retry_after=wait,
            queue_depth=decision.queue_depth,
            queue_capacity=self.admission.capacity,
            estimated_wait_s=round(decision.estimated_wait_s, 4))
        return 503, body, wait

    def _server_error(self, exc: Exception) \
            -> Tuple[int, Dict[str, object], Optional[float]]:
        from repro.analysis.lint import AdmissionError
        from repro.lang.errors import CompilerError
        if isinstance(exc, CompilerError):
            return 422, error_wire(
                "compile_error",
                f"{type(exc).__name__}: {exc}"), None
        if isinstance(exc, AdmissionError):
            return 422, error_wire(
                "lint_rejected",
                f"artifact failed the admission lint: {exc}"), None
        return 500, error_wire(
            "internal_error", f"{type(exc).__name__}: {exc}"), None

    async def _worker(self) -> None:
        """One queue drainer: serve jobs through the async facade,
        resolve every attached waiter, feed the EWMA."""
        while True:
            job = await self._queue.get()
            self.admission.on_start()
            started = time.monotonic()
            try:
                if job.kind == "deploy":
                    result = deploy_result_wire(
                        await self.service.submit(job.request))
                else:
                    outcome = await self.service.compile(
                        job.payload["source"], job.payload["name"],
                        **(job.payload["options"] or {}))
                    result = {"artifact_key": outcome.key,
                              "name": job.payload["name"],
                              "cache_hit": outcome.cache_hit,
                              "latency_s": outcome.latency}
            except BaseException as exc:
                job.resolve(error=exc)
                if isinstance(exc, asyncio.CancelledError):
                    raise          # shutdown mid-job: really stop
            else:
                job.resolve(result=result)
            finally:
                self._pending.pop(job.key, None)
                self.admission.on_finish(time.monotonic() - started)
                self._queue.task_done()

    # -- observability ------------------------------------------------------

    def _healthz(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "uptime_s": round(
                time.monotonic() - self.stats.started_at, 3),
            "queue_depth": self.admission.queued,
            "workers": self.config.workers,
        }

    def stats_snapshot(self) -> Dict[str, object]:
        """The ``/stats`` payload: edge + queue + tenants + routing +
        the full service-core snapshot + tier-2 build provenance."""
        from repro.targets import dispatch
        from repro.vm import threaded
        edge = self.stats.as_dict()
        edge["queue"] = self.admission.as_dict()
        edge["tenants"] = (self.tenants.stats_dict()
                           if self.tenants is not None else
                           {self._anonymous.name:
                            self._anonymous.stats.as_dict()})
        edge["routes"] = (self.router.route_counters()
                          if self.router is not None else None)
        return {
            "edge": edge,
            "service": self.core.stats().as_dict(),
            "tier2": {"vm": threaded.tier2_build_stats(),
                      "sim": dispatch.tier2_build_stats()},
        }


# ---------------------------------------------------------------------------
# the pvi-serve console script
# ---------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pvi-serve",
        description="Serve the PVI compilation service over HTTP/JSON "
                    "with multi-tenant admission control.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421)
    parser.add_argument("--tenants", type=Path, default=None,
                        help="JSON tenant table ({'tenants': [{'name', "
                             "'api_key', 'rate', 'burst'}, ...]}); "
                             "omitted -> open server, no quotas")
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--max-wait", type=float, default=2.0,
                        help="estimated-wait shed threshold, seconds")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--cold-executor", default="process",
                        help="route for cold fan-outs "
                             "(process/thread/inline)")
    parser.add_argument("--warm-executor", default="thread",
                        help="route for warm residual compiles")
    parser.add_argument("--no-adaptive", action="store_true",
                        help="disable routing; cold executor serves "
                             "everything")
    parser.add_argument("--persist-dir", type=Path, default=None,
                        help="artifact cache directory (facts tables "
                             "persist with artifacts; a warm start "
                             "skips analysis)")
    parser.add_argument("--cache-capacity", type=int, default=256)
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    tenants = None
    if args.tenants is not None:
        tenants = TenantTable.from_config(
            json.loads(args.tenants.read_text()))
    service_kwargs: Dict[str, object] = {
        "cache_capacity": args.cache_capacity}
    if args.persist_dir is not None:
        service_kwargs["persist_dir"] = args.persist_dir
    config = EdgeConfig(
        host=args.host, port=args.port,
        queue_depth=args.queue_depth, max_wait_s=args.max_wait,
        workers=args.workers, adaptive=not args.no_adaptive,
        cold_executor=args.cold_executor,
        warm_executor=args.warm_executor,
        tenants=tenants, service_kwargs=service_kwargs)

    async def serve() -> None:
        async with EdgeServer(config) as edge:
            mode = "multi-tenant" if tenants is not None else "open"
            print(f"pvi-serve: {mode} edge on "
                  f"http://{config.host}:{edge.port} "
                  f"(queue={config.queue_depth}, "
                  f"workers={config.workers})", flush=True)
            await asyncio.Event().wait()    # until cancelled

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("pvi-serve: shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
