"""Tenancy at the edge: API keys, token-bucket quotas, per-tenant stats.

The separation-kernel framing the edge borrows (Quest-V, PAPERS.md)
is *partitioned capacity*: each tenant owns a slice of the edge's
throughput, enforced before any shared resource is touched, so one
misbehaving client saturates its own bucket and nothing else.  The
admission queue downstream is the shared resource; the quota here is
the per-partition gate in front of it.

Buckets take an injectable clock so refill timing is testable without
sleeping; everything else is plain arithmetic on the event loop (one
thread — no locks needed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.service.edge.admission import LatencyHistogram
from repro.service.edge.wire import WireError

__all__ = ["AuthError", "TokenBucket", "Tenant", "TenantTable"]


class AuthError(WireError):
    """401 (who are you) or 403 (you, specifically, may not)."""


class TokenBucket:
    """The classic shaper: ``burst`` capacity, ``rate`` tokens/sec.

    ``rate=None`` means unlimited (the anonymous tenant of an open
    server).  Refill happens lazily on every ``try_take`` from the
    injected ``clock``, so an idle bucket costs nothing.
    """

    def __init__(self, rate: Optional[float], burst: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError("token rate must be positive (or None "
                             "for unlimited)")
        if burst <= 0:
            raise ValueError("burst capacity must be positive")
        self.rate = rate
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self.clock()
        if self.rate is not None and now > self._stamp:
            self._tokens = min(self.burst,
                               self._tokens +
                               (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> bool:
        if self.rate is None:
            return True
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if now)."""
        if self.rate is None:
            return 0.0
        self._refill()
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens if self.rate is not None else float("inf")


@dataclass
class TenantStats:
    """Per-tenant edge counters (live; ``as_dict`` snapshots)."""
    requests: int = 0          # work requests that authenticated
    accepted: int = 0          # admitted (or coalesced onto) work
    coalesced: int = 0         # of accepted: joined an identical one
    shed_quota: int = 0        # 429: token bucket empty
    shed_queue: int = 0        # 503: admission queue full
    shed_overload: int = 0     # 503: estimated wait over threshold
    failed: int = 0            # served but errored (4xx/5xx outcome)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def shed(self) -> int:
        return self.shed_quota + self.shed_queue + self.shed_overload

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "accepted": self.accepted,
            "coalesced": self.coalesced,
            "shed": {"quota": self.shed_quota,
                     "queue_full": self.shed_queue,
                     "overload": self.shed_overload,
                     "total": self.shed},
            "failed": self.failed,
            "latency": self.latency.as_dict(),
        }


class Tenant:
    """One paying (or at least authenticated) consumer of the edge."""

    def __init__(self, name: str, api_key: Optional[str],
                 rate: Optional[float] = None, burst: float = 8.0,
                 enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic,
                 bucket: Optional[TokenBucket] = None):
        self.name = name
        self.api_key = api_key
        self.enabled = enabled
        self.bucket = bucket if bucket is not None \
            else TokenBucket(rate, burst, clock)
        self.stats = TenantStats()

    def charge(self) -> None:
        """Debit one request from the quota or raise the 429."""
        if not self.bucket.try_take():
            self.stats.shed_quota += 1
            wait = self.bucket.retry_after()
            raise WireError(
                429, "quota_exhausted",
                f"tenant {self.name!r} is over its request quota",
                retry_after=wait, detail={"tenant": self.name})


#: the tenant an *open* edge (no table configured) serves — unlimited
#: bucket, no key; a deliberate dev/bench convenience, never the
#: production shape
def anonymous_tenant() -> Tenant:
    return Tenant("anonymous", api_key=None, rate=None)


class TenantTable:
    """API-key -> :class:`Tenant` resolution with 401/403 semantics.

    Keys authenticate, tenants authorize: an unknown or missing key is
    a 401 (the edge has no idea who is asking), a known key whose
    tenant is disabled is a 403 (it knows exactly who — and the answer
    is no).  Disabling is the operator's kill switch for a tenant
    whose traffic must stop *now* without rotating keys.
    """

    def __init__(self, tenants: Iterable[Tenant] = ()):
        self._by_key: Dict[str, Tenant] = {}
        self._by_name: Dict[str, Tenant] = {}
        for tenant in tenants:
            self.add(tenant)

    def add(self, tenant: Tenant) -> Tenant:
        if tenant.api_key is None:
            raise ValueError("a table-managed tenant needs an api_key")
        if tenant.api_key in self._by_key:
            raise ValueError(f"duplicate api key for tenant "
                             f"{tenant.name!r}")
        if tenant.name in self._by_name:
            raise ValueError(f"duplicate tenant name {tenant.name!r}")
        self._by_key[tenant.api_key] = tenant
        self._by_name[tenant.name] = tenant
        return tenant

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def tenant(self, name: str) -> Tenant:
        return self._by_name[name]

    def authenticate(self, api_key: Optional[str]) -> Tenant:
        if api_key is None:
            raise AuthError(401, "unauthorized",
                            "missing API key (send X-Api-Key or "
                            "Authorization: Bearer <key>)")
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthError(401, "unauthorized", "unknown API key")
        if not tenant.enabled:
            raise AuthError(403, "forbidden",
                            f"tenant {tenant.name!r} is disabled",
                            detail={"tenant": tenant.name})
        return tenant

    @classmethod
    def from_config(cls, config,
                    clock: Callable[[], float] = time.monotonic) \
            -> "TenantTable":
        """Build a table from plain data (the ``--tenants`` JSON file):
        ``{"tenants": [{"name": ..., "api_key": ..., "rate": ...,
        "burst": ..., "enabled": ...}, ...]}`` — ``rate`` in
        requests/second (omit for unlimited), ``burst`` the bucket
        capacity."""
        entries = config.get("tenants", config) \
            if isinstance(config, dict) else config
        table = cls()
        for entry in entries:
            unknown = set(entry) - {"name", "api_key", "rate", "burst",
                                    "enabled"}
            if unknown:
                raise ValueError(f"unknown tenant fields "
                                 f"{sorted(unknown)}")
            table.add(Tenant(
                name=entry["name"], api_key=entry["api_key"],
                rate=entry.get("rate"),
                burst=float(entry.get("burst", 8.0)),
                enabled=bool(entry.get("enabled", True)),
                clock=clock))
        return table

    def stats_dict(self) -> Dict[str, object]:
        return {tenant.name: tenant.stats.as_dict() for tenant in self}
