"""The multi-tenant HTTP/JSON serving edge.

The network boundary of the compilation service: stdlib-asyncio HTTP
in front of :class:`~repro.service.asyncio.AsyncCompilationService`,
with API-key tenancy and token-bucket quotas (:mod:`.auth`), bounded
admission and latency histograms (:mod:`.admission`), adaptive
cold/warm executor routing (:mod:`.routing`), a strict JSON wire
schema (:mod:`.wire`), the server itself (:mod:`.server`, also the
``pvi-serve`` console script) and a matching client (:mod:`.client`).
"""

from repro.service.edge.admission import (
    AdmissionController, AdmissionDecision, LatencyHistogram,
)
from repro.service.edge.auth import (
    AuthError, Tenant, TenantTable, TokenBucket, anonymous_tenant,
)
from repro.service.edge.client import EdgeClient
from repro.service.edge.routing import AdaptiveExecutor
from repro.service.edge.server import EdgeConfig, EdgeServer
from repro.service.edge.wire import (
    WireError, error_wire, parse_compile_request, parse_deploy_request,
)

__all__ = [
    "AdmissionController", "AdmissionDecision", "LatencyHistogram",
    "AuthError", "Tenant", "TenantTable", "TokenBucket",
    "anonymous_tenant",
    "EdgeClient",
    "AdaptiveExecutor",
    "EdgeConfig", "EdgeServer",
    "WireError", "error_wire", "parse_compile_request",
    "parse_deploy_request",
]
