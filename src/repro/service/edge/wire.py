"""Wire schema of the serving edge: JSON bodies in, JSON bodies out.

Everything a remote client can say to the edge is validated *here*,
up front, into the same :class:`~repro.service.requests.CompileRequest`
the in-process facades consume — the edge adds transport, auth and
admission around the service, never a second request model.  Every
rejection is a structured error body with a machine-readable ``code``
(and HTTP status), so load generators and clients can assert on shed
reasons instead of scraping messages.

The schema is strict: unknown fields are a 400, not a shrug — a
serving tier that silently ignores a misspelled ``tolerate_failures``
would be changing a client's failure semantics behind its back.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.flows import UnknownFlowError, as_flow, flow_names
from repro.service.requests import CompileRequest, DeployResult
from repro.targets.registry import (
    UnknownTargetError, as_target, target_names,
)

__all__ = [
    "WireError", "error_wire", "parse_deploy_request",
    "parse_compile_request", "deploy_result_wire",
]

#: fields a ``/deploy`` body may carry (the CompileRequest surface)
DEPLOY_FIELDS = frozenset(
    {"source", "name", "targets", "flow", "options",
     "tolerate_failures"})

#: fields a ``/compile`` body may carry (the offline half only)
COMPILE_FIELDS = frozenset({"source", "name", "options"})


class WireError(Exception):
    """A request the edge refuses, with everything the response needs:
    HTTP status, stable error ``code``, human message, and optional
    ``retry_after`` seconds (429/503 set it so well-behaved clients
    back off instead of hammering)."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None,
                 detail: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.detail = detail or {}

    def body(self) -> Dict[str, object]:
        return error_wire(self.code, self.message,
                          retry_after=self.retry_after, **self.detail)


def error_wire(code: str, message: str,
               retry_after: Optional[float] = None,
               **detail) -> Dict[str, object]:
    """The one error envelope every non-2xx response uses."""
    error: Dict[str, object] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after_s"] = round(retry_after, 3)
    error.update(detail)
    return {"error": error}


def _bad(message: str, **detail) -> WireError:
    return WireError(400, "bad_request", message, detail=detail)


def _require_object(payload) -> Dict:
    if not isinstance(payload, dict):
        raise _bad("request body must be a JSON object")
    return payload


def _source_of(payload: Dict) -> str:
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise _bad("'source' is required and must be a non-empty "
                   "string of PVI DSL text")
    return source


def _name_of(payload: Dict) -> str:
    name = payload.get("name", "module")
    if not isinstance(name, str) or not name:
        raise _bad("'name' must be a non-empty string")
    return name


def _options_of(payload: Dict) -> Optional[Dict[str, object]]:
    options = payload.get("options")
    if options is None:
        return None
    if not isinstance(options, dict):
        raise _bad("'options' must be an object of offline-compile "
                   "options")
    return options


def parse_compile_request(payload) -> Dict[str, object]:
    """Validate a ``/compile`` body -> ``{source, name, options}``."""
    payload = _require_object(payload)
    unknown = set(payload) - COMPILE_FIELDS
    if unknown:
        raise _bad(f"unknown fields {sorted(unknown)}; /compile "
                   f"accepts {sorted(COMPILE_FIELDS)}")
    return {"source": _source_of(payload), "name": _name_of(payload),
            "options": _options_of(payload)}


def parse_deploy_request(payload) -> CompileRequest:
    """Validate a ``/deploy`` body into a :class:`CompileRequest`.

    Targets must be *registered names* (the wire carries no target
    descriptors — a tenant deploys onto the catalog the operator
    registered), and the flow a registered flow name; both resolve
    through the same registries as in-process callers, so an unknown
    name fails with the catalog in the message, here as a 400.
    """
    payload = _require_object(payload)
    unknown = set(payload) - DEPLOY_FIELDS
    if unknown:
        raise _bad(f"unknown fields {sorted(unknown)}; /deploy "
                   f"accepts {sorted(DEPLOY_FIELDS)}")
    source = _source_of(payload)
    name = _name_of(payload)
    options = _options_of(payload)
    targets = payload.get("targets")
    if not isinstance(targets, list) or not targets or \
            not all(isinstance(t, str) for t in targets):
        raise _bad("'targets' must be a non-empty list of registered "
                   f"target names; available: {sorted(target_names())}")
    for target in targets:
        try:
            as_target(target)
        except UnknownTargetError as exc:
            raise WireError(400, "unknown_target", str(exc),
                            detail={"target": target})
    flow = payload.get("flow", "split")
    if not isinstance(flow, str):
        raise _bad("'flow' must be a registered flow name; "
                   f"available: {sorted(flow_names())}")
    try:
        as_flow(flow)
    except UnknownFlowError as exc:
        raise WireError(400, "unknown_flow", str(exc),
                        detail={"flow": flow})
    tolerate = payload.get("tolerate_failures", False)
    if not isinstance(tolerate, bool):
        raise _bad("'tolerate_failures' must be a boolean")
    return CompileRequest(source=source, name=name, targets=targets,
                          flow=flow, options=options,
                          tolerate_failures=tolerate)


def deploy_result_wire(result: DeployResult) -> Dict[str, object]:
    """A :class:`DeployResult` as JSON: everything observable about
    the deployment except the images themselves (images are process
    objects; remote consumers read their *metadata* and run against
    the serving process that holds them)."""
    deployments = {}
    for name, d in result.deployments.items():
        entry: Dict[str, object] = {
            "ok": d.ok,
            "memo_hit": d.memo_hit,
            "latency_s": d.latency,
        }
        if d.compiled is not None:
            entry["code_bytes"] = getattr(d.compiled,
                                          "total_code_bytes", None)
            entry["jit_work"] = getattr(d.compiled,
                                        "total_jit_work", None)
        if d.error is not None:
            entry["error"] = {"type": type(d.error).__name__,
                              "message": str(d.error)}
        deployments[name] = entry
    return {
        "name": result.name,
        "artifact_key": result.artifact_key,
        "artifact_cache_hit": result.artifact_cache_hit,
        "fully_cached": result.fully_cached,
        "flow": result.flow,
        "offline_latency_s": result.offline_latency,
        "total_latency_s": result.total_latency,
        "offline_pass_work": dict(result.offline_pass_work),
        "deployments": deployments,
    }


def retry_after_header(seconds: Optional[float]) -> int:
    """``Retry-After`` wants integral seconds; round up so a client
    that obeys it exactly never arrives early."""
    if seconds is None or seconds <= 0:
        return 1
    return max(1, math.ceil(seconds))
