"""A minimal asyncio client for the serving edge.

One keep-alive connection, JSON in/out, stdlib only — enough for the
load generator, the quickstart example and the tests to speak the
edge's wire protocol without growing an HTTP dependency.  Responses
come back as ``(status, headers, payload)`` so callers can assert on
shed statuses and ``Retry-After`` instead of only happy paths.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

__all__ = ["EdgeClient"]

Response = Tuple[int, Dict[str, str], Dict[str, object]]


class EdgeClient:
    """One persistent connection to one edge server.

    Not safe for concurrent requests on a single instance (HTTP/1.1
    keep-alive is strictly sequential); open one client per in-flight
    request — they are cheap — or serialize through one.
    """

    def __init__(self, host: str, port: int,
                 api_key: Optional[str] = None):
        self.host = host
        self.port = port
        self.api_key = api_key
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "EdgeClient":
        await self._connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- wire ---------------------------------------------------------------

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, object]] = None,
                      api_key: Optional[str] = None) -> Response:
        """One round trip -> ``(status, headers, json_payload)``.

        ``api_key`` overrides the client default for this request
        (handy for auth tests); the connection is re-established
        transparently if the server closed it.
        """
        async with self._lock:
            await self._connect()
            try:
                return await self._round_trip(method, path, body,
                                              api_key)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError):
                # one reconnect: the server may have idled us out
                await self.close()
                await self._connect()
                return await self._round_trip(method, path, body,
                                              api_key)

    async def _round_trip(self, method: str, path: str,
                          body: Optional[Dict[str, object]],
                          api_key: Optional[str]) -> Response:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                f"Content-Length: {len(payload)}",
                "Content-Type: application/json"]
        key = api_key if api_key is not None else self.api_key
        if key is not None:
            head.append(f"X-Api-Key: {key}")
        self._writer.write(("\r\n".join(head) + "\r\n\r\n")
                           .encode("latin-1") + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, decoded

    # -- convenience --------------------------------------------------------

    async def healthz(self) -> Response:
        return await self.request("GET", "/healthz")

    async def stats(self) -> Response:
        return await self.request("GET", "/stats")

    async def compile(self, source: str, name: str = "module",
                      options: Optional[Dict[str, object]] = None) \
            -> Response:
        body: Dict[str, object] = {"source": source, "name": name}
        if options is not None:
            body["options"] = options
        return await self.request("POST", "/compile", body)

    async def deploy(self, source: str, targets, name: str = "module",
                     flow: str = "split",
                     options: Optional[Dict[str, object]] = None,
                     tolerate_failures: Optional[bool] = None) \
            -> Response:
        body: Dict[str, object] = {"source": source, "name": name,
                                   "targets": list(targets),
                                   "flow": flow}
        if options is not None:
            body["options"] = options
        if tolerate_failures is not None:
            body["tolerate_failures"] = tolerate_failures
        return await self.request("POST", "/deploy", body)
