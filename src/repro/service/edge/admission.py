"""Admission control: the edge says no *before* the system says ouch.

A serving tier absorbing "millions of users" protects its latency by
bounding the work it lets in: a bounded queue in front of the worker
pool, plus an estimated-wait gate derived from an EWMA of recent
service times.  Everything past the gate gets predictable latency;
everything shed gets an immediate, structured 503 with a honest
``Retry-After`` — the overload story of the separation-kernel papers
(fail loudly at the boundary, never degrade everyone a little).

The controller is pure bookkeeping — the actual ``asyncio.Queue``
lives in the server; this module decides and accounts.  Latency
observability is a log-bucketed histogram good enough for p50/p99 at
a few dozen buckets, cheap enough to keep per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "AdmissionDecision",
           "AdmissionController"]


class LatencyHistogram:
    """Log-spaced latency histogram with percentile estimation.

    Buckets double from 100 µs up to ~200 s (22 buckets), with an
    overflow bucket above; percentiles interpolate linearly inside the
    winning bucket, which is plenty for p50/p99 dashboards (the error
    is bounded by the 2x bucket ratio).
    """

    BASE_S = 1e-4
    BUCKETS = 22

    def __init__(self):
        self.counts: List[int] = [0] * (self.BUCKETS + 1)
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        index = 0
        upper = self.BASE_S
        while seconds > upper and index < self.BUCKETS:
            upper *= 2.0
            index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum_s += seconds
        self.max_s = max(self.max_s, seconds)

    def percentile(self, p: float) -> float:
        """p in [0, 1] -> estimated seconds (0.0 when empty)."""
        if self.total == 0:
            return 0.0
        threshold = p * self.total
        seen = 0
        lower, upper = 0.0, self.BASE_S
        for index, count in enumerate(self.counts):
            if seen + count >= threshold:
                if count == 0:
                    return upper
                fraction = (threshold - seen) / count
                return lower + fraction * (upper - lower)
            seen += count
            lower = upper
            upper = upper * 2.0 if index < self.BUCKETS else upper
        return self.max_s

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.total,
            "mean_ms": round(self.mean_s * 1e3, 3),
            "p50_ms": round(self.percentile(0.50) * 1e3, 3),
            "p99_ms": round(self.percentile(0.99) * 1e3, 3),
            "max_ms": round(self.max_s * 1e3, 3),
        }


@dataclass
class AdmissionDecision:
    """What the gate said, and why — the 503 body is built from it."""
    admitted: bool
    reason: Optional[str] = None          # "queue_full" | "overload"
    queue_depth: int = 0
    estimated_wait_s: float = 0.0


class AdmissionController:
    """Bounded-queue admission with an estimated-wait overload gate.

    ``capacity`` bounds how many admitted requests may be queued
    (in-service requests are tracked separately); ``max_wait_s``
    bounds the *estimated* time a newly admitted request would wait
    before service starts — ``(queued + in_service) * ewma / workers``
    — so under a sustained overload the edge sheds by latency promise,
    not just by memory bound.  The EWMA (``alpha=0.2``) tracks the
    recent service-time mix; until the first completion it is 0 and
    only the depth bound applies.
    """

    def __init__(self, capacity: int, max_wait_s: float,
                 workers: int):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        self.capacity = capacity
        self.max_wait_s = max_wait_s
        self.workers = workers
        self.queued = 0
        self.in_service = 0
        self.ewma_service_s = 0.0
        self._alpha = 0.2

    # -- the gate -----------------------------------------------------------

    def estimated_wait_s(self) -> float:
        backlog = self.queued + self.in_service
        if backlog == 0 or self.ewma_service_s == 0.0:
            return 0.0
        return backlog * self.ewma_service_s / self.workers

    def evaluate(self) -> AdmissionDecision:
        """Decide one arrival (does not enqueue — the caller does,
        then reports through ``on_enqueue``)."""
        wait = self.estimated_wait_s()
        if self.queued >= self.capacity:
            return AdmissionDecision(False, "queue_full",
                                     self.queued, wait)
        if self.max_wait_s is not None and wait > self.max_wait_s:
            return AdmissionDecision(False, "overload",
                                     self.queued, wait)
        return AdmissionDecision(True, None, self.queued, wait)

    # -- lifecycle accounting ----------------------------------------------

    def on_enqueue(self) -> None:
        self.queued += 1

    def on_start(self) -> None:
        self.queued -= 1
        self.in_service += 1

    def on_finish(self, elapsed_s: float) -> None:
        self.in_service -= 1
        if self.ewma_service_s == 0.0:
            self.ewma_service_s = elapsed_s
        else:
            self.ewma_service_s += self._alpha * \
                (elapsed_s - self.ewma_service_s)

    def as_dict(self) -> Dict[str, object]:
        return {
            "depth": self.queued,
            "capacity": self.capacity,
            "in_service": self.in_service,
            "workers": self.workers,
            "max_wait_s": self.max_wait_s,
            "ewma_service_ms": round(self.ewma_service_s * 1e3, 3),
            "estimated_wait_ms": round(
                self.estimated_wait_s() * 1e3, 3),
        }
