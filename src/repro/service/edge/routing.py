"""Adaptive executor routing: cold fan-outs to processes, warm to threads.

The executor redesign (PR 5) proved the two substrates' economics:
worker *processes* win cold JIT fan-out (many distinct compiles
scale past the GIL, at a pickle/decode toll per job), worker
*threads* win warm traffic (no seam toll; the GIL is irrelevant for
the rare single compile a warm artifact still needs).  A serving
edge sees both mixes at once, so :class:`AdaptiveExecutor` routes per
submission instead of making the operator pick one:

* an artifact never compiled through this executor before is **cold**
  — its whole first fan-out goes to the process route;
* an artifact with at least one *completed* compile is **warm** — a
  straggler target arriving later rides the thread route.

Memoized images never reach any executor (the pool's memo sits above
this seam), so "warm traffic" here is precisely the residual compile
work warm artifacts still generate.  Per-route counters are the
policy's proof — the edge surfaces them in ``/stats`` and the bench
asserts cold traffic landed on the process route and warm traffic on
the thread route.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from concurrent.futures import Future

from repro.service.cache import artifact_fingerprint
from repro.service.executors import (
    DeployExecutor, Executorish, as_executor,
)

__all__ = ["AdaptiveExecutor"]

#: remembered fingerprints — enough for any realistic working set of
#: hot artifacts; falling out of the window just means one fan-out is
#: re-classified cold (a conservative mistake: processes still work)
_SEEN_CAP = 1024


class AdaptiveExecutor(DeployExecutor):
    """Route each JIT compile to the substrate its temperature wants.

    ``cold``/``warm`` accept executor names or instances (default
    ``process`` / ``thread``); tests inject ``inline`` for both and
    still get the routing counters.  The adaptive layer's own
    :class:`ExecutorStats` aggregates both routes (that is what
    ``ServiceStats.deploy_executors`` reports for the pool), and
    :meth:`route_counters` breaks the traffic down per route.
    """

    name = "adaptive"

    def __init__(self, cold: Executorish = "process",
                 warm: Executorish = "thread",
                 max_workers: Optional[int] = None):
        super().__init__()
        self.cold = as_executor(cold, max_workers=max_workers)
        self.warm = as_executor(warm, max_workers=max_workers)
        #: fingerprints with >= 1 completed compile (bounded LRU);
        #: guarded by ``_route_lock`` — submissions come from caller
        #: threads, completions from executor worker threads
        self._seen: "OrderedDict[str, bool]" = OrderedDict()
        self._route_lock = threading.Lock()
        self._route_submits = {"cold": 0, "warm": 0}

    # -- classification -----------------------------------------------------

    def classify(self, artifact) -> str:
        """``"warm"`` iff this artifact has completed a compile here
        before.  Completion-based (not submission-based) so every
        target of the *first* fan-out classifies cold together — the
        fan-out is the unit the process pool wins on."""
        fingerprint = artifact_fingerprint(artifact)
        with self._route_lock:
            if fingerprint in self._seen:
                self._seen.move_to_end(fingerprint)
                return "warm"
        return "cold"

    def _mark_seen(self, fingerprint: str) -> None:
        with self._route_lock:
            self._seen[fingerprint] = True
            self._seen.move_to_end(fingerprint)
            while len(self._seen) > _SEEN_CAP:
                self._seen.popitem(last=False)

    # -- DeployExecutor protocol --------------------------------------------

    def submit(self, compile_fn: Callable, artifact, target,
               flow) -> Future:
        route = self.classify(artifact)
        executor = self.cold if route == "cold" else self.warm
        with self._route_lock:
            self._route_submits[route] += 1
        fingerprint = artifact_fingerprint(artifact)
        future = executor.submit(compile_fn, artifact, target, flow)

        def _done(settled: Future) -> None:
            if not settled.cancelled() and \
                    settled.exception() is None:
                self._mark_seen(fingerprint)

        future.add_done_callback(_done)
        return self._track(future)

    def shutdown(self, wait: bool = True) -> None:
        self.cold.shutdown(wait=wait)
        self.warm.shutdown(wait=wait)

    # -- observability ------------------------------------------------------

    def route_counters(self) -> Dict[str, object]:
        """The policy's proof: per-route submission counts plus each
        route's executor identity and live stats."""
        with self._route_lock:
            cold_n = self._route_submits["cold"]
            warm_n = self._route_submits["warm"]
            known = len(self._seen)
        return {
            "policy": "first-fanout-cold",
            "cold": {"executor": self.cold.name,
                     "submitted": cold_n,
                     "stats": self.cold.stats.as_dict()},
            "warm": {"executor": self.warm.name,
                     "submitted": warm_n,
                     "stats": self.warm.stats.as_dict()},
            "known_artifacts": known,
        }
