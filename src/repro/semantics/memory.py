"""Flat little-endian byte-addressable memory.

All engines (interpreter, VM, simulators) execute against this model:
address 0 is reserved (a null-pointer guard page of 64 bytes), a bump
allocator hands out heap blocks, and each call frame carves its slots
from a downward-growing stack at the top of memory.

Scalar and vector accesses go through cached :class:`struct.Struct`
instances — one per scalar type, one per ``(element, lanes)`` pair —
so the hot load/store paths do a single ``unpack_from``/``pack_into``
against the backing ``bytearray`` with no intermediate copies.
"""

from __future__ import annotations

import struct
from typing import List

from repro.lang import types as ty
from repro.semantics.errors import TrapError

_FORMAT_CHARS = {
    (8, True): "b", (8, False): "B",
    (16, True): "h", (16, False): "H",
    (32, True): "i", (32, False): "I",
    (64, True): "q", (64, False): "Q",
}

#: one cached Struct per scalar language type
_SCALAR_STRUCTS = {}
for _bits_signed, _char in _FORMAT_CHARS.items():
    _int_ty = ty.IntType(*_bits_signed)
    _SCALAR_STRUCTS[_int_ty] = struct.Struct("<" + _char)
_SCALAR_STRUCTS[ty.F32] = struct.Struct("<f")
_SCALAR_STRUCTS[ty.F64] = struct.Struct("<d")

_VECTOR_STRUCTS = {}

#: wrong-type values handed to a cached packer (floats into an int
#: slot, out-of-range ints); the slow path coerces exactly like the
#: old per-scalar code did.  OverflowError is deliberately absent —
#: packing a float too large for f32 must propagate, as the reference
#: per-scalar pack would raise it too.  The fast engines' generated
#: store code shares this tuple so coercion behaviour cannot drift.
PACK_COERCE_ERRORS = (struct.error, TypeError)
_PACK_ERRORS = PACK_COERCE_ERRORS

NULL_GUARD = 64
_MASK64 = (1 << 64) - 1


def scalar_struct(value_ty) -> struct.Struct:
    """The cached packer/unpacker for a scalar type (KeyError if the
    type has no byte representation)."""
    return _SCALAR_STRUCTS[value_ty]


def vector_struct(elem_ty, lanes: int) -> struct.Struct:
    """Cached bulk packer for ``lanes`` contiguous elements."""
    key = (elem_ty, lanes)
    cached = _VECTOR_STRUCTS.get(key)
    if cached is None:
        elem_fmt = _SCALAR_STRUCTS[elem_ty].format[1:]
        cached = struct.Struct("<" + elem_fmt * lanes)
        _VECTOR_STRUCTS[key] = cached
    return cached


class Memory:
    """A fixed-size flat memory with bump allocation."""

    def __init__(self, size: int = 1 << 20):
        if size < 4 * NULL_GUARD:
            raise ValueError("memory too small")
        self.size = size
        self.data = bytearray(size)
        self.heap_ptr = NULL_GUARD
        self.stack_ptr = size          # grows downward
        self._saved_sps: List[int] = []

    # -- allocation -----------------------------------------------------------

    def alloc(self, size: int, align: int = 16) -> int:
        """Allocate ``size`` bytes on the heap; returns the address."""
        addr = (self.heap_ptr + align - 1) // align * align
        if addr + size > self.stack_ptr:
            raise TrapError("out of memory (heap meets stack)")
        self.heap_ptr = addr + size
        return addr

    def push_frame(self, size: int) -> int:
        """Reserve a stack frame; returns its base address."""
        new_sp = (self.stack_ptr - size) & ~15
        if new_sp <= self.heap_ptr:
            raise TrapError("stack overflow")
        self._saved_sps.append(self.stack_ptr)
        self.stack_ptr = new_sp
        return new_sp

    def pop_frame(self, base: int, size: int) -> None:
        """Release the most recent frame (frames are strictly LIFO).

        Restores the *exact* pre-push stack pointer.  ``base + size``
        loses the padding :meth:`push_frame` introduced by aligning the
        new pointer down to 16 bytes, so restoring it would leak that
        padding and creep the stack downward across repeated calls.
        """
        if self._saved_sps:
            self.stack_ptr = self._saved_sps.pop()
        else:
            # Unpaired pop (hand-driven harnesses): best-effort restore.
            self.stack_ptr = min(base + size, self.size)

    # -- bounds ---------------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < NULL_GUARD or addr + nbytes > self.size:
            raise TrapError(f"memory access out of bounds: "
                            f"addr={addr:#x} size={nbytes}")

    # -- typed scalar access ---------------------------------------------------

    def load(self, value_ty, addr: int):
        addr &= _MASK64
        packer = _SCALAR_STRUCTS.get(value_ty)
        if packer is None:
            raise TrapError(f"cannot load type {value_ty}")
        size = packer.size
        if addr < NULL_GUARD or addr + size > self.size:
            raise TrapError(f"memory access out of bounds: "
                            f"addr={addr:#x} size={size}")
        return packer.unpack_from(self.data, addr)[0]

    def store(self, value_ty, addr: int, value) -> None:
        addr &= _MASK64
        packer = _SCALAR_STRUCTS.get(value_ty)
        if packer is None:
            raise TrapError(f"cannot store type {value_ty}")
        size = packer.size
        if addr < NULL_GUARD or addr + size > self.size:
            raise TrapError(f"memory access out of bounds: "
                            f"addr={addr:#x} size={size}")
        try:
            packer.pack_into(self.data, addr, value)
        except _PACK_ERRORS:
            packer.pack_into(self.data, addr, self._coerce(value_ty, value))

    @staticmethod
    def _coerce(value_ty, value):
        if isinstance(value_ty, ty.IntType):
            return ty.wrap_int(int(value), value_ty)
        return float(value)

    # -- vector access ----------------------------------------------------------

    def load_vec(self, elem_ty, lanes: int, addr: int) -> List:
        if not lanes:
            return []
        addr &= _MASK64
        packer = vector_struct(elem_ty, lanes)
        self._check(addr, packer.size)
        return list(packer.unpack_from(self.data, addr))

    def store_vec(self, elem_ty, addr: int, values: List) -> None:
        if not values:
            return
        addr &= _MASK64
        packer = vector_struct(elem_ty, len(values))
        self._check(addr, packer.size)
        try:
            packer.pack_into(self.data, addr, *values)
        except _PACK_ERRORS:
            packer.pack_into(self.data, addr,
                             *[self._coerce(elem_ty, v) for v in values])

    # -- convenience for tests and workloads -------------------------------------

    def write_array(self, elem_ty, addr: int, values) -> None:
        self.store_vec(elem_ty, addr, list(values))

    def read_array(self, elem_ty, addr: int, count: int) -> List:
        return self.load_vec(elem_ty, count, addr)

    def alloc_array(self, elem_ty, values) -> int:
        values = list(values)
        addr = self.alloc(max(1, len(values)) * ty.sizeof(elem_ty))
        self.write_array(elem_ty, addr, values)
        return addr
