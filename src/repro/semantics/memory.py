"""Flat little-endian byte-addressable memory.

All engines (interpreter, VM, simulators) execute against this model:
address 0 is reserved (a null-pointer guard page of 64 bytes), a bump
allocator hands out heap blocks, and each call frame carves its slots
from a downward-growing stack at the top of memory.
"""

from __future__ import annotations

import struct
from typing import List

from repro.lang import types as ty
from repro.semantics.errors import TrapError

_FORMATS = {
    (8, True): "<b", (8, False): "<B",
    (16, True): "<h", (16, False): "<H",
    (32, True): "<i", (32, False): "<I",
    (64, True): "<q", (64, False): "<Q",
}

NULL_GUARD = 64


class Memory:
    """A fixed-size flat memory with bump allocation."""

    def __init__(self, size: int = 1 << 20):
        if size < 4 * NULL_GUARD:
            raise ValueError("memory too small")
        self.size = size
        self.data = bytearray(size)
        self.heap_ptr = NULL_GUARD
        self.stack_ptr = size          # grows downward

    # -- allocation -----------------------------------------------------------

    def alloc(self, size: int, align: int = 16) -> int:
        """Allocate ``size`` bytes on the heap; returns the address."""
        addr = (self.heap_ptr + align - 1) // align * align
        if addr + size > self.stack_ptr:
            raise TrapError("out of memory (heap meets stack)")
        self.heap_ptr = addr + size
        return addr

    def push_frame(self, size: int) -> int:
        """Reserve a stack frame; returns its base address."""
        new_sp = (self.stack_ptr - size) & ~15
        if new_sp <= self.heap_ptr:
            raise TrapError("stack overflow")
        self.stack_ptr = new_sp
        return new_sp

    def pop_frame(self, base: int, size: int) -> None:
        self.stack_ptr = base + size if base + size <= self.size else self.size
        # Round back up to the pre-push value's alignment is unnecessary:
        # frames are popped LIFO with the same base they were pushed at.

    # -- bounds ---------------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < NULL_GUARD or addr + nbytes > self.size:
            raise TrapError(f"memory access out of bounds: "
                            f"addr={addr:#x} size={nbytes}")

    # -- typed scalar access ---------------------------------------------------

    def load(self, value_ty, addr: int):
        addr &= (1 << 64) - 1
        size = ty.sizeof(value_ty)
        self._check(addr, size)
        raw = bytes(self.data[addr:addr + size])
        if isinstance(value_ty, ty.IntType):
            return struct.unpack(_FORMATS[(value_ty.bits, value_ty.signed)],
                                 raw)[0]
        if isinstance(value_ty, ty.FloatType):
            return struct.unpack("<f" if value_ty.bits == 32 else "<d",
                                 raw)[0]
        raise TrapError(f"cannot load type {value_ty}")

    def store(self, value_ty, addr: int, value) -> None:
        addr &= (1 << 64) - 1
        size = ty.sizeof(value_ty)
        self._check(addr, size)
        if isinstance(value_ty, ty.IntType):
            raw = struct.pack(_FORMATS[(value_ty.bits, value_ty.signed)],
                              ty.wrap_int(int(value), value_ty))
        elif isinstance(value_ty, ty.FloatType):
            raw = struct.pack("<f" if value_ty.bits == 32 else "<d",
                              float(value))
        else:
            raise TrapError(f"cannot store type {value_ty}")
        self.data[addr:addr + size] = raw

    # -- vector access ----------------------------------------------------------

    def load_vec(self, elem_ty, lanes: int, addr: int) -> List:
        size = ty.sizeof(elem_ty)
        return [self.load(elem_ty, addr + i * size) for i in range(lanes)]

    def store_vec(self, elem_ty, addr: int, values: List) -> None:
        size = ty.sizeof(elem_ty)
        for i, value in enumerate(values):
            self.store(elem_ty, addr + i * size, value)

    # -- convenience for tests and workloads -------------------------------------

    def write_array(self, elem_ty, addr: int, values) -> None:
        self.store_vec(elem_ty, addr, list(values))

    def read_array(self, elem_ty, addr: int, count: int) -> List:
        return self.load_vec(elem_ty, count, addr)

    def alloc_array(self, elem_ty, values) -> int:
        values = list(values)
        addr = self.alloc(max(1, len(values)) * ty.sizeof(elem_ty))
        self.write_array(elem_ty, addr, values)
        return addr
