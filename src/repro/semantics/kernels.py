"""Type-specialized semantics kernels.

Precomputed ``(op, type) -> callable`` tables that replace the
per-call ``isinstance`` ladders of :mod:`repro.semantics.scalar` on
the hot execution paths.  Each kernel is a closure with the type's
constants — bit width, wrap mask, sign bit, IEEE rounding — resolved
at table-build time, so an executing engine pays one dict lookup per
*decoded* instruction instead of an isinstance ladder per *executed*
instruction.

Parity with the reference ladder (``eval_binop`` / ``eval_unop`` /
``eval_cmp`` / ``eval_cast``) is non-negotiable, including trap
messages; ``tests/test_semantics_kernels.py`` sweeps every (op, type)
pair against the reference to enforce it.  Lookups for combinations
outside the precomputed tables (exotic types, undefined ops) fall back
to closures over the reference functions, so behaviour never diverges.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, Tuple

from repro.lang import types as ty
from repro.semantics.errors import TrapError
from repro.semantics.scalar import (
    _CMP_FUNCS, eval_binop, eval_cast, eval_cmp, eval_unop,
)

#: the scalar types the tables are built for
SCALAR_TYPES = ty.INT_TYPES + ty.FLOAT_TYPES

_F32 = struct.Struct("<f")
_PACK32 = _F32.pack
_UNPACK32 = _F32.unpack

_NAN = math.nan
_INF = math.inf
_COPYSIGN = math.copysign


def _round32(value: float) -> float:
    return _UNPACK32(_PACK32(value))[0]


# ---------------------------------------------------------------------------
# integer kernels
# ---------------------------------------------------------------------------

def _int_binops(int_ty: ty.IntType) -> Dict[str, Callable]:
    bits = int_ty.bits
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    excess = 1 << bits
    shift_mask = bits - 1

    if int_ty.signed:
        def wrap(r):
            r &= mask
            return r - excess if r >= sign else r
    else:
        def wrap(r):
            return r & mask

    def add(a, b):
        r = (a + b) & mask
        return r

    def sub(a, b):
        r = (a - b) & mask
        return r

    def mul(a, b):
        r = (a * b) & mask
        return r

    if int_ty.signed:
        def add(a, b):                                    # noqa: F811
            r = (a + b) & mask
            return r - excess if r >= sign else r

        def sub(a, b):                                    # noqa: F811
            r = (a - b) & mask
            return r - excess if r >= sign else r

        def mul(a, b):                                    # noqa: F811
            r = (a * b) & mask
            return r - excess if r >= sign else r

    def div(a, b):
        if b == 0:
            raise TrapError("integer division by zero")
        q = abs(a) // abs(b)
        return wrap(q if (a >= 0) == (b >= 0) else -q)

    def rem(a, b):
        if b == 0:
            raise TrapError("integer remainder by zero")
        q = abs(a) // abs(b)
        q = q if (a >= 0) == (b >= 0) else -q
        return wrap(a - q * b)

    def and_(a, b):
        return wrap((a & mask) & (b & mask))

    def or_(a, b):
        return wrap((a & mask) | (b & mask))

    def xor(a, b):
        return wrap((a & mask) ^ (b & mask))

    def shl(a, b):
        return wrap(a << (b & shift_mask))

    if int_ty.signed:
        def shr(a, b):
            return wrap(a >> (b & shift_mask))            # arithmetic
    else:
        def shr(a, b):
            return wrap((a & mask) >> (b & shift_mask))

    def min_(a, b):
        return wrap(min(a, b))

    def max_(a, b):
        return wrap(max(a, b))

    return {"add": add, "sub": sub, "mul": mul, "div": div, "rem": rem,
            "and": and_, "or": or_, "xor": xor, "shl": shl, "shr": shr,
            "min": min_, "max": max_}


# ---------------------------------------------------------------------------
# float kernels
# ---------------------------------------------------------------------------

def _float_binops(float_ty: ty.FloatType) -> Dict[str, Callable]:
    single = float_ty.bits == 32

    def _div_value(a, b):
        if b == 0.0:
            # IEEE semantics: inf/nan rather than a trap.
            if a == 0.0 or a != a:
                return _NAN
            return _INF if (a > 0) == (not _COPYSIGN(1, b) < 0) else -_INF
        return a / b

    if single:
        rnd = _round32

        def add(a, b):
            return rnd(a + b)

        def sub(a, b):
            return rnd(a - b)

        def mul(a, b):
            return rnd(a * b)

        def div(a, b):
            return rnd(_div_value(a, b))

        def min_(a, b):
            return rnd(min(a, b))

        def max_(a, b):
            return rnd(max(a, b))
    else:
        def add(a, b):
            return a + b

        def sub(a, b):
            return a - b

        def mul(a, b):
            return a * b

        div = _div_value

        def min_(a, b):
            return min(a, b)

        def max_(a, b):
            return max(a, b)

    return {"add": add, "sub": sub, "mul": mul, "div": div,
            "min": min_, "max": max_}


# ---------------------------------------------------------------------------
# comparisons
# ---------------------------------------------------------------------------

def _cmp_kernels(value_ty) -> Dict[str, Callable]:
    out: Dict[str, Callable] = {}
    if isinstance(value_ty, ty.IntType) and not value_ty.signed:
        mask = (1 << value_ty.bits) - 1
        for pred, fn in _CMP_FUNCS.items():
            def k(a, b, _fn=fn, _mask=mask):
                return 1 if _fn(a & _mask, b & _mask) else 0
            out[pred] = k
    elif isinstance(value_ty, ty.IntType):
        for pred, fn in _CMP_FUNCS.items():
            def k(a, b, _fn=fn):
                return 1 if _fn(a, b) else 0
            out[pred] = k
    else:
        for pred, fn in _CMP_FUNCS.items():
            nan_result = 1 if pred == "ne" else 0
            def k(a, b, _fn=fn, _nan=nan_result):
                if a != a or b != b:        # unordered (NaN) operands
                    return _nan
                return 1 if _fn(a, b) else 0
            out[pred] = k
    return out


# ---------------------------------------------------------------------------
# unary ops and casts
# ---------------------------------------------------------------------------

def _unop_kernels(value_ty) -> Dict[str, Callable]:
    if isinstance(value_ty, ty.FloatType):
        if value_ty.bits == 32:
            def neg(a):
                return _round32(-a)
        else:
            def neg(a):
                return -a
        return {"neg": neg}
    mask = (1 << value_ty.bits) - 1
    sign = 1 << (value_ty.bits - 1)
    excess = 1 << value_ty.bits
    if value_ty.signed:
        def _wrap(r):
            r &= mask
            return r - excess if r >= sign else r
    else:
        def _wrap(r):
            return r & mask

    def neg(a):                                           # noqa: F811
        return _wrap(-a)

    def not_(a):
        return _wrap(~a)

    return {"neg": neg, "not": not_}


def identity_kernel(value):
    """The no-op kernel: shared so engines can recognize (``is``) and
    elide value-preserving casts at decode time."""
    return value


def _int_cast_is_identity(from_ty: ty.IntType, to_ty: ty.IntType) -> bool:
    """Is int->int conversion value-preserving for every in-range
    input?  (Widening within a signedness, or unsigned into a strictly
    wider signed type.)"""
    if from_ty.signed == to_ty.signed:
        return from_ty.bits <= to_ty.bits
    return not from_ty.signed and to_ty.signed \
        and from_ty.bits < to_ty.bits


def _cast_kernel_for(from_ty, to_ty) -> Callable:
    if from_ty == to_ty:
        return identity_kernel
    if isinstance(from_ty, ty.IntType) and isinstance(to_ty, ty.IntType) \
            and _int_cast_is_identity(from_ty, to_ty):
        return identity_kernel
    if isinstance(to_ty, ty.IntType):
        mask = (1 << to_ty.bits) - 1
        sign = 1 << (to_ty.bits - 1)
        excess = 1 << to_ty.bits
        signed = to_ty.signed
        from_float = isinstance(from_ty, ty.FloatType)

        def to_int(value):
            if from_float:
                if value != value or value == _INF or value == -_INF:
                    return 0        # defined (C leaves it undefined)
                value = int(value)
            r = value & mask
            if signed and r >= sign:
                return r - excess
            return r
        return to_int
    if to_ty.bits == 32:
        def to_f32(value):
            return _round32(float(value))
        return to_f32

    def to_f64(value):
        return float(value)
    return to_f64


# ---------------------------------------------------------------------------
# the tables and their lookup API
# ---------------------------------------------------------------------------

BINOP_KERNELS: Dict[Tuple[str, object], Callable] = {}
CMP_KERNELS: Dict[Tuple[str, object], Callable] = {}
UNOP_KERNELS: Dict[Tuple[str, object], Callable] = {}
CAST_KERNELS: Dict[Tuple[object, object], Callable] = {}

for _t in SCALAR_TYPES:
    _ops = _int_binops(_t) if isinstance(_t, ty.IntType) \
        else _float_binops(_t)
    for _op, _k in _ops.items():
        BINOP_KERNELS[(_op, _t)] = _k
    for _pred, _k in _cmp_kernels(_t).items():
        CMP_KERNELS[(_pred, _t)] = _k
    for _op, _k in _unop_kernels(_t).items():
        UNOP_KERNELS[(_op, _t)] = _k
    for _to in SCALAR_TYPES:
        CAST_KERNELS[(_t, _to)] = _cast_kernel_for(_t, _to)


def binop_kernel(op: str, value_ty) -> Callable:
    """``a op b`` evaluator specialized to ``value_ty``.  Unknown
    combinations defer to :func:`eval_binop` so traps and messages
    stay byte-identical with the reference ladder."""
    kernel = BINOP_KERNELS.get((op, value_ty))
    if kernel is None:
        def kernel(a, b, _op=op, _ty=value_ty):
            return eval_binop(_op, _ty, a, b)
    return kernel


def cmp_kernel(pred: str, value_ty) -> Callable:
    kernel = CMP_KERNELS.get((pred, value_ty))
    if kernel is None:
        def kernel(a, b, _pred=pred, _ty=value_ty):
            return eval_cmp(_pred, _ty, a, b)
    return kernel


def unop_kernel(op: str, value_ty) -> Callable:
    kernel = UNOP_KERNELS.get((op, value_ty))
    if kernel is None:
        def kernel(a, _op=op, _ty=value_ty):
            return eval_unop(_op, _ty, a)
    return kernel


def cast_kernel(from_ty, to_ty) -> Callable:
    kernel = CAST_KERNELS.get((from_ty, to_ty))
    if kernel is None:
        def kernel(value, _f=from_ty, _t=to_ty):
            return eval_cast(value, _f, _t)
    return kernel


def _generic_vec_kernel(op: str, elem_ty) -> Callable:
    kernel = binop_kernel(op, elem_ty)

    def vec_kernel(a, b, _k=kernel):
        if len(a) != len(b):
            raise TrapError("vector lane count mismatch")
        return [_k(x, y) for x, y in zip(a, b)]
    return vec_kernel


def _f32_quad_vec_kernel(op: str) -> Callable:
    """4-lane f32 binop: compute raw lane results, then round all four
    through one ``<4f`` pack/unpack round trip (identical per-lane
    rounding to the scalar kernel, two struct calls instead of eight)."""
    quad = struct.Struct("<4f")
    qpack, qunpack = quad.pack, quad.unpack
    generic = _generic_vec_kernel(op, ty.F32)
    fn = {"add": lambda x, y: x + y, "sub": lambda x, y: x - y,
          "mul": lambda x, y: x * y, "min": min, "max": max}[op]

    if op == "add":
        def vec_kernel(a, b):
            if len(a) != 4 or len(b) != 4:
                return generic(a, b)
            x0, x1, x2, x3 = a
            y0, y1, y2, y3 = b
            return list(qunpack(qpack(x0 + y0, x1 + y1,
                                      x2 + y2, x3 + y3)))
    elif op == "mul":
        def vec_kernel(a, b):
            if len(a) != 4 or len(b) != 4:
                return generic(a, b)
            x0, x1, x2, x3 = a
            y0, y1, y2, y3 = b
            return list(qunpack(qpack(x0 * y0, x1 * y1,
                                      x2 * y2, x3 * y3)))
    else:
        def vec_kernel(a, b):
            if len(a) != 4 or len(b) != 4:
                return generic(a, b)
            return list(qunpack(qpack(fn(a[0], b[0]), fn(a[1], b[1]),
                                      fn(a[2], b[2]), fn(a[3], b[3]))))
    return vec_kernel


def _int_lane_vec_kernel(op: str, int_ty: ty.IntType) -> Callable:
    """Lane-wise int binop with the wrap arithmetic inlined in the
    comprehension — no per-lane kernel call."""
    mask = (1 << int_ty.bits) - 1
    sign = 1 << (int_ty.bits - 1)
    excess = 1 << int_ty.bits
    expr = {"add": lambda x, y: x + y, "sub": lambda x, y: x - y,
            "mul": lambda x, y: x * y, "min": min, "max": max,
            "and": lambda x, y: (x & mask) & (y & mask),
            "or": lambda x, y: (x & mask) | (y & mask),
            "xor": lambda x, y: (x & mask) ^ (y & mask)}[op]

    if int_ty.signed:
        def vec_kernel(a, b, _f=expr):
            if len(a) != len(b):
                raise TrapError("vector lane count mismatch")
            return [r - excess if r >= sign else r
                    for r in [_f(x, y) & mask for x, y in zip(a, b)]]
    else:
        def vec_kernel(a, b, _f=expr):
            if len(a) != len(b):
                raise TrapError("vector lane count mismatch")
            return [_f(x, y) & mask for x, y in zip(a, b)]
    return vec_kernel


def _f64_vec_kernel(op: str) -> Callable:
    fn = {"add": lambda x, y: x + y, "sub": lambda x, y: x - y,
          "mul": lambda x, y: x * y, "min": min, "max": max}[op]

    def vec_kernel(a, b, _f=fn):
        if len(a) != len(b):
            raise TrapError("vector lane count mismatch")
        return [_f(x, y) for x, y in zip(a, b)]
    return vec_kernel


#: specialized lane-wise kernels for the hot (op, element) combos;
#: everything else goes through the per-lane scalar kernel
VEC_BINOP_KERNELS: Dict[Tuple[str, object], Callable] = {}
for _op in ("add", "sub", "mul", "min", "max"):
    VEC_BINOP_KERNELS[(_op, ty.F32)] = _f32_quad_vec_kernel(_op)
    VEC_BINOP_KERNELS[(_op, ty.F64)] = _f64_vec_kernel(_op)
for _t in ty.INT_TYPES:
    for _op in ("add", "sub", "mul", "min", "max", "and", "or", "xor"):
        VEC_BINOP_KERNELS[(_op, _t)] = _int_lane_vec_kernel(_op, _t)


def vec_binop_kernel(op: str, elem_ty) -> Callable:
    """Lane-wise binop over list vectors, built on the scalar kernel."""
    kernel = VEC_BINOP_KERNELS.get((op, elem_ty))
    if kernel is None:
        kernel = _generic_vec_kernel(op, elem_ty)
    return kernel
