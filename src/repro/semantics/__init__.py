"""Shared evaluation semantics for the whole stack.

The IR interpreter, the bytecode VM and the target simulators all
evaluate scalar and vector operations through this module, so the three
execution engines agree by construction: two's-complement wrap-around,
C-style truncating division, IEEE single/double rounding, and flat
little-endian memory.
"""

from repro.semantics.errors import TrapError
from repro.semantics.scalar import (
    eval_binop, eval_unop, eval_cmp, eval_cast, round_float,
)
from repro.semantics.memory import Memory, scalar_struct, vector_struct
from repro.semantics.vector import (
    vec_binop, vec_splat, vec_reduce, vec_cmp_lanes,
)
from repro.semantics.kernels import (
    binop_kernel, cast_kernel, cmp_kernel, unop_kernel, vec_binop_kernel,
)

__all__ = [
    "TrapError", "Memory", "scalar_struct", "vector_struct",
    "eval_binop", "eval_unop", "eval_cmp", "eval_cast", "round_float",
    "vec_binop", "vec_splat", "vec_reduce", "vec_cmp_lanes",
    "binop_kernel", "cast_kernel", "cmp_kernel", "unop_kernel",
    "vec_binop_kernel",
]
