"""Scalar operation semantics.

Integers are Python ints kept wrapped to their type's range; floats are
Python floats, rounded through IEEE single precision after every f32
operation so results match a real 32-bit FPU.
"""

from __future__ import annotations

import math
import operator
import struct

from repro.lang import types as ty
from repro.semantics.errors import TrapError

#: predicate name -> comparison function, hoisted to module level so
#: eval_cmp does not rebuild a dict on every single comparison
_CMP_FUNCS = {
    "eq": operator.eq, "ne": operator.ne,
    "lt": operator.lt, "le": operator.le,
    "gt": operator.gt, "ge": operator.ge,
}


def round_float(value: float, float_ty: ty.FloatType) -> float:
    """Round ``value`` to the precision of ``float_ty``."""
    if float_ty.bits == 32:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    return float(value)


def _trunc_div(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _trunc_rem(a: int, b: int) -> int:
    """C remainder: sign follows the dividend."""
    return a - _trunc_div(a, b) * b


def eval_binop(op: str, value_ty, a, b):
    """Evaluate ``a op b`` in type ``value_ty`` (IntType or FloatType)."""
    if isinstance(value_ty, ty.FloatType):
        return _eval_float_binop(op, value_ty, a, b)
    assert isinstance(value_ty, ty.IntType)
    return _eval_int_binop(op, value_ty, a, b)


def _eval_float_binop(op: str, float_ty: ty.FloatType,
                      a: float, b: float) -> float:
    if op == "add":
        r = a + b
    elif op == "sub":
        r = a - b
    elif op == "mul":
        r = a * b
    elif op == "div":
        if b == 0.0:
            # IEEE semantics: inf/nan rather than a trap.
            if a == 0.0 or math.isnan(a):
                r = math.nan
            else:
                r = math.inf if (a > 0) == (not math.copysign(1, b) < 0) \
                    else -math.inf
        else:
            r = a / b
    elif op == "min":
        r = min(a, b)
    elif op == "max":
        r = max(a, b)
    else:
        raise TrapError(f"float op {op!r} undefined")
    return round_float(r, float_ty)


def _eval_int_binop(op: str, int_ty: ty.IntType, a: int, b: int) -> int:
    if op == "add":
        r = a + b
    elif op == "sub":
        r = a - b
    elif op == "mul":
        r = a * b
    elif op == "div":
        if b == 0:
            raise TrapError("integer division by zero")
        r = _trunc_div(a, b)
    elif op == "rem":
        if b == 0:
            raise TrapError("integer remainder by zero")
        r = _trunc_rem(a, b)
    elif op == "and":
        r = _to_unsigned(a, int_ty) & _to_unsigned(b, int_ty)
    elif op == "or":
        r = _to_unsigned(a, int_ty) | _to_unsigned(b, int_ty)
    elif op == "xor":
        r = _to_unsigned(a, int_ty) ^ _to_unsigned(b, int_ty)
    elif op == "shl":
        r = a << (b & (int_ty.bits - 1))
    elif op == "shr":
        amount = b & (int_ty.bits - 1)
        if int_ty.signed:
            r = a >> amount                      # arithmetic shift
        else:
            r = _to_unsigned(a, int_ty) >> amount
    elif op == "min":
        r = min(a, b)
    elif op == "max":
        r = max(a, b)
    else:
        raise TrapError(f"integer op {op!r} undefined")
    return ty.wrap_int(r, int_ty)


def _to_unsigned(value: int, int_ty: ty.IntType) -> int:
    return value & ((1 << int_ty.bits) - 1)


def eval_unop(op: str, value_ty, a):
    if op == "neg":
        if isinstance(value_ty, ty.FloatType):
            return round_float(-a, value_ty)
        return ty.wrap_int(-a, value_ty)
    if op == "not":
        assert isinstance(value_ty, ty.IntType)
        return ty.wrap_int(~a, value_ty)
    raise TrapError(f"unary op {op!r} undefined")


def eval_cmp(pred: str, value_ty, a, b) -> int:
    """Comparison in ``value_ty``; returns 0 or 1.

    For unsigned integer types the comparison is performed on the
    unsigned bit patterns.
    """
    if isinstance(value_ty, ty.IntType) and not value_ty.signed:
        a = _to_unsigned(a, value_ty)
        b = _to_unsigned(b, value_ty)
    if isinstance(value_ty, ty.FloatType) and \
            (math.isnan(a) or math.isnan(b)):
        # Unordered comparisons are false except '!='.
        return 1 if pred == "ne" else 0
    compare = _CMP_FUNCS.get(pred)
    if compare is None:
        raise TrapError(f"cmp predicate {pred!r} undefined")
    return 1 if compare(a, b) else 0


def eval_cast(value, from_ty, to_ty):
    """Numeric conversion with C-like semantics."""
    if from_ty == to_ty:
        return value
    if isinstance(to_ty, ty.IntType):
        if isinstance(from_ty, ty.FloatType):
            if math.isnan(value) or math.isinf(value):
                return 0       # defined (C leaves it undefined)
            return ty.wrap_int(int(value), to_ty)
        return ty.wrap_int(int(value), to_ty)
    if isinstance(to_ty, ty.FloatType):
        return round_float(float(value), to_ty)
    raise TrapError(f"cast {from_ty} -> {to_ty} undefined")
