"""Runtime traps shared by every execution engine."""


class TrapError(Exception):
    """A runtime trap: division by zero, out-of-bounds access, bad opcode.

    Deliberately a single type — differential tests assert that when one
    engine traps, every engine traps.
    """
