"""Lane-wise vector semantics built on the scalar semantics.

Vectors are plain Python lists of lane values; the element type gives
the per-lane semantics.  Both the VM (executing portable ``vec.*``
bytecode) and the SIMD-capable simulators evaluate through these
helpers, so mapping vector bytecode to "hardware" SIMD can never change
results, only cost.
"""

from __future__ import annotations

from typing import List

from repro.semantics.scalar import eval_binop, eval_cmp
from repro.semantics.errors import TrapError


def vec_binop(op: str, elem_ty, a: List, b: List) -> List:
    if len(a) != len(b):
        raise TrapError("vector lane count mismatch")
    return [eval_binop(op, elem_ty, x, y) for x, y in zip(a, b)]


def vec_splat(value, lanes: int) -> List:
    return [value] * lanes


def vec_cmp_lanes(pred: str, elem_ty, a: List, b: List) -> List[int]:
    return [eval_cmp(pred, elem_ty, x, y) for x, y in zip(a, b)]


def vec_reduce(op: str, elem_ty, values: List):
    if not values:
        raise TrapError("reduce of empty vector")
    acc = values[0]
    for value in values[1:]:
        if op == "add":
            acc = eval_binop("add", elem_ty, acc, value)
        elif op == "max":
            acc = eval_binop("max", elem_ty, acc, value)
        elif op == "min":
            acc = eval_binop("min", elem_ty, acc, value)
        else:
            raise TrapError(f"reduce op {op!r} undefined")
    return acc
