"""Mid-level typed register IR.

This is the representation the *offline* compiler optimizes.  It is a
conventional three-address, control-flow-graph IR:

* values are virtual registers (:class:`~repro.ir.values.VReg`) or
  constants, typed with the scalar types of :mod:`repro.lang.types`
  (pointers are lowered to ``u64`` byte addresses into the flat PVI
  memory) plus 128-bit virtual vector types;
* instructions live in basic blocks; every block ends in exactly one
  terminator (``jump``, ``branch`` or ``ret``);
* the same instruction set is reused by the JIT as its low-level IR
  (LIR) after re-expanding bytecode — by then the high-level facts
  (loop structure, dependences) are gone, which is exactly the
  information gap split compilation bridges with annotations.
"""

from repro.ir.values import VReg, Const, VecType, Value
from repro.ir.instructions import (
    Instr, BinOp, UnOp, Cmp, Cast, Load, Store, Move, FrameAddr,
    Call, Ret, Jump, Branch, Select,
    VLoad, VStore, VBinOp, VSplat, VReduce,
    TERMINATORS,
)
from repro.ir.function import Module, Function, BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.printer import format_function, format_module
from repro.ir.verify import verify_function, IRVerifyError

__all__ = [
    "VReg", "Const", "VecType", "Value",
    "Instr", "BinOp", "UnOp", "Cmp", "Cast", "Load", "Store", "Move",
    "FrameAddr", "Call", "Ret", "Jump", "Branch", "Select",
    "VLoad", "VStore", "VBinOp", "VSplat", "VReduce", "TERMINATORS",
    "Module", "Function", "BasicBlock", "IRBuilder",
    "format_function", "format_module",
    "verify_function", "IRVerifyError",
]
