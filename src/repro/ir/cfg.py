"""CFG analyses: predecessors, orderings, dominators, natural loops."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.function import BasicBlock, Function


def predecessors(func: Function) -> Dict[str, List[str]]:
    """Map from block label to the labels of its predecessors."""
    preds: Dict[str, List[str]] = {b.label: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block.label)
    return preds


def reachable(func: Function) -> Set[str]:
    """Labels of blocks reachable from the entry."""
    seen: Set[str] = set()
    stack = [func.entry.label]
    blocks = func.block_map()
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(blocks[label].successors())
    return seen


def reverse_postorder(func: Function) -> List[str]:
    """Reverse postorder over reachable blocks (good for forward dataflow)."""
    blocks = func.block_map()
    seen: Set[str] = set()
    order: List[str] = []

    def visit(label: str) -> None:
        # Iterative DFS to avoid recursion limits on long CFGs.
        stack = [(label, iter(blocks[label].successors()))]
        seen.add(label)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(blocks[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(func.entry.label)
    order.reverse()
    return order


def dominators(func: Function) -> Dict[str, Set[str]]:
    """Classic iterative dominator sets (adequate for our CFG sizes)."""
    rpo = reverse_postorder(func)
    preds = predecessors(func)
    all_blocks = set(rpo)
    dom: Dict[str, Set[str]] = {label: set(all_blocks) for label in rpo}
    dom[func.entry.label] = {func.entry.label}
    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == func.entry.label:
                continue
            live_preds = [p for p in preds[label] if p in all_blocks]
            new: Set[str] = set(all_blocks)
            for p in live_preds:
                new &= dom[p]
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


@dataclass
class Loop:
    """A natural loop: back edge ``latch -> header``."""
    header: str
    latch: str
    body: Set[str] = field(default_factory=set)   # includes header and latch
    preheader: Optional[str] = None

    @property
    def blocks(self) -> Set[str]:
        return self.body

    def __repr__(self) -> str:
        return f"Loop(header={self.header}, blocks={sorted(self.body)})"


def natural_loops(func: Function) -> List[Loop]:
    """Find natural loops via back edges (latch dominated by header)."""
    dom = dominators(func)
    preds = predecessors(func)
    loops: List[Loop] = []
    for block in func.blocks:
        if block.label not in dom:
            continue
        for succ in block.successors():
            if succ in dom[block.label]:
                # back edge block -> succ
                loop = Loop(header=succ, latch=block.label)
                loop.body = {succ}
                stack = [block.label]
                while stack:
                    label = stack.pop()
                    if label in loop.body:
                        continue
                    loop.body.add(label)
                    stack.extend(p for p in preds[label] if p in dom)
                _find_preheader(loop, preds)
                loops.append(loop)
    return loops


def _find_preheader(loop: Loop, preds: Dict[str, List[str]]) -> None:
    """Record the unique out-of-loop predecessor of the header, if any."""
    outside = [p for p in preds[loop.header] if p not in loop.body]
    if len(outside) == 1:
        loop.preheader = outside[0]


def innermost_loops(func: Function) -> List[Loop]:
    """Loops that contain no other loop (vectorization candidates)."""
    loops = natural_loops(func)
    result = []
    for loop in loops:
        nested = any(other is not loop and other.body < loop.body
                     for other in loops)
        if not nested:
            result.append(loop)
    return result


def remove_unreachable(func: Function) -> int:
    """Delete unreachable blocks; returns how many were removed."""
    live = reachable(func)
    dead = [b for b in func.blocks if b.label not in live]
    func.blocks = [b for b in func.blocks if b.label in live]
    return len(dead)
