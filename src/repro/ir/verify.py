"""Structural and type verifier for IR functions.

Run after lowering and after every offline pass in tests: a pass that
produces ill-formed IR is a bug in the pass, and catching it at the
point of damage beats debugging a miscompile three stages later.
"""

from __future__ import annotations

from typing import Set

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.cfg import dominators, predecessors, reachable
from repro.ir.function import Function
from repro.ir.values import Const, VecType, VReg


class IRVerifyError(Exception):
    pass


def _fail(func: Function, message: str) -> None:
    raise IRVerifyError(f"{func.name}: {message}")


def verify_function(func: Function) -> None:
    """Raise :class:`IRVerifyError` on the first violation found."""
    if not func.blocks:
        _fail(func, "function has no blocks")

    labels = [b.label for b in func.blocks]
    if len(set(labels)) != len(labels):
        _fail(func, "duplicate block labels")
    label_set = set(labels)

    for block in func.blocks:
        if not block.instrs or not block.instrs[-1].is_terminator:
            _fail(func, f"block {block.label} lacks a terminator")
        for instr in block.instrs[:-1]:
            if instr.is_terminator:
                _fail(func, f"terminator in the middle of {block.label}")
        for target in block.successors():
            if target not in label_set:
                _fail(func, f"branch to unknown block {target!r}")
        for instr in block.instrs:
            _check_instr(func, block.label, instr)

    _check_defs_dominate_uses(func)


def _check_instr(func: Function, label: str, instr: ins.Instr) -> None:
    def bad(msg: str) -> None:
        _fail(func, f"{label}: {msg}: {instr!r}")

    if isinstance(instr, ins.BinOp):
        if instr.dst.ty != instr.ty:
            bad("binop dst type mismatch")
        for operand in (instr.a, instr.b):
            if operand.ty != instr.ty:
                bad(f"binop operand type {operand.ty} != {instr.ty}")
        if instr.op in ("and", "or", "xor", "shl", "shr", "rem") and \
                not ty.is_integer(instr.ty):
            bad(f"{instr.op} requires integer type")
    elif isinstance(instr, ins.Cmp):
        if instr.dst.ty != ty.I32:
            bad("cmp result must be i32")
        for operand in (instr.a, instr.b):
            if operand.ty != instr.ty:
                bad("cmp operand type mismatch")
    elif isinstance(instr, ins.Cast):
        if instr.dst.ty != instr.to_ty:
            bad("cast dst type mismatch")
        if instr.src.ty != instr.from_ty:
            bad("cast src type mismatch")
    elif isinstance(instr, ins.Move):
        if instr.dst.ty != instr.src.ty:
            bad("move type mismatch")
    elif isinstance(instr, ins.Select):
        if instr.dst.ty != instr.ty:
            bad("select dst type mismatch")
        for operand in (instr.a, instr.b):
            if operand.ty != instr.ty:
                bad("select operand type mismatch")
        if not isinstance(instr.cond.ty, ty.IntType):
            bad("select condition must be an integer")
    elif isinstance(instr, ins.Load):
        if instr.dst.ty != instr.ty:
            bad("load dst type mismatch")
        if not _is_address(instr.addr):
            bad("load address must be u64/i64")
    elif isinstance(instr, ins.Store):
        if instr.value.ty != instr.ty:
            bad("store value type mismatch")
        if not _is_address(instr.addr):
            bad("store address must be u64/i64")
    elif isinstance(instr, ins.FrameAddr):
        if instr.slot not in func.frame_slots:
            bad(f"unknown frame slot {instr.slot!r}")
        if instr.dst.ty != ty.U64:
            bad("frame_addr result must be u64")
    elif isinstance(instr, ins.Ret):
        if isinstance(func.ret_ty, ty.VoidType):
            if instr.value is not None:
                bad("void function returning a value")
        else:
            if instr.value is None:
                bad("missing return value")
            elif instr.value.ty != func.ret_ty:
                bad(f"return type {instr.value.ty} != {func.ret_ty}")
    elif isinstance(instr, ins.VLoad):
        if instr.dst.ty != instr.vty:
            bad("vload dst type mismatch")
        if not _is_address(instr.addr):
            bad("vload address must be u64/i64")
    elif isinstance(instr, ins.VStore):
        if instr.value.ty != instr.vty:
            bad("vstore value type mismatch")
    elif isinstance(instr, ins.VBinOp):
        if instr.dst.ty != instr.vty:
            bad("vbinop dst type mismatch")
        for operand in (instr.a, instr.b):
            if operand.ty != instr.vty:
                bad("vbinop operand type mismatch")
    elif isinstance(instr, ins.VSplat):
        if instr.dst.ty != instr.vty:
            bad("vsplat dst type mismatch")
        if instr.scalar.ty != instr.vty.elem:
            bad("vsplat scalar type mismatch")
    elif isinstance(instr, ins.VReduce):
        if instr.dst.ty != instr.acc_ty:
            bad("vreduce dst type mismatch")
        if instr.src.ty != instr.vty:
            bad("vreduce src type mismatch")
        if ty.is_integer(instr.vty.elem) != ty.is_integer(instr.acc_ty):
            bad("vreduce accumulator class mismatch")


def _is_address(value) -> bool:
    return isinstance(value.ty, ty.IntType) and value.ty.bits == 64


def _check_defs_dominate_uses(func: Function) -> None:
    """Every use must be dominated by a definition (non-SSA: any def)."""
    dom = dominators(func)
    live_labels = reachable(func)

    # Block of each definition (a reg may be defined in several blocks).
    def_blocks: dict[VReg, Set[str]] = {}
    for param in func.params:
        def_blocks.setdefault(param, set()).add(func.entry.label)
    for block in func.blocks:
        for instr in block.instrs:
            for reg in instr.defs():
                def_blocks.setdefault(reg, set()).add(block.label)

    for block in func.blocks:
        if block.label not in live_labels:
            continue
        defined_here: Set[VReg] = set(
            func.params) if block.label == func.entry.label else set()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg in defined_here:
                    continue
                blocks_defining = def_blocks.get(reg, set())
                dominated = any(d in dom[block.label] and d != block.label
                                for d in blocks_defining)
                # Non-SSA IR with multi-block defs (e.g. loop-carried
                # values written in the latch): accept a def anywhere as
                # long as at least one def exists.  Strict dominance is
                # checked only when the reg has a single def.
                if not blocks_defining:
                    _fail(func, f"use of undefined register {reg!r} "
                                f"in {block.label}")
                if len(blocks_defining) == 1 and not dominated:
                    only = next(iter(blocks_defining))
                    if only != block.label:
                        _fail(func,
                              f"use of {reg!r} in {block.label} not "
                              f"dominated by its def in {only}")
                    else:
                        # The single def is later in this very block, so
                        # the first execution would read garbage.
                        _fail(func, f"use of {reg!r} before its def "
                                    f"in {block.label}")
            for reg in instr.defs():
                defined_here.add(reg)
