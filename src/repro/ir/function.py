"""Module / Function / BasicBlock containers for the IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import types as ty
from repro.ir.instructions import Instr, branch_targets
from repro.ir.values import IRType, VReg


class BasicBlock:
    """A labelled straight-line sequence ending in one terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        term = self.terminator
        return branch_targets(term) if term is not None else []

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def __repr__(self) -> str:
        return f"BasicBlock({self.label}, {len(self.instrs)} instrs)"


@dataclass
class FrameSlot:
    """A stack-allocated local (array or address-taken scalar)."""
    name: str
    size: int
    align: int
    offset: int = 0   # assigned by layout_frame()


class Function:
    """An IR function: ordered blocks, parameters, frame slots."""

    def __init__(self, name: str, ret_ty: ty.Type):
        self.name = name
        self.ret_ty = ret_ty
        self.params: List[VReg] = []
        self.blocks: List[BasicBlock] = []
        self.frame_slots: Dict[str, FrameSlot] = {}
        self._next_reg = 0
        self._next_label = 0

    # -- registers and labels -------------------------------------------------

    def new_reg(self, reg_ty: IRType, name: str = "") -> VReg:
        reg = VReg(self._next_reg, reg_ty, name)
        self._next_reg += 1
        return reg

    def new_param(self, reg_ty: IRType, name: str = "") -> VReg:
        reg = self.new_reg(reg_ty, name)
        self.params.append(reg)
        return reg

    def new_block(self, hint: str = "bb") -> BasicBlock:
        block = BasicBlock(f"{hint}{self._next_label}")
        self._next_label += 1
        self.blocks.append(block)
        return block

    def add_frame_slot(self, name: str, size: int, align: int) -> FrameSlot:
        if name in self.frame_slots:
            base, n = name, 1
            while f"{base}.{n}" in self.frame_slots:
                n += 1
            name = f"{base}.{n}"
        slot = FrameSlot(name, size, align)
        self.frame_slots[name] = slot
        return slot

    # -- structure ----------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(label)

    def block_map(self) -> Dict[str, BasicBlock]:
        return {b.label: b for b in self.blocks}

    def instructions(self):
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instrs

    def layout_frame(self) -> int:
        """Assign frame-slot offsets; returns the total frame size."""
        offset = 0
        for slot in self.frame_slots.values():
            offset = (offset + slot.align - 1) // slot.align * slot.align
            slot.offset = offset
            offset += slot.size
        return (offset + 15) // 16 * 16

    def __repr__(self) -> str:
        return f"Function({self.name}, {len(self.blocks)} blocks)"


@dataclass
class Module:
    """A translation unit: an ordered set of functions."""
    name: str = "module"
    functions: Dict[str, Function] = field(default_factory=dict)

    def add(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __iter__(self):
        return iter(self.functions.values())
