"""IR value model: virtual registers, constants and vector types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.lang import types as ty

#: The portable virtual vector width, in bytes.  The paper's bytecode
#: builtins are width-agnostic from the program's point of view; PVI
#: fixes a 128-bit virtual vector (like SSE/AltiVec/Wasm-SIMD) and the
#: JIT either maps it 1:1 onto hardware vectors or scalarizes it.
VECTOR_BYTES = 16


@dataclass(frozen=True)
class VecType:
    """A virtual vector: ``lanes`` elements of scalar type ``elem``."""
    elem: ty.Type
    lanes: int

    def __post_init__(self) -> None:
        assert ty.is_arithmetic(self.elem)
        assert self.lanes * ty.sizeof(self.elem) == VECTOR_BYTES, \
            f"vector must be {VECTOR_BYTES} bytes"

    def __str__(self) -> str:
        return f"<{self.lanes} x {self.elem}>"


def vec_of(elem: ty.Type) -> VecType:
    """The full-width virtual vector whose element type is ``elem``."""
    return VecType(elem, VECTOR_BYTES // ty.sizeof(elem))


IRType = Union[ty.Type, VecType]


class VReg:
    """A virtual register.

    Identity-based (two VRegs with the same id are the same object in a
    well-formed function); ``name`` is only a debugging hint.
    """

    __slots__ = ("id", "ty", "name")

    def __init__(self, reg_id: int, reg_ty: IRType, name: str = ""):
        self.id = reg_id
        self.ty = reg_ty
        self.name = name

    def __repr__(self) -> str:
        hint = f".{self.name}" if self.name else ""
        return f"%{self.id}{hint}"

    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VReg) and other.id == self.id


@dataclass(frozen=True)
class Const:
    """An immediate operand.  Integer values are stored wrapped."""
    value: Union[int, float]
    ty: ty.Type

    def __post_init__(self) -> None:
        if isinstance(self.ty, ty.IntType):
            object.__setattr__(self, "value",
                               ty.wrap_int(int(self.value), self.ty))
        elif isinstance(self.ty, ty.FloatType):
            object.__setattr__(self, "value", float(self.value))

    def __repr__(self) -> str:
        return f"{self.value}:{self.ty}"


Value = Union[VReg, Const]


def value_type(value: Value) -> IRType:
    return value.ty
