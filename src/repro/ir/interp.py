"""A direct interpreter for the mid-level IR.

Primarily a testing vehicle: the offline optimizer is validated by
running functions before and after each pass and comparing results and
memory.  It shares its evaluation semantics with the bytecode VM and
the target simulators (:mod:`repro.semantics`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function, Module
from repro.ir.values import Const, VecType, VReg
from repro.semantics import (
    Memory, TrapError, eval_binop, eval_cast, eval_cmp, eval_unop,
    vec_binop, vec_reduce, vec_splat,
)

#: Default instruction budget; tests on tiny kernels never get close,
#: and a runaway loop fails fast instead of hanging the suite.
DEFAULT_FUEL = 20_000_000


class IRInterpreter:
    """Executes IR functions against a flat :class:`Memory`."""

    def __init__(self, module: Module, memory: Optional[Memory] = None,
                 fuel: int = DEFAULT_FUEL):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.fuel = fuel
        self.instructions_executed = 0

    def call(self, name: str, args: List):
        """Call function ``name`` with Python scalar arguments."""
        func = self.module[name]
        if len(args) != len(func.params):
            raise TrapError(f"{name} expects {len(func.params)} args")
        return self._run(func, args)

    def _run(self, func: Function, args: List):
        regs: Dict[int, object] = {}
        for param, arg in zip(func.params, args):
            regs[param.id] = _coerce_to(param.ty, arg)

        frame_size = func.layout_frame()
        frame_base = self.memory.push_frame(frame_size) if frame_size else 0
        blocks = func.block_map()
        block = func.entry
        index = 0

        try:
            while True:
                if index >= len(block.instrs):
                    raise TrapError(
                        f"fell off the end of block {block.label}")
                instr = block.instrs[index]
                index += 1
                self.instructions_executed += 1
                if self.instructions_executed > self.fuel:
                    raise TrapError("interpreter fuel exhausted")

                result = self._step(func, instr, regs, frame_base)
                if isinstance(result, _Return):
                    return result.value
                if isinstance(result, str):      # branch target label
                    block = blocks[result]
                    index = 0
        finally:
            if frame_size:
                self.memory.pop_frame(frame_base, frame_size)

    # -- single instruction -----------------------------------------------------

    def _step(self, func: Function, instr: ins.Instr,
              regs: Dict[int, object], frame_base: int):
        def val(operand):
            if isinstance(operand, Const):
                return operand.value
            assert isinstance(operand, VReg)
            try:
                return regs[operand.id]
            except KeyError:
                raise TrapError(f"read of undefined register {operand!r}")

        if isinstance(instr, ins.BinOp):
            regs[instr.dst.id] = eval_binop(instr.op, instr.ty,
                                            val(instr.a), val(instr.b))
        elif isinstance(instr, ins.UnOp):
            regs[instr.dst.id] = eval_unop(instr.op, instr.ty, val(instr.a))
        elif isinstance(instr, ins.Cmp):
            regs[instr.dst.id] = eval_cmp(instr.pred, instr.ty,
                                          val(instr.a), val(instr.b))
        elif isinstance(instr, ins.Cast):
            regs[instr.dst.id] = eval_cast(val(instr.src), instr.from_ty,
                                           instr.to_ty)
        elif isinstance(instr, ins.Move):
            regs[instr.dst.id] = val(instr.src)
        elif isinstance(instr, ins.Select):
            regs[instr.dst.id] = val(instr.a) if val(instr.cond) != 0 \
                else val(instr.b)
        elif isinstance(instr, ins.Load):
            regs[instr.dst.id] = self.memory.load(instr.ty, val(instr.addr))
        elif isinstance(instr, ins.Store):
            self.memory.store(instr.ty, val(instr.addr), val(instr.value))
        elif isinstance(instr, ins.FrameAddr):
            slot = func.frame_slots[instr.slot]
            regs[instr.dst.id] = frame_base + slot.offset
        elif isinstance(instr, ins.Call):
            result = self.call(instr.callee, [val(a) for a in instr.args])
            if instr.dst is not None:
                regs[instr.dst.id] = result
        elif isinstance(instr, ins.Ret):
            return _Return(val(instr.value) if instr.value is not None
                           else None)
        elif isinstance(instr, ins.Jump):
            return instr.target
        elif isinstance(instr, ins.Branch):
            return instr.then_target if val(instr.cond) != 0 \
                else instr.else_target
        elif isinstance(instr, ins.VLoad):
            regs[instr.dst.id] = self.memory.load_vec(
                instr.vty.elem, instr.vty.lanes, val(instr.addr))
        elif isinstance(instr, ins.VStore):
            self.memory.store_vec(instr.vty.elem, val(instr.addr),
                                  val(instr.value))
        elif isinstance(instr, ins.VBinOp):
            regs[instr.dst.id] = vec_binop(instr.op, instr.vty.elem,
                                           val(instr.a), val(instr.b))
        elif isinstance(instr, ins.VSplat):
            regs[instr.dst.id] = vec_splat(val(instr.scalar),
                                           instr.vty.lanes)
        elif isinstance(instr, ins.VReduce):
            lanes = [eval_cast(lane, instr.vty.elem, instr.acc_ty)
                     for lane in val(instr.src)]
            regs[instr.dst.id] = vec_reduce(instr.op, instr.acc_ty, lanes)
        else:
            raise TrapError(f"unknown instruction {type(instr).__name__}")
        return None


class _Return:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _coerce_to(reg_ty, value):
    """Coerce a Python argument to the register type's domain."""
    if isinstance(reg_ty, VecType):
        return list(value)
    if isinstance(reg_ty, ty.IntType):
        return ty.wrap_int(int(value), reg_ty)
    if isinstance(reg_ty, ty.FloatType):
        from repro.semantics import round_float
        return round_float(float(value), reg_ty)
    return value
