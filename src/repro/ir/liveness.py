"""Block-level liveness analysis over virtual registers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ir.cfg import predecessors
from repro.ir.function import Function
from repro.ir.values import VReg


@dataclass
class BlockLiveness:
    use: Set[VReg] = field(default_factory=set)     # upward-exposed uses
    defs: Set[VReg] = field(default_factory=set)
    live_in: Set[VReg] = field(default_factory=set)
    live_out: Set[VReg] = field(default_factory=set)


def analyze(func: Function) -> Dict[str, BlockLiveness]:
    """Backward may-liveness over the CFG.

    Function parameters are treated as defined on entry.
    """
    info: Dict[str, BlockLiveness] = {}
    for block in func.blocks:
        bl = BlockLiveness()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in bl.defs:
                    bl.use.add(reg)
            bl.defs.update(instr.defs())
        info[block.label] = bl

    preds = predecessors(func)
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            bl = info[block.label]
            out: Set[VReg] = set()
            for succ in block.successors():
                out |= info[succ].live_in
            new_in = bl.use | (out - bl.defs)
            if out != bl.live_out or new_in != bl.live_in:
                bl.live_out = out
                bl.live_in = new_in
                changed = True
    return info


def live_ranges(func: Function) -> Dict[VReg, Tuple[int, int]]:
    """Linear live intervals over a flat numbering of instructions.

    This is the classic linear-scan approximation: an interval spans
    from the first definition to the last use (extended across blocks
    where the register is live).  Parameters start at position -1.
    """
    info = analyze(func)
    positions: Dict[int, Tuple[str, int]] = {}
    starts: Dict[VReg, int] = {}
    ends: Dict[VReg, int] = {}

    for param in func.params:
        starts[param] = -1
        ends[param] = -1

    index = 0
    block_bounds: Dict[str, Tuple[int, int]] = {}
    for block in func.blocks:
        begin = index
        for instr in block.instrs:
            for reg in instr.uses():
                ends[reg] = max(ends.get(reg, index), index)
                starts.setdefault(reg, index)
            for reg in instr.defs():
                starts.setdefault(reg, index)
                # A definition extends the interval even when the value
                # is never read again: code generation still writes the
                # register, so the register must stay reserved or a
                # dead store would clobber whoever reuses it.
                ends[reg] = max(ends.get(reg, index), index)
            index += 1
        block_bounds[block.label] = (begin, index - 1)

    # Extend intervals across blocks where the value is live-in/out.
    for block in func.blocks:
        begin, end = block_bounds[block.label]
        bl = info[block.label]
        for reg in bl.live_in:
            starts[reg] = min(starts.get(reg, begin), begin)
            ends[reg] = max(ends.get(reg, begin), begin)
        for reg in bl.live_out:
            starts[reg] = min(starts.get(reg, end), end)
            ends[reg] = max(ends.get(reg, end), end)

    return {reg: (starts[reg], ends[reg]) for reg in starts}


def max_live(func: Function) -> int:
    """MAXLIVE: the maximum number of simultaneously live registers."""
    ranges = live_ranges(func)
    events: List[Tuple[int, int]] = []
    for start, end in ranges.values():
        events.append((start, 1))
        events.append((end + 1, -1))
    events.sort()
    current = peak = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak
