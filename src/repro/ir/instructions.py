"""IR instruction set.

Every instruction has an optional destination register (``dst``) and a
list of source operands (``srcs``) so generic passes (liveness, DCE,
copy propagation, register allocation) can treat instructions
uniformly; subclasses add named accessors for readability.

Integer semantics are two's complement with wrap-around at the operand
type's width.  Signed division truncates toward zero (C semantics).
Comparisons produce ``i32`` 0/1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.lang import types as ty
from repro.ir.values import Const, IRType, Value, VecType, VReg

#: Binary opcodes (semantics selected by the operand type).
BINOPS = ("add", "sub", "mul", "div", "rem",
          "and", "or", "xor", "shl", "shr",
          "min", "max")

#: Comparison predicates.
CMP_PREDS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Unary opcodes.
UNOPS = ("neg", "not")

#: Vector reduce opcodes.
VREDUCE_OPS = ("add", "max", "min")


class Instr:
    """Base instruction."""

    __slots__ = ("dst", "srcs")

    def __init__(self, dst: Optional[VReg], srcs: Sequence[Value]):
        self.dst = dst
        self.srcs: List[Value] = list(srcs)

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, TERMINATORS)

    def uses(self) -> List[VReg]:
        """Registers read by this instruction."""
        return [s for s in self.srcs if isinstance(s, VReg)]

    def defs(self) -> List[VReg]:
        """Registers written by this instruction."""
        return [self.dst] if self.dst is not None else []

    def replace_use(self, old: VReg, new: Value) -> None:
        self.srcs = [new if s == old else s for s in self.srcs]

    def has_side_effects(self) -> bool:
        """True if the instruction must not be removed even when dead."""
        return isinstance(self, (Store, VStore, Call, Ret, Jump, Branch))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.ir.printer import format_instr
        return format_instr(self)


class BinOp(Instr):
    __slots__ = ("op", "ty")

    def __init__(self, op: str, dst: VReg, a: Value, b: Value,
                 result_ty: ty.Type):
        assert op in BINOPS, op
        super().__init__(dst, [a, b])
        self.op = op
        self.ty = result_ty

    @property
    def a(self) -> Value:
        return self.srcs[0]

    @property
    def b(self) -> Value:
        return self.srcs[1]


class UnOp(Instr):
    __slots__ = ("op", "ty")

    def __init__(self, op: str, dst: VReg, a: Value, result_ty: ty.Type):
        assert op in UNOPS, op
        super().__init__(dst, [a])
        self.op = op
        self.ty = result_ty

    @property
    def a(self) -> Value:
        return self.srcs[0]


class Cmp(Instr):
    """``dst = (a pred b)`` evaluated in type ``ty``; dst is i32 0/1."""

    __slots__ = ("pred", "ty")

    def __init__(self, pred: str, dst: VReg, a: Value, b: Value,
                 operand_ty: ty.Type):
        assert pred in CMP_PREDS, pred
        super().__init__(dst, [a, b])
        self.pred = pred
        self.ty = operand_ty

    @property
    def a(self) -> Value:
        return self.srcs[0]

    @property
    def b(self) -> Value:
        return self.srcs[1]


class Cast(Instr):
    """Numeric conversion from ``from_ty`` to ``to_ty``."""

    __slots__ = ("from_ty", "to_ty")

    def __init__(self, dst: VReg, src: Value, from_ty: ty.Type,
                 to_ty: ty.Type):
        super().__init__(dst, [src])
        self.from_ty = from_ty
        self.to_ty = to_ty

    @property
    def src(self) -> Value:
        return self.srcs[0]


class Move(Instr):
    """Register copy (also used to materialize constants)."""

    def __init__(self, dst: VReg, src: Value):
        super().__init__(dst, [src])

    @property
    def src(self) -> Value:
        return self.srcs[0]


class Select(Instr):
    """``dst = cond != 0 ? a : b`` — branch-free conditional move."""

    __slots__ = ("ty",)

    def __init__(self, dst: VReg, cond: Value, a: Value, b: Value,
                 result_ty: ty.Type):
        super().__init__(dst, [cond, a, b])
        self.ty = result_ty

    @property
    def cond(self) -> Value:
        return self.srcs[0]

    @property
    def a(self) -> Value:
        return self.srcs[1]

    @property
    def b(self) -> Value:
        return self.srcs[2]


class Load(Instr):
    """``dst = *(ty*)addr``; addr is a u64 byte address."""

    __slots__ = ("ty",)

    def __init__(self, dst: VReg, addr: Value, mem_ty: ty.Type):
        super().__init__(dst, [addr])
        self.ty = mem_ty

    @property
    def addr(self) -> Value:
        return self.srcs[0]


class Store(Instr):
    """``*(ty*)addr = value``."""

    __slots__ = ("ty",)

    def __init__(self, addr: Value, value: Value, mem_ty: ty.Type):
        super().__init__(None, [addr, value])
        self.ty = mem_ty

    @property
    def addr(self) -> Value:
        return self.srcs[0]

    @property
    def value(self) -> Value:
        return self.srcs[1]


class FrameAddr(Instr):
    """``dst = &frame_slot`` — address of a stack-allocated local."""

    __slots__ = ("slot",)

    def __init__(self, dst: VReg, slot: str):
        super().__init__(dst, [])
        self.slot = slot


class Call(Instr):
    __slots__ = ("callee", "ret_ty")

    def __init__(self, dst: Optional[VReg], callee: str,
                 args: Sequence[Value], ret_ty: ty.Type):
        super().__init__(dst, args)
        self.callee = callee
        self.ret_ty = ret_ty

    @property
    def args(self) -> List[Value]:
        return self.srcs


class Ret(Instr):
    def __init__(self, value: Optional[Value] = None):
        super().__init__(None, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.srcs[0] if self.srcs else None


class Jump(Instr):
    __slots__ = ("target",)

    def __init__(self, target: str):
        super().__init__(None, [])
        self.target = target


class Branch(Instr):
    """Conditional branch on a non-zero i32/i64 condition."""

    __slots__ = ("then_target", "else_target")

    def __init__(self, cond: Value, then_target: str, else_target: str):
        super().__init__(None, [cond])
        self.then_target = then_target
        self.else_target = else_target

    @property
    def cond(self) -> Value:
        return self.srcs[0]


# ---------------------------------------------------------------------------
# Vector instructions (produced by the offline auto-vectorizer)
# ---------------------------------------------------------------------------

class VLoad(Instr):
    __slots__ = ("vty",)

    def __init__(self, dst: VReg, addr: Value, vty: VecType):
        super().__init__(dst, [addr])
        self.vty = vty

    @property
    def addr(self) -> Value:
        return self.srcs[0]


class VStore(Instr):
    __slots__ = ("vty",)

    def __init__(self, addr: Value, value: Value, vty: VecType):
        super().__init__(None, [addr, value])
        self.vty = vty

    @property
    def addr(self) -> Value:
        return self.srcs[0]

    @property
    def value(self) -> Value:
        return self.srcs[1]


class VBinOp(Instr):
    """Lane-wise binary operation on full virtual vectors."""

    __slots__ = ("op", "vty")

    def __init__(self, op: str, dst: VReg, a: Value, b: Value, vty: VecType):
        assert op in BINOPS, op
        super().__init__(dst, [a, b])
        self.op = op
        self.vty = vty

    @property
    def a(self) -> Value:
        return self.srcs[0]

    @property
    def b(self) -> Value:
        return self.srcs[1]


class VSplat(Instr):
    """Broadcast a scalar into every lane."""

    __slots__ = ("vty",)

    def __init__(self, dst: VReg, scalar: Value, vty: VecType):
        super().__init__(dst, [scalar])
        self.vty = vty

    @property
    def scalar(self) -> Value:
        return self.srcs[0]


class VReduce(Instr):
    """Horizontal reduction of a vector into a scalar accumulator type.

    Lanes are first converted to ``acc_ty`` (zero/sign extension per the
    element type) and then combined, so ``vreduce.add`` over sixteen
    ``u8`` lanes into an ``i32`` is exact — the idiom hardware exposes
    as ``psadbw``-style instructions and the scalarizing JIT expands to
    a widen+op chain.
    """

    __slots__ = ("op", "vty", "acc_ty")

    def __init__(self, op: str, dst: VReg, src: Value, vty: VecType,
                 acc_ty=None):
        assert op in VREDUCE_OPS, op
        super().__init__(dst, [src])
        self.op = op
        self.vty = vty
        self.acc_ty = acc_ty if acc_ty is not None else vty.elem

    @property
    def src(self) -> Value:
        return self.srcs[0]


TERMINATORS: Tuple[type, ...] = (Ret, Jump, Branch)


def branch_targets(instr: Instr) -> List[str]:
    """Successor block labels of a terminator (empty for ``ret``)."""
    if isinstance(instr, Jump):
        return [instr.target]
    if isinstance(instr, Branch):
        return [instr.then_target, instr.else_target]
    return []


def retarget(instr: Instr, old: str, new: str) -> None:
    """Replace a successor label in a terminator."""
    if isinstance(instr, Jump) and instr.target == old:
        instr.target = new
    elif isinstance(instr, Branch):
        if instr.then_target == old:
            instr.then_target = new
        if instr.else_target == old:
            instr.else_target = new
