"""Human-readable IR dumps (used by tests, debugging and docs)."""

from __future__ import annotations

from repro.ir import instructions as ins
from repro.ir.function import Function, Module
from repro.ir.values import Const, VReg


def _operand(value) -> str:
    if isinstance(value, VReg):
        hint = f".{value.name}" if value.name else ""
        return f"%{value.id}{hint}"
    if isinstance(value, Const):
        return f"{value.value}:{value.ty}"
    return repr(value)


def format_instr(instr: ins.Instr) -> str:
    if isinstance(instr, ins.BinOp):
        return (f"{_operand(instr.dst)} = {instr.op}.{instr.ty} "
                f"{_operand(instr.a)}, {_operand(instr.b)}")
    if isinstance(instr, ins.UnOp):
        return f"{_operand(instr.dst)} = {instr.op}.{instr.ty} {_operand(instr.a)}"
    if isinstance(instr, ins.Cmp):
        return (f"{_operand(instr.dst)} = cmp.{instr.pred}.{instr.ty} "
                f"{_operand(instr.a)}, {_operand(instr.b)}")
    if isinstance(instr, ins.Cast):
        return (f"{_operand(instr.dst)} = cast.{instr.from_ty}.{instr.to_ty} "
                f"{_operand(instr.src)}")
    if isinstance(instr, ins.Move):
        return f"{_operand(instr.dst)} = mov {_operand(instr.src)}"
    if isinstance(instr, ins.Select):
        return (f"{_operand(instr.dst)} = select.{instr.ty} "
                f"{_operand(instr.cond)}, {_operand(instr.a)}, "
                f"{_operand(instr.b)}")
    if isinstance(instr, ins.Load):
        return f"{_operand(instr.dst)} = load.{instr.ty} [{_operand(instr.addr)}]"
    if isinstance(instr, ins.Store):
        return f"store.{instr.ty} [{_operand(instr.addr)}], {_operand(instr.value)}"
    if isinstance(instr, ins.FrameAddr):
        return f"{_operand(instr.dst)} = frame_addr {instr.slot}"
    if isinstance(instr, ins.Call):
        args = ", ".join(_operand(a) for a in instr.args)
        if instr.dst is not None:
            return f"{_operand(instr.dst)} = call @{instr.callee}({args})"
        return f"call @{instr.callee}({args})"
    if isinstance(instr, ins.Ret):
        return f"ret {_operand(instr.value)}" if instr.value is not None else "ret"
    if isinstance(instr, ins.Jump):
        return f"jump {instr.target}"
    if isinstance(instr, ins.Branch):
        return (f"branch {_operand(instr.cond)}, "
                f"{instr.then_target}, {instr.else_target}")
    if isinstance(instr, ins.VLoad):
        return f"{_operand(instr.dst)} = vload.{instr.vty} [{_operand(instr.addr)}]"
    if isinstance(instr, ins.VStore):
        return f"vstore.{instr.vty} [{_operand(instr.addr)}], {_operand(instr.value)}"
    if isinstance(instr, ins.VBinOp):
        return (f"{_operand(instr.dst)} = v{instr.op}.{instr.vty} "
                f"{_operand(instr.a)}, {_operand(instr.b)}")
    if isinstance(instr, ins.VSplat):
        return f"{_operand(instr.dst)} = vsplat.{instr.vty} {_operand(instr.scalar)}"
    if isinstance(instr, ins.VReduce):
        return (f"{_operand(instr.dst)} = vreduce.{instr.op}.{instr.vty}"
                f"->{instr.acc_ty} {_operand(instr.src)}")
    return f"<unknown {type(instr).__name__}>"


def format_function(func: Function) -> str:
    params = ", ".join(f"{_operand(p)}: {p.ty}" for p in func.params)
    lines = [f"func @{func.name}({params}) -> {func.ret_ty} {{"]
    for slot in func.frame_slots.values():
        lines.append(f"  frame {slot.name}: {slot.size} bytes align {slot.align}")
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"  {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    return "\n\n".join(format_function(f) for f in module)
