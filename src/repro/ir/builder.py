"""Convenience builder for emitting IR instructions."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import BasicBlock, Function
from repro.ir.values import Const, IRType, Value, VecType, VReg


class IRBuilder:
    """Appends instructions to a current insertion block."""

    def __init__(self, func: Function):
        self.func = func
        self.block: Optional[BasicBlock] = None

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def emit(self, instr: ins.Instr) -> ins.Instr:
        assert self.block is not None, "no insertion block"
        assert self.block.terminator is None, \
            f"emitting into terminated block {self.block.label}"
        return self.block.append(instr)

    # -- scalar ops ----------------------------------------------------------

    def binop(self, op: str, a: Value, b: Value, result_ty: ty.Type,
              name: str = "") -> VReg:
        dst = self.func.new_reg(result_ty, name)
        self.emit(ins.BinOp(op, dst, a, b, result_ty))
        return dst

    def unop(self, op: str, a: Value, result_ty: ty.Type,
             name: str = "") -> VReg:
        dst = self.func.new_reg(result_ty, name)
        self.emit(ins.UnOp(op, dst, a, result_ty))
        return dst

    def cmp(self, pred: str, a: Value, b: Value, operand_ty: ty.Type,
            name: str = "") -> VReg:
        dst = self.func.new_reg(ty.I32, name)
        self.emit(ins.Cmp(pred, dst, a, b, operand_ty))
        return dst

    def cast(self, src: Value, from_ty: ty.Type, to_ty: ty.Type,
             name: str = "") -> VReg:
        dst = self.func.new_reg(to_ty, name)
        self.emit(ins.Cast(dst, src, from_ty, to_ty))
        return dst

    def select(self, cond: Value, a: Value, b: Value,
               result_ty: ty.Type, name: str = "") -> VReg:
        dst = self.func.new_reg(result_ty, name)
        self.emit(ins.Select(dst, cond, a, b, result_ty))
        return dst

    def move(self, src: Value, name: str = "") -> VReg:
        dst = self.func.new_reg(src.ty, name)
        self.emit(ins.Move(dst, src))
        return dst

    def const(self, value, const_ty: ty.Type) -> Const:
        return Const(value, const_ty)

    def load(self, addr: Value, mem_ty: ty.Type, name: str = "") -> VReg:
        dst = self.func.new_reg(mem_ty, name)
        self.emit(ins.Load(dst, addr, mem_ty))
        return dst

    def store(self, addr: Value, value: Value, mem_ty: ty.Type) -> None:
        self.emit(ins.Store(addr, value, mem_ty))

    def frame_addr(self, slot: str, name: str = "") -> VReg:
        dst = self.func.new_reg(ty.U64, name or slot)
        self.emit(ins.FrameAddr(dst, slot))
        return dst

    def call(self, callee: str, args: Sequence[Value], ret_ty: ty.Type,
             name: str = "") -> Optional[VReg]:
        dst = None
        if not isinstance(ret_ty, ty.VoidType):
            dst = self.func.new_reg(ret_ty, name)
        self.emit(ins.Call(dst, callee, args, ret_ty))
        return dst

    # -- control flow --------------------------------------------------------

    def jump(self, target: BasicBlock) -> None:
        self.emit(ins.Jump(target.label))

    def branch(self, cond: Value, then_bb: BasicBlock,
               else_bb: BasicBlock) -> None:
        self.emit(ins.Branch(cond, then_bb.label, else_bb.label))

    def ret(self, value: Optional[Value] = None) -> None:
        self.emit(ins.Ret(value))

    # -- vector ops -----------------------------------------------------------

    def vload(self, addr: Value, vty: VecType, name: str = "") -> VReg:
        dst = self.func.new_reg(vty, name)
        self.emit(ins.VLoad(dst, addr, vty))
        return dst

    def vstore(self, addr: Value, value: Value, vty: VecType) -> None:
        self.emit(ins.VStore(addr, value, vty))

    def vbinop(self, op: str, a: Value, b: Value, vty: VecType,
               name: str = "") -> VReg:
        dst = self.func.new_reg(vty, name)
        self.emit(ins.VBinOp(op, dst, a, b, vty))
        return dst

    def vsplat(self, scalar: Value, vty: VecType, name: str = "") -> VReg:
        dst = self.func.new_reg(vty, name)
        self.emit(ins.VSplat(dst, scalar, vty))
        return dst

    def vreduce(self, op: str, src: Value, vty: VecType,
                acc_ty=None, name: str = "") -> VReg:
        result_ty = acc_ty if acc_ty is not None else vty.elem
        dst = self.func.new_reg(result_ty, name)
        self.emit(ins.VReduce(op, dst, src, vty, acc_ty))
        return dst
