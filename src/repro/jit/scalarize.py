"""Vector scalarization for targets without SIMD.

The portable vector builtins must run *everywhere* — the paper's
portability contract ("runs unmodified on many machines, with no or
little penalty in the absence of SIMD instructions").  On a non-SIMD
target the JIT expands every 128-bit virtual vector; *how* depends on
whether the lanes fit the target's register file:

* **register promotion** — a vector register becomes ``lanes`` scalar
  registers and every vector op becomes ``lanes`` scalar ops.  This is
  the "scalarization involves some unrolling of tiny loops" effect the
  paper credits for scalarized code *beating* plain scalar code.
* **memory-temp emulation** — when ``lanes`` plus working margin
  exceeds the allocatable registers of the class (sixteen ``u8`` lanes
  against UltraSparc's sixteen usable GPRs), the JIT parks each vector
  value in a 16-byte stack temporary and every vector op becomes a
  load/op/store sweep over the temp — faithful to how a back-end
  without SIMD support emulates vector builtins it cannot promote, and
  the source of Table 1's below-1.0 entries.

The mode is chosen per element class from the target description; no
kernel-specific tuning is involved.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, VecType, Value, VReg
from repro.jit.regalloc import SCRATCH
from repro.targets.machine import TargetDesc

#: registers that must stay available for addresses, induction
#: variables and accumulators while lanes are live
PROMOTE_MARGIN = {"int": 6, "flt": 2}

#: beyond this many lanes a scalarizing back-end stops treating the
#: expansion as a small unroll and emulates through a memory temp
#: (matching how Mono-era JITs expanded unsupported vector builtins)
PROMOTE_MAX_LANES = 4


def _elem_class(elem) -> str:
    return "flt" if ty.is_float(elem) else "int"


def promotes_lanes(target: TargetDesc, vty: VecType) -> bool:
    """Can this target hold a full vector's lanes in registers?

    Two conditions: the lane count must be small enough that the
    expansion is a plausible unroll (``PROMOTE_MAX_LANES``), and the
    register class must have headroom beyond the loop's own working
    registers."""
    if vty.lanes > PROMOTE_MAX_LANES:
        return False
    cls = _elem_class(vty.elem)
    available = target.regs_of_class(cls) - SCRATCH[cls]
    return vty.lanes + PROMOTE_MARGIN[cls] <= available


class _Scalarizer:
    def __init__(self, func: Function, target: TargetDesc):
        self.func = func
        self.target = target
        self.lanes_of: Dict[int, List[VReg]] = {}
        self.slot_of: Dict[int, str] = {}
        self.out: List[ins.Instr] = []
        self.work = 0

    # -- helpers ---------------------------------------------------------------

    def lanes_for(self, reg: VReg) -> List[VReg]:
        assert isinstance(reg.ty, VecType)
        if reg.id not in self.lanes_of:
            self.lanes_of[reg.id] = [
                self.func.new_reg(reg.ty.elem, f"{reg.name}.l{k}")
                for k in range(reg.ty.lanes)]
        return self.lanes_of[reg.id]

    def slot_for(self, reg: VReg) -> str:
        if reg.id not in self.slot_of:
            slot = self.func.add_frame_slot(f".vtmp{reg.id}", 16, 16)
            self.slot_of[reg.id] = slot.name
        return self.slot_of[reg.id]

    def temp_addr(self, reg: VReg) -> VReg:
        addr = self.func.new_reg(ty.U64)
        self.out.append(ins.FrameAddr(addr, self.slot_for(reg)))
        return addr

    def lane_addr(self, base: Value, k: int, size: int) -> Value:
        if k == 0:
            return base
        stepped = self.func.new_reg(ty.U64)
        self.out.append(ins.BinOp("add", stepped, base,
                                  Const(k * size, ty.U64), ty.U64))
        return stepped

    def promoted(self, reg_or_vty) -> bool:
        vty = reg_or_vty.ty if isinstance(reg_or_vty, VReg) else reg_or_vty
        return promotes_lanes(self.target, vty)

    # -- per-op expansion ----------------------------------------------------

    def expand(self, instr: ins.Instr) -> None:
        self.work += 1
        if isinstance(instr, ins.VLoad):
            self._vload(instr)
        elif isinstance(instr, ins.VStore):
            self._vstore(instr)
        elif isinstance(instr, ins.VBinOp):
            self._vbinop(instr)
        elif isinstance(instr, ins.VSplat):
            self._vsplat(instr)
        elif isinstance(instr, ins.VReduce):
            self._vreduce(instr)
        elif isinstance(instr, ins.Move) and \
                isinstance(instr.dst.ty, VecType):
            self._vmove(instr)
        else:
            self.out.append(instr)

    def _vload(self, instr: ins.VLoad) -> None:
        vty = instr.vty
        size = ty.sizeof(vty.elem)
        if self.promoted(instr.dst):
            for k, lane in enumerate(self.lanes_for(instr.dst)):
                addr = self.lane_addr(instr.addr, k, size)
                self.out.append(ins.Load(lane, addr, vty.elem))
            return
        temp = self.temp_addr(instr.dst)
        for k in range(vty.lanes):
            addr = self.lane_addr(instr.addr, k, size)
            lane = self.func.new_reg(vty.elem)
            self.out.append(ins.Load(lane, addr, vty.elem))
            self.out.append(ins.Store(self.lane_addr(temp, k, size),
                                      lane, vty.elem))

    def _vstore(self, instr: ins.VStore) -> None:
        vty = instr.vty
        size = ty.sizeof(vty.elem)
        assert isinstance(instr.value, VReg)
        if self.promoted(instr.value):
            for k, lane in enumerate(self.lanes_for(instr.value)):
                addr = self.lane_addr(instr.addr, k, size)
                self.out.append(ins.Store(addr, lane, vty.elem))
            return
        temp = self.temp_addr(instr.value)
        for k in range(vty.lanes):
            lane = self.func.new_reg(vty.elem)
            self.out.append(ins.Load(lane, self.lane_addr(temp, k, size),
                                     vty.elem))
            self.out.append(ins.Store(self.lane_addr(instr.addr, k, size),
                                      lane, vty.elem))

    def _vbinop(self, instr: ins.VBinOp) -> None:
        vty = instr.vty
        size = ty.sizeof(vty.elem)
        if self.promoted(instr.dst):
            a_lanes = self.lanes_for(instr.a)
            b_lanes = self.lanes_for(instr.b)
            for dst, a, b in zip(self.lanes_for(instr.dst), a_lanes,
                                 b_lanes):
                self.out.append(ins.BinOp(instr.op, dst, a, b, vty.elem))
            return
        addr_a = self.temp_addr(instr.a)
        addr_b = self.temp_addr(instr.b)
        addr_d = self.temp_addr(instr.dst)
        for k in range(vty.lanes):
            a = self.func.new_reg(vty.elem)
            b = self.func.new_reg(vty.elem)
            r = self.func.new_reg(vty.elem)
            self.out.append(ins.Load(a, self.lane_addr(addr_a, k, size),
                                     vty.elem))
            self.out.append(ins.Load(b, self.lane_addr(addr_b, k, size),
                                     vty.elem))
            self.out.append(ins.BinOp(instr.op, r, a, b, vty.elem))
            self.out.append(ins.Store(self.lane_addr(addr_d, k, size),
                                      r, vty.elem))

    def _vsplat(self, instr: ins.VSplat) -> None:
        vty = instr.vty
        size = ty.sizeof(vty.elem)
        if self.promoted(instr.dst):
            for lane in self.lanes_for(instr.dst):
                self.out.append(ins.Move(lane, instr.scalar))
            return
        temp = self.temp_addr(instr.dst)
        for k in range(vty.lanes):
            self.out.append(ins.Store(self.lane_addr(temp, k, size),
                                      instr.scalar, vty.elem))

    def _vreduce(self, instr: ins.VReduce) -> None:
        vty = instr.vty
        size = ty.sizeof(vty.elem)
        acc_ty = instr.acc_ty
        acc: Value = None

        def widen(lane: Value) -> Value:
            if vty.elem == acc_ty:
                return lane
            cast = self.func.new_reg(acc_ty)
            self.out.append(ins.Cast(cast, lane, vty.elem, acc_ty))
            return cast

        if self.promoted(instr.src):
            source_lanes: List[Value] = list(self.lanes_for(instr.src))
        else:
            temp = self.temp_addr(instr.src)
            source_lanes = []
            for k in range(vty.lanes):
                lane = self.func.new_reg(vty.elem)
                self.out.append(ins.Load(
                    lane, self.lane_addr(temp, k, size), vty.elem))
                source_lanes.append(lane)

        for lane in source_lanes:
            widened = widen(lane)
            if acc is None:
                acc = widened
            else:
                combined = self.func.new_reg(acc_ty)
                self.out.append(ins.BinOp(instr.op, combined, acc,
                                          widened, acc_ty))
                acc = combined
        self.out.append(ins.Move(instr.dst, acc))

    def _vmove(self, instr: ins.Move) -> None:
        assert isinstance(instr.src, VReg)
        vty = instr.dst.ty
        size = ty.sizeof(vty.elem)
        if self.promoted(instr.dst):
            for dst, src in zip(self.lanes_for(instr.dst),
                                self.lanes_for(instr.src)):
                self.out.append(ins.Move(dst, src))
            return
        addr_s = self.temp_addr(instr.src)
        addr_d = self.temp_addr(instr.dst)
        for k in range(vty.lanes):
            lane = self.func.new_reg(vty.elem)
            self.out.append(ins.Load(lane, self.lane_addr(addr_s, k, size),
                                     vty.elem))
            self.out.append(ins.Store(self.lane_addr(addr_d, k, size),
                                      lane, vty.elem))


def scalarize_vectors(func: Function, target: TargetDesc) -> int:
    """Expand all vector operations in place; returns work performed."""
    scalarizer = _Scalarizer(func, target)
    for block in func.blocks:
        scalarizer.out = []
        for instr in block.instrs:
            scalarizer.expand(instr)
        block.instrs = scalarizer.out
    return scalarizer.work
