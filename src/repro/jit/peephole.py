"""Cheap, always-on JIT cleanup.

Production JITs (including the Mono back-ends the paper ran on) apply
linear-time local optimizations regardless of optimization level; the
split-compilation budget argument is about *analysis-heavy* passes, not
these.  This module bundles:

* block-local copy propagation + dead code elimination (removes the
  push/pop ``mov`` traffic reconstructed from stack bytecode);
* widening cast-chain folding (``i32->i64->u64`` becomes one cast);

and reports its (linear) work so it still shows up in the budget.
"""

from __future__ import annotations

from typing import Dict

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.opt.copyprop import copyprop
from repro.opt.dce import dce


def fold_cast_chains(func: Function) -> int:
    """``B = cast A (t1->t2); C = cast B (t2->t3)`` -> one cast.

    Only when both steps are integer widenings (value-preserving in
    composition) and B has a single use; classic single-pass peephole.
    """
    work = 0
    def_of: Dict[int, ins.Cast] = {}
    use_count: Dict[int, int] = {}
    def_count: Dict[int, int] = {}
    for instr in func.instructions():
        work += 1
        for reg in instr.uses():
            use_count[reg.id] = use_count.get(reg.id, 0) + 1
        for reg in instr.defs():
            def_count[reg.id] = def_count.get(reg.id, 0) + 1
            if isinstance(instr, ins.Cast) and _is_widening(instr):
                def_of[reg.id] = instr

    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if not (isinstance(instr, ins.Cast) and _is_widening(instr)):
                continue
            source = instr.src
            if not isinstance(source, VReg):
                continue
            inner = def_of.get(source.id)
            if inner is None or def_count.get(source.id, 0) != 1 or \
                    use_count.get(source.id, 0) != 1:
                continue
            if inner.to_ty != instr.from_ty:
                continue
            if not _composable(inner.from_ty, inner.to_ty, instr.to_ty):
                continue
            block.instrs[index] = ins.Cast(instr.dst, inner.src,
                                           inner.from_ty, instr.to_ty)
            work += 1
    return work


def _is_widening(cast: ins.Cast) -> bool:
    return (isinstance(cast.from_ty, ty.IntType) and
            isinstance(cast.to_ty, ty.IntType) and
            cast.to_ty.bits >= cast.from_ty.bits)


def _composable(t1: ty.IntType, t2: ty.IntType, t3: ty.IntType) -> bool:
    """Is ``cast t1->t3`` equal to ``cast t1->t2; cast t2->t3``?

    True when the middle step is value-preserving on t1's range, or
    when the final width does not exceed the middle width (the result
    only depends on the value modulo 2^bits(t3), which the middle wrap
    preserves).
    """
    if t3.bits <= t2.bits:
        return True
    if t1.signed:
        return t2.signed and t2.bits >= t1.bits
    return t2.bits > t1.bits or (t2.bits == t1.bits and not t2.signed)


def quick_cleanup(func: Function) -> int:
    """Run the always-on local cleanup; returns work performed."""
    work = 0
    for _ in range(2):
        result = copyprop(func)
        work += result.work
        work += fold_cast_chains(func)
        result_dce = dce(func)
        work += result_dce.work
        if not (result.changed or result_dce.changed):
            break
    return work
