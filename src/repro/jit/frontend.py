"""Bytecode -> LIR: the JIT front end.

Rebuilds a register-transfer function (reusing the IR classes) from
stack bytecode by abstract interpretation of the operand stack.  This
is the point the paper makes about information loss: what comes back
is *low-level* — loop structure, dependence facts and alias knowledge
are gone, and only annotations (or expensive online analysis) can
bring them back.

The decoder requires an empty operand stack at every branch target,
which is the shape our emitter produces (and the common case for CLI
compilers); anything else is rejected as unsupported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import types as ty
from repro.bytecode.module import (
    BytecodeFunction, is_vector_local, vector_elem_tag,
)
from repro.bytecode.opcodes import BCInstr, BIN_OPS, UN_OPS, type_of
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, Value, VecType, VReg, vec_of


class FrontendError(Exception):
    pass


def _reg_type(tag: str):
    if is_vector_local(tag):
        return vec_of(type_of(vector_elem_tag(tag)))
    return type_of(tag)


class _Decoder:
    def __init__(self, bc: BytecodeFunction):
        self.bc = bc
        self.func = Function(bc.name, ty.VOID if bc.ret_type is None
                             else type_of(bc.ret_type))
        self.work = 0
        self.local_regs: List[VReg] = []
        self.slot_names: List[str] = []

    def run(self) -> Tuple[Function, int]:
        bc = self.bc
        func = self.func
        for index, tag in enumerate(bc.param_types):
            func.new_param(_reg_type(tag), f"arg{index}")
        for index, tag in enumerate(bc.local_types):
            self.local_regs.append(
                func.new_reg(_reg_type(tag), f"loc{index}"))
        for slot in bc.frame_slots:
            added = func.add_frame_slot(slot.name, slot.size, slot.align)
            self.slot_names.append(added.name)

        leaders = self._find_leaders()
        blocks = {pc: func.new_block(f"pc{pc}") for pc in leaders}
        order = sorted(leaders)

        for where, leader in enumerate(order):
            end = order[where + 1] if where + 1 < len(order) else \
                len(bc.code)
            self._decode_block(blocks, leader, end)

        # Record the local -> vreg mapping for annotation consumers.
        func.local_regs = list(self.local_regs)
        return func, self.work

    def _find_leaders(self) -> set:
        leaders = {0}
        for pc, instr in enumerate(self.bc.code):
            if instr.op in ("br", "brif"):
                leaders.add(instr.arg)
                leaders.add(pc + 1)
            elif instr.op == "ret" and pc + 1 < len(self.bc.code):
                leaders.add(pc + 1)
        return {pc for pc in leaders if pc < len(self.bc.code)}

    # -- block decoding --------------------------------------------------------

    def _decode_block(self, blocks: Dict[int, "BasicBlock"], start: int,
                      end: int) -> None:
        func = self.func
        block = blocks[start]
        stack: List[Value] = []

        def push(value: Value) -> None:
            stack.append(value)

        def pop() -> Value:
            if not stack:
                raise FrontendError(
                    f"{self.bc.name}@pc{start}: stack underflow")
            return stack.pop()

        def temp(reg_ty) -> VReg:
            return func.new_reg(reg_ty)

        pc = start
        terminated = False
        while pc < end:
            instr = self.bc.code[pc]
            self.work += 1
            op = instr.op

            if op == "const":
                push(Const(instr.arg, type_of(instr.ty)))
            elif op == "ldarg":
                push(func.params[instr.arg])
            elif op == "ldloc":
                push(self.local_regs[instr.arg])
            elif op == "stloc":
                value = pop()
                target = self.local_regs[instr.arg]
                # If the target register is still referenced by values
                # on the simulated stack, snapshot them first.
                for index, pending in enumerate(stack):
                    if isinstance(pending, VReg) and pending == target:
                        snap = temp(pending.ty)
                        block.append(ins.Move(snap, pending))
                        stack[index] = snap
                block.append(ins.Move(target, value))
            elif op in BIN_OPS:
                b, a = pop(), pop()
                dst = temp(type_of(instr.ty))
                block.append(ins.BinOp(op, dst, a, b, type_of(instr.ty)))
                push(dst)
            elif op in UN_OPS:
                a = pop()
                dst = temp(type_of(instr.ty))
                block.append(ins.UnOp(op, dst, a, type_of(instr.ty)))
                push(dst)
            elif op == "cmp":
                b, a = pop(), pop()
                dst = temp(ty.I32)
                block.append(ins.Cmp(instr.arg, dst, a, b,
                                     type_of(instr.ty)))
                push(dst)
            elif op == "cast":
                a = pop()
                dst = temp(type_of(instr.ty))
                block.append(ins.Cast(dst, a, type_of(instr.arg),
                                      type_of(instr.ty)))
                push(dst)
            elif op == "select":
                b, a, cond = pop(), pop(), pop()
                dst = temp(type_of(instr.ty))
                block.append(ins.Select(dst, cond, a, b,
                                        type_of(instr.ty)))
                push(dst)
            elif op == "load":
                addr = pop()
                dst = temp(type_of(instr.ty))
                block.append(ins.Load(dst, addr, type_of(instr.ty)))
                push(dst)
            elif op == "store":
                value, addr = pop(), pop()
                block.append(ins.Store(addr, value, type_of(instr.ty)))
            elif op == "frame":
                dst = temp(ty.U64)
                block.append(ins.FrameAddr(dst,
                                           self.slot_names[instr.arg]))
                push(dst)
            elif op == "call":
                callee = instr.arg
                push_count = self._param_count(callee)
                args = [pop() for _ in range(push_count)][::-1]
                ret_tag = self._ret_tag(callee)
                if ret_tag is None:
                    block.append(ins.Call(None, callee, args, ty.VOID))
                else:
                    dst = temp(_reg_type(ret_tag))
                    block.append(ins.Call(dst, callee, args,
                                          _reg_type(ret_tag)))
                    push(dst)
            elif op == "pop":
                pop()
            elif op == "ret":
                value = pop() if self.bc.ret_type is not None else None
                block.append(ins.Ret(value))
                terminated = True
                break
            elif op == "br":
                self._require_empty(stack, pc)
                block.append(ins.Jump(blocks[instr.arg].label))
                terminated = True
                break
            elif op == "brif":
                cond = pop()
                self._require_empty(stack, pc)
                block.append(ins.Branch(cond, blocks[instr.arg].label,
                                        blocks[pc + 1].label))
                terminated = True
                break
            elif op == "vec.load":
                addr = pop()
                vty = vec_of(type_of(instr.ty))
                dst = temp(vty)
                block.append(ins.VLoad(dst, addr, vty))
                push(dst)
            elif op == "vec.store":
                value, addr = pop(), pop()
                vty = vec_of(type_of(instr.ty))
                block.append(ins.VStore(addr, value, vty))
            elif op.startswith("vec.") and op[4:] in BIN_OPS:
                b, a = pop(), pop()
                vty = vec_of(type_of(instr.ty))
                dst = temp(vty)
                block.append(ins.VBinOp(op[4:], dst, a, b, vty))
                push(dst)
            elif op == "vec.splat":
                scalar = pop()
                vty = vec_of(type_of(instr.ty))
                dst = temp(vty)
                block.append(ins.VSplat(dst, scalar, vty))
                push(dst)
            elif op == "vec.reduce":
                reduce_op, acc_tag = instr.arg
                source = pop()
                vty = vec_of(type_of(instr.ty))
                dst = temp(type_of(acc_tag))
                block.append(ins.VReduce(reduce_op, dst, source, vty,
                                         type_of(acc_tag)))
                push(dst)
            else:
                raise FrontendError(f"unsupported opcode {op!r}")
            pc += 1

        if not terminated:
            self._require_empty(stack, pc)
            if pc < len(self.bc.code):
                block.append(ins.Jump(blocks[pc].label))
            else:
                raise FrontendError(
                    f"{self.bc.name}: control falls off code end")

    def _require_empty(self, stack: List[Value], pc: int) -> None:
        if stack:
            raise FrontendError(
                f"{self.bc.name}@pc{pc}: non-empty stack across a "
                f"control-flow edge is not supported")

    def _param_count(self, callee: str) -> int:
        return len(self.module_funcs[callee].param_types)

    def _ret_tag(self, callee: str) -> Optional[str]:
        return self.module_funcs[callee].ret_type

    module_funcs: Dict[str, BytecodeFunction] = {}


def decode_function(bc: BytecodeFunction,
                    module_funcs: Dict[str, BytecodeFunction]) \
        -> Tuple[Function, int]:
    """Decode one bytecode function to LIR; returns (function, work)."""
    decoder = _Decoder(bc)
    decoder.module_funcs = module_funcs
    return decoder.run()
