"""The JIT compiler facade.

``JITCompiler(target, options).compile_module(bytecode)`` produces a
:class:`~repro.targets.isa.CompiledModule` ready for simulation.  The
options are the *online* half of a deployment flow (see
:mod:`repro.flows` for the registry that pairs them with offline
pipeline specs); the paper's three flows map to:

* **split** (default): trust annotations; no online analysis.  The
  offline compiler already vectorized and ranked registers; the JIT
  just decodes, scalarizes if it must, allocates and emits.
* **online-only**: ignore annotations and re-derive everything with
  the full optimizer *at compile time* — best code, but the analysis
  work is charged to the JIT budget (this is what the paper argues
  embedded JITs cannot afford).
* **offline-only**: no annotations, no online analysis — the portable
  baseline.

All stages accumulate ``jit_work`` (instructions visited, the budget
proxy) and wall-clock ``jit_time`` per function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.bytecode.annotations import (
    HotnessAnnotation, RegAllocAnnotation,
)
from repro.engine import predecode_at_jit
from repro.bytecode.module import BytecodeModule
from repro.jit.addrfold import fold_addressing
from repro.jit.codegen import generate
from repro.jit.frontend import decode_function
from repro.jit.peephole import quick_cleanup
from repro.jit.regalloc import allocate
from repro.jit.scalarize import scalarize_vectors
from repro.targets.isa import CompiledFunction, CompiledModule
from repro.targets.machine import TargetDesc


@dataclass(frozen=True)
class JITOptions:
    """Knobs selecting the online half of a deployment flow."""
    use_annotations: bool = True
    online_optimize: bool = False      # run the scalar pipeline online
    online_vectorize: bool = False     # run the auto-vectorizer online
    #: 'annotated' (consume RegAllocAnnotation when present),
    #: 'linear' (plain furthest-end linear scan), or 'local'
    #: (2010-era baseline: variables live in memory)
    regalloc_mode: str = "annotated"
    #: when set, the online analyses above run only for functions whose
    #: HotnessAnnotation weight reaches the threshold (functions with
    #: no profile count as hot) — the 'adaptive' flow's gate
    hotness_threshold: Optional[int] = None
    #: tier-2 whole-function translation hint: ``True`` marks every
    #: emitted function for promotion, ``False`` none, and ``None``
    #: (default) promotes functions whose HotnessAnnotation weight
    #: clears ADAPTIVE_HOTNESS_THRESHOLD — *unprofiled functions are
    #: not promoted* (unlike the analysis gate above, tier-2 spends
    #: host memory per promoted function, so it wants positive
    #: evidence).  Advisory only: execution results are byte-identical
    #: either way.
    tier2: Optional[bool] = None
    #: on-stack replacement hint: ``False`` opts every emitted
    #: function out of mid-call promotion (the execution tier never
    #: counts its back edges), ``True``/``None`` (default) leave the
    #: engine-level ``PVI_OSR`` policy in charge.  Advisory only, like
    #: ``tier2``.
    osr: Optional[bool] = None

    @classmethod
    def flow(cls, name: str) -> "JITOptions":
        """The online options of a *registered* flow (see
        :mod:`repro.flows`); raises ``UnknownFlowError`` otherwise."""
        from repro.flows import get_flow
        return get_flow(name).jit


class JITCompiler:
    def __init__(self, target: TargetDesc,
                 options: Optional[JITOptions] = None):
        self.target = target
        self.options = options if options is not None else JITOptions()

    def compile_module(self, module: BytecodeModule) -> CompiledModule:
        compiled = CompiledModule(self.target.name)
        for func in module:
            compiled.add(self.compile_function(module, func.name))
        # JIT output is never edited in place; freezing lets the fast
        # engine bind call targets directly at predecode time.
        compiled.freeze()
        # Optionally (PVI_JIT_PREDECODE) warm the fast engine's
        # predecode cache outside the modeled compile time, trading
        # cold-compile latency for decode-free first dispatch.
        if predecode_at_jit():
            from repro.targets.dispatch import warm_module
            warm_module(compiled)
        return compiled

    def compile_function(self, module: BytecodeModule,
                         name: str) -> CompiledFunction:
        start = time.perf_counter()
        work = 0
        analysis_work = 0
        bc_func = module[name]

        lir, frontend_work = decode_function(bc_func, module.functions)
        work += frontend_work

        # Always-on linear-time local cleanup (every production JIT
        # does this much); the budget experiments compare the
        # *analysis-heavy* passes below, which stay optional.
        work += quick_cleanup(lir)

        pass_work: Dict[str, int] = {}
        analyze = self._wants_online_analysis(module, name)
        if self.options.online_optimize and analyze:
            from repro.opt import PassManager, standard_passes
            stats = PassManager(standard_passes()).run(lir)
            work += stats.total_work
            analysis_work += stats.total_work
            pass_work.update(stats.work_by_pass)
        if self.options.online_vectorize and analyze and \
                self.target.has_simd:
            from repro.opt.vectorize import vectorize
            result = vectorize(lir)
            work += result.work
            analysis_work += result.work
            pass_work["vectorize"] = \
                pass_work.get("vectorize", 0) + result.work

        if not self.target.has_simd:
            work += scalarize_vectors(lir, self.target)
            work += quick_cleanup(lir)

        work += fold_addressing(lir)

        priorities = None
        pin = None
        if self.options.regalloc_mode == "annotated" and \
                self.options.use_annotations:
            priorities = self._annotation_priorities(module, name, lir)
        elif self.options.regalloc_mode == "local":
            pin = {reg.id for reg in list(lir.params) +
                   list(getattr(lir, "local_regs", []))}

        regs = {cls: self.target.regs_of_class(cls)
                for cls in ("int", "flt", "vec")}
        allocation = allocate(lir, regs, priorities=priorities,
                              pin_to_memory=pin)
        work += allocation.work

        compiled, codegen_work = generate(lir, allocation, self.target)
        work += codegen_work
        compiled.jit_work = work
        compiled.jit_analysis_work = analysis_work
        compiled.jit_pass_work = pass_work
        compiled.jit_time = time.perf_counter() - start
        compiled.tier2_hint = self._wants_tier2(module, name)
        compiled.osr_hint = (True if self.options.osr is None
                             else bool(self.options.osr))
        return compiled

    def _wants_tier2(self, module: BytecodeModule, name: str) -> bool:
        """The tier-2 promotion gate: an explicit ``JITOptions.tier2``
        wins; otherwise promote exactly the functions whose hotness
        annotation clears the adaptive threshold (unprofiled functions
        stay on the block tier — promotion wants positive evidence)."""
        if self.options.tier2 is not None:
            return self.options.tier2
        weight = module.max_hotness(name)
        if weight is None:
            return False
        from repro.flows import ADAPTIVE_HOTNESS_THRESHOLD
        return weight >= ADAPTIVE_HOTNESS_THRESHOLD

    def _wants_online_analysis(self, module: BytecodeModule,
                               name: str) -> bool:
        """The adaptive gate: with a hotness threshold set, spend the
        online analysis budget only on functions profiled at least that
        hot.  Unprofiled functions count as hot (nothing argues they
        are cold)."""
        threshold = self.options.hotness_threshold
        if threshold is None:
            return True
        annotations = module.annotations_for(name, HotnessAnnotation)
        if not annotations:
            return True
        return max(a.weight for a in annotations) >= threshold

    def _annotation_priorities(self, module: BytecodeModule, name: str,
                               lir) -> Optional[Dict[int, int]]:
        """Map a RegAllocAnnotation's (params + locals) ranking onto the
        LIR's virtual registers.  Cheap validation: a length mismatch
        (stale annotation) is ignored rather than trusted."""
        annotations = module.annotations_for(name, RegAllocAnnotation)
        if not annotations:
            return None
        ranking = annotations[0].priorities
        expected = len(lir.params) + len(getattr(lir, "local_regs", []))
        if len(ranking) != expected:
            return None
        priorities: Dict[int, int] = {}
        for reg, rank in zip(list(lir.params) + list(lir.local_regs),
                             ranking):
            priorities[reg.id] = rank
        return priorities


def compile_for_target(module: BytecodeModule, target,
                       flow="split"):
    """One-call deployment: compile ``module`` for ``target`` (a
    descriptor or a registered name) under a flow (a registered name
    or a :class:`repro.flows.Flow`).

    Dispatches through the target's registered
    :class:`~repro.targets.registry.Backend`, so a non-native target
    (e.g. the ``wasm32`` stack machine) compiles with its own codegen
    — the native register-machine JIT above is just the default
    backend's implementation.
    """
    from repro.flows import as_flow
    from repro.targets.registry import as_target, backend_for
    target = as_target(target)
    return backend_for(target).compile(module, target, as_flow(flow))
