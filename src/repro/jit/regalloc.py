"""Linear-scan register allocation.

Classic Poletto–Sarkar linear scan over live intervals, with three
register classes (``int``, ``flt``, ``vec``).  Two spill-choice
policies:

* **baseline** (what a JIT can afford on its own): spill the interval
  whose live range ends furthest away — O(1) per decision, but blind
  to loop structure, so it happily evicts a loop accumulator to free a
  register for a short-lived temporary;
* **annotated** (split register allocation, after Diouf et al. [18]):
  spill the candidate with the lowest *offline-computed* priority.
  The priorities encode loop-nesting-weighted use counts the offline
  compiler derived from structure the bytecode no longer has.  The
  online decision stays O(1); the annotation is independent of the
  register count K, so one offline analysis serves every target.

Both run in the same allocator; experiment S4a measures the spill
traffic difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang import types as ty
from repro.ir.function import Function
from repro.ir.liveness import live_ranges
from repro.ir.values import VecType, VReg

#: registers reserved per class for spill reloads at use sites
#: (int needs a third for select's condition alongside two operands)
SCRATCH = {"int": 3, "flt": 2, "vec": 2}


def reg_class(reg: VReg) -> str:
    if isinstance(reg.ty, VecType):
        return "vec"
    if ty.is_float(reg.ty):
        return "flt"
    return "int"


@dataclass
class Allocation:
    """Result: a home (register or slot) for every virtual register."""
    homes: Dict[int, Tuple[str, object]] = field(default_factory=dict)
    spill_bytes: int = 0
    spilled_regs: int = 0
    work: int = 0
    regs_used: Dict[str, int] = field(default_factory=dict)

    def home(self, reg: VReg) -> Tuple[str, object]:
        return self.homes[reg.id]

    def is_spilled(self, reg: VReg) -> bool:
        return self.homes[reg.id][0] == "slot"


@dataclass
class _Interval:
    reg: VReg
    start: int
    end: int
    cls: str
    priority: int          # higher = more important to keep


def allocate(func: Function, regs_per_class: Dict[str, int],
             priorities: Optional[Dict[int, int]] = None,
             spill_base_offset: int = 0,
             pin_to_memory: Optional[set] = None) -> Allocation:
    """Allocate registers for ``func``.

    ``regs_per_class`` maps class name to the number of *allocatable*
    registers (scratch registers are reserved out of this number).
    ``priorities`` maps vreg id to an offline-computed keep-priority;
    when None the baseline furthest-end policy is used.
    ``pin_to_memory`` (vreg ids) models the 2010-era *local* JIT
    allocator: those registers (the program's variables) live in
    memory homes and only expression temporaries compete for
    registers.
    """
    allocation = Allocation()
    ranges = live_ranges(func)
    allocation.work += len(ranges)

    intervals: List[_Interval] = []
    pinned: List[_Interval] = []
    for reg, (start, end) in ranges.items():
        interval = _Interval(
            reg=reg, start=start, end=end, cls=reg_class(reg),
            priority=(priorities or {}).get(reg.id, 1))
        if pin_to_memory is not None and reg.id in pin_to_memory:
            pinned.append(interval)
        else:
            intervals.append(interval)
    intervals.sort(key=lambda iv: (iv.start, iv.end))

    free: Dict[str, List[int]] = {}
    limit: Dict[str, int] = {}
    for cls in ("int", "flt", "vec"):
        available = max(0, regs_per_class.get(cls, 0) - SCRATCH[cls])
        limit[cls] = available
        free[cls] = list(range(available))
    active: Dict[str, List[_Interval]] = {"int": [], "flt": [], "vec": []}
    assigned: Dict[int, int] = {}
    spill_offset = spill_base_offset

    def expire(cls: str, now: int) -> None:
        still = []
        for iv in active[cls]:
            if iv.end < now:
                free[cls].append(assigned[iv.reg.id])
            else:
                still.append(iv)
        active[cls] = still

    def spill_slot(iv: _Interval) -> None:
        nonlocal spill_offset
        size = 16 if iv.cls == "vec" else 8
        spill_offset = (spill_offset + size - 1) // size * size
        allocation.homes[iv.reg.id] = ("slot", spill_offset)
        spill_offset += size
        allocation.spilled_regs += 1

    use_annotations = priorities is not None

    for iv in pinned:
        allocation.work += 1
        spill_slot(iv)

    for iv in intervals:
        allocation.work += 1
        cls = iv.cls
        expire(cls, iv.start)
        if limit[cls] == 0:
            spill_slot(iv)
            continue
        if free[cls]:
            reg_index = free[cls].pop()
            assigned[iv.reg.id] = reg_index
            allocation.homes[iv.reg.id] = ("reg", (cls, reg_index))
            active[cls].append(iv)
            continue
        # No free register: choose a victim among active + current.
        candidates = active[cls] + [iv]
        if use_annotations:
            # Split register allocation: evict the lowest-ranked
            # *variable*.  Unranked registers are the JIT's own stack
            # temporaries — short-lived and used immediately, so
            # evicting one trades a register for reload traffic inside
            # the hot path; they are never preferred victims.  When
            # only temporaries are active, fall back to the baseline
            # heuristic.
            ranked = [c for c in candidates if c.priority > 1]
            if ranked:
                victim = min(ranked, key=lambda c: (c.priority, -c.end))
            else:
                victim = max(candidates, key=lambda c: c.end)
        else:
            victim = max(candidates, key=lambda c: c.end)
        if victim is iv:
            spill_slot(iv)
            continue
        # Evict the victim; the newcomer takes its register.
        reg_index = assigned.pop(victim.reg.id)
        spill_slot(victim)
        active[cls].remove(victim)
        assigned[iv.reg.id] = reg_index
        allocation.homes[iv.reg.id] = ("reg", (cls, reg_index))
        active[cls].append(iv)

    allocation.spill_bytes = spill_offset - spill_base_offset
    for cls in ("int", "flt", "vec"):
        allocation.regs_used[cls] = limit[cls] - len([
            r for r in free[cls]])
    return allocation
