"""The online compiler (JIT).

Pipeline: decode bytecode to LIR (:mod:`repro.jit.frontend`) →
optional online optimization (the expensive path split compilation
avoids) → vector scalarization on non-SIMD targets
(:mod:`repro.jit.scalarize`) → linear-scan register allocation
(:mod:`repro.jit.regalloc`) → machine code generation
(:mod:`repro.jit.codegen`).

Every stage reports the work it performed; the sum is the JIT's
compile budget consumption (experiments F1 and S3a).
"""

from repro.jit.compiler import JITCompiler, JITOptions, compile_for_target

__all__ = ["JITCompiler", "JITOptions", "compile_for_target"]
