"""Machine code generation: allocated LIR -> MInst list.

Operand handling: sources living in spill slots are reloaded into the
class's reserved scratch registers before the operation; a destination
living in a slot is computed into a scratch register and stored back.
Constants become immediate operands.  Costs and encoded sizes come
from the target's models and are attached per instruction, so the
simulator is a pure executor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Const, VecType, Value, VReg
from repro.jit.addrfold import (
    LoadIndexed, StoreIndexed, VLoadIndexed, VStoreIndexed,
)
from repro.jit.regalloc import Allocation, SCRATCH, reg_class
from repro.targets.isa import CompiledFunction, MInst
from repro.targets.machine import TargetDesc


class CodegenError(Exception):
    pass


class _FuncCodegen:
    def __init__(self, func: Function, allocation: Allocation,
                 target: TargetDesc):
        self.func = func
        self.allocation = allocation
        self.target = target
        self.code: List[MInst] = []
        self.fixups: List[Tuple[int, str]] = []
        self.label_index: Dict[str, int] = {}
        self.frame_offsets: Dict[str, int] = {}
        self.scratch_base: Dict[str, int] = {}
        for cls in ("int", "flt", "vec"):
            available = max(0, target.regs_of_class(cls) - SCRATCH[cls])
            self.scratch_base[cls] = available
        self.work = 0

    # -- emission helpers -------------------------------------------------------

    def emit(self, instr: MInst) -> MInst:
        self.code.append(instr)
        return instr

    def _cost_mem(self, kind: str, mem_ty) -> int:
        return self.target.costs.mem(kind, mem_ty)

    def _size(self, kind: str, has_imm: bool = False) -> int:
        return self.target.sizes.size_of(kind, has_imm)

    def src_operand(self, value: Value, scratch_index: int):
        """Materialize a source operand; may emit a spill reload."""
        if isinstance(value, Const):
            return ("imm", value.value)
        kind, where = self.allocation.home(value)
        if kind == "reg":
            return where
        cls = reg_class(value)
        scratch = (cls, self.scratch_base[cls] + scratch_index)
        slot_ty = value.ty if not isinstance(value.ty, VecType) else None
        self.emit(MInst("spill.ld", slot_ty, scratch, [], where,
                        cost=self._cost_mem("load", ty.I64),
                        size=self._size("mem")))
        return scratch

    def dst_operand(self, reg: VReg):
        """Destination register (scratch if spilled) + writeback flag."""
        kind, where = self.allocation.home(reg)
        if kind == "reg":
            return where, None
        cls = reg_class(reg)
        scratch = (cls, self.scratch_base[cls])
        return scratch, where

    def writeback(self, scratch, slot) -> None:
        if slot is not None:
            self.emit(MInst("spill.st", None, None, [scratch], slot,
                            cost=self._cost_mem("store", ty.I64),
                            size=self._size("mem")))

    def branch_to(self, op: str, label: str,
                  srcs: Optional[list] = None, cost: int = 1) -> None:
        index = len(self.code)
        self.emit(MInst(op, None, None, srcs or [], -1, cost=cost,
                        size=self._size("branch")))
        self.fixups.append((index, label))

    # -- main ---------------------------------------------------------------

    def run(self) -> CompiledFunction:
        func = self.func
        costs = self.target.costs

        frame_size = func.layout_frame()
        for slot in func.frame_slots.values():
            self.frame_offsets[slot.name] = slot.offset

        for block in func.blocks:
            self.label_index[block.label] = len(self.code)
            for instr in block.instrs:
                self.work += 1
                self._gen(instr)

        for index, label in self.fixups:
            self.code[index].arg = self.label_index[label]

        param_locs = []
        for param in func.params:
            kind, where = self.allocation.home(param)
            param_locs.append(where if kind == "reg"
                              else ("slot", where))

        compiled = CompiledFunction(
            name=func.name,
            target_name=self.target.name,
            code=self.code,
            frame_bytes=frame_size + self.allocation.spill_bytes,
            param_locs=[
                loc if loc[0] in ("int", "flt", "vec") else loc
                for loc in param_locs],
            ret_void=isinstance(func.ret_ty, ty.VoidType),
            code_bytes=sum(i.size for i in self.code) +
            self.target.sizes.prologue_bytes,
            spill_slot_count=self.allocation.spilled_regs,
        )
        return compiled

    # -- per-instruction --------------------------------------------------------

    def _gen(self, instr: ins.Instr) -> None:
        costs = self.target.costs
        if isinstance(instr, LoadIndexed):
            base = self.src_operand(instr.base, 0)
            index = self.src_operand(instr.index, 1)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("load", instr.ty, dst, [base, index], None,
                            cost=self._cost_mem("load", instr.ty),
                            size=self._size("mem")))
            self.writeback(dst, slot)
        elif isinstance(instr, StoreIndexed):
            base = self.src_operand(instr.base, 0)
            index = self.src_operand(instr.index, 1)
            value = self.src_operand(
                instr.value, 2 if reg_class(instr.value) == "int"
                and not isinstance(instr.value, Const) else 0)
            self.emit(MInst("store", instr.ty, None,
                            [base, index, value], None,
                            cost=self._cost_mem("store", instr.ty),
                            size=self._size("mem")))
        elif isinstance(instr, VLoadIndexed):
            self._require_simd()
            base = self.src_operand(instr.base, 0)
            index = self.src_operand(instr.index, 1)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("vload", instr.vty, dst, [base, index], None,
                            cost=costs.vec_load, size=self._size("vec")))
            self.writeback(dst, slot)
        elif isinstance(instr, VStoreIndexed):
            self._require_simd()
            base = self.src_operand(instr.base, 0)
            index = self.src_operand(instr.index, 1)
            value = self.src_operand(instr.value, 0)   # vec class scratch
            self.emit(MInst("vstore", instr.vty, None,
                            [base, index, value], None,
                            cost=costs.vec_store, size=self._size("vec")))
        elif isinstance(instr, ins.BinOp):
            a = self.src_operand(instr.a, 0)
            b = self.src_operand(instr.b, 1)
            dst, slot = self.dst_operand(instr.dst)
            has_imm = a[0] == "imm" or b[0] == "imm"
            self.emit(MInst("bin", instr.ty, dst, [a, b], instr.op,
                            cost=costs.scalar_op(instr.op, instr.ty),
                            size=self._size("alu", has_imm)))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.UnOp):
            a = self.src_operand(instr.a, 0)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("un", instr.ty, dst, [a], instr.op,
                            cost=costs.alu, size=self._size("alu")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Cmp):
            a = self.src_operand(instr.a, 0)
            b = self.src_operand(instr.b, 1)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("cmp", instr.ty, dst, [a, b], instr.pred,
                            cost=costs.cmp, size=self._size("alu")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Cast):
            a = self.src_operand(instr.src, 0)
            dst, slot = self.dst_operand(instr.dst)
            cost = costs.fp_alu if ty.is_float(instr.from_ty) or \
                ty.is_float(instr.to_ty) else costs.alu
            self.emit(MInst("cast", None, dst, [a],
                            (instr.from_ty, instr.to_ty),
                            cost=cost, size=self._size("alu")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Move):
            a = self.src_operand(instr.src, 0)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("mov", None, dst, [a], None,
                            cost=costs.move,
                            size=self._size("alu", a[0] == "imm")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Select):
            # The condition reloads into the dedicated third int scratch
            # so it can never collide with the two value operands even
            # when everything lives in the int class.
            cond = self.src_operand(instr.cond, 2)
            a = self.src_operand(instr.a, 0)
            b = self.src_operand(instr.b, 1)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("select", instr.ty, dst, [cond, a, b], None,
                            cost=costs.select, size=self._size("alu")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Load):
            addr = self.src_operand(instr.addr, 0)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("load", instr.ty, dst, [addr], None,
                            cost=self._cost_mem("load", instr.ty),
                            size=self._size("mem")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Store):
            addr = self.src_operand(instr.addr, 0)
            value = self.src_operand(instr.value, 1)
            self.emit(MInst("store", instr.ty, None, [addr, value], None,
                            cost=self._cost_mem("store", instr.ty),
                            size=self._size("mem")))
        elif isinstance(instr, ins.FrameAddr):
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("lea.frame", None, dst, [],
                            self.frame_offsets[instr.slot],
                            cost=costs.frame, size=self._size("alu")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.Call):
            # Spilled arguments are passed as slot operands directly
            # (arguments go out through the stack), costed as loads.
            srcs = []
            extra_cost = 0
            for arg in instr.args:
                if isinstance(arg, Const):
                    srcs.append(("imm", arg.value))
                    continue
                kind, where = self.allocation.home(arg)
                if kind == "reg":
                    srcs.append(where)
                else:
                    srcs.append(("slot", where))
                    extra_cost += self._cost_mem("load", ty.I64)
            dst = None
            slot = None
            if instr.dst is not None:
                dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("call", None, dst, srcs, instr.callee,
                            cost=costs.call_base + extra_cost +
                            costs.call_per_arg * len(srcs),
                            size=self._size("call")))
            if instr.dst is not None:
                self.writeback(dst, slot)
        elif isinstance(instr, ins.Ret):
            srcs = []
            if instr.value is not None:
                srcs.append(self.src_operand(instr.value, 0))
            self.emit(MInst("ret", None, None, srcs, None,
                            cost=costs.jump, size=self._size("branch")))
        elif isinstance(instr, ins.Jump):
            self.branch_to("br", instr.target, cost=costs.jump)
        elif isinstance(instr, ins.Branch):
            cond = self.src_operand(instr.cond, 0)
            self.branch_to("brif", instr.then_target, [cond],
                           cost=costs.branch)
            self.branch_to("br", instr.else_target, cost=costs.jump)
        elif isinstance(instr, ins.VLoad):
            self._require_simd()
            addr = self.src_operand(instr.addr, 0)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("vload", instr.vty, dst, [addr], None,
                            cost=costs.vec_load, size=self._size("vec")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.VStore):
            self._require_simd()
            addr = self.src_operand(instr.addr, 0)
            value = self.src_operand(instr.value, 1)
            self.emit(MInst("vstore", instr.vty, None, [addr, value],
                            None, cost=costs.vec_store,
                            size=self._size("vec")))
        elif isinstance(instr, ins.VBinOp):
            self._require_simd()
            a = self.src_operand(instr.a, 0)
            b = self.src_operand(instr.b, 1)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("vbin", instr.vty, dst, [a, b], instr.op,
                            cost=costs.vector_op(instr.op),
                            size=self._size("vec")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.VSplat):
            self._require_simd()
            scalar = self.src_operand(instr.scalar, 0)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("vsplat", instr.vty, dst, [scalar], None,
                            cost=costs.vec_splat, size=self._size("vec")))
            self.writeback(dst, slot)
        elif isinstance(instr, ins.VReduce):
            self._require_simd()
            source = self.src_operand(instr.src, 0)
            dst, slot = self.dst_operand(instr.dst)
            self.emit(MInst("vreduce", instr.vty, dst, [source],
                            (instr.op, instr.acc_ty),
                            cost=costs.vec_reduce,
                            size=self._size("vec")))
            self.writeback(dst, slot)
        else:
            raise CodegenError(f"cannot generate {type(instr).__name__}")

    def _require_simd(self) -> None:
        if not self.target.has_simd:
            raise CodegenError(
                f"vector op reached codegen for non-SIMD target "
                f"{self.target.name} (scalarize first)")


def generate(func: Function, allocation: Allocation,
             target: TargetDesc) -> Tuple[CompiledFunction, int]:
    """Generate machine code; returns (compiled function, work)."""
    codegen = _FuncCodegen(func, allocation, target)
    compiled = codegen.run()
    return compiled, codegen.work
