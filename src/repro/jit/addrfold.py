"""Addressing-mode folding (JIT back-end peephole).

``t = add a, b ; load [t]`` becomes a single memory operation with a
two-part address when ``t`` has no other use — the register+register
(or register+immediate) addressing mode every real ISA provides, and
the kind of fold every Mono back-end performs.  Folding happens on the
LIR *before* register allocation so liveness naturally extends the
address components to the memory instruction.

The folded forms are LIR-private subclasses; only the JIT code
generator ever sees them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang import types as ty
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.ir.values import Value, VecType, VReg


class LoadIndexed(ins.Load):
    """``dst = mem[a + b]``."""

    def __init__(self, dst: VReg, a: Value, b: Value, mem_ty):
        super().__init__(dst, a, mem_ty)
        self.srcs = [a, b]

    @property
    def base(self) -> Value:
        return self.srcs[0]

    @property
    def index(self) -> Value:
        return self.srcs[1]


class StoreIndexed(ins.Store):
    """``mem[a + b] = value``."""

    def __init__(self, a: Value, b: Value, value: Value, mem_ty):
        super().__init__(a, value, mem_ty)
        self.srcs = [a, b, value]

    @property
    def base(self) -> Value:
        return self.srcs[0]

    @property
    def index(self) -> Value:
        return self.srcs[1]

    @property
    def value(self) -> Value:
        return self.srcs[2]


class VLoadIndexed(ins.VLoad):
    def __init__(self, dst: VReg, a: Value, b: Value, vty: VecType):
        super().__init__(dst, a, vty)
        self.srcs = [a, b]

    @property
    def base(self) -> Value:
        return self.srcs[0]

    @property
    def index(self) -> Value:
        return self.srcs[1]


class VStoreIndexed(ins.VStore):
    def __init__(self, a: Value, b: Value, value: Value, vty: VecType):
        super().__init__(a, value, vty)
        self.srcs = [a, b, value]

    @property
    def base(self) -> Value:
        return self.srcs[0]

    @property
    def index(self) -> Value:
        return self.srcs[1]

    @property
    def value(self) -> Value:
        return self.srcs[2]


def fold_addressing(func: Function) -> int:
    """Fold single-use address adds into memory operations."""
    work = 0
    use_counts: Dict[int, int] = {}
    def_counts: Dict[int, int] = {}
    for instr in func.instructions():
        work += 1
        for reg in instr.uses():
            use_counts[reg.id] = use_counts.get(reg.id, 0) + 1
        for reg in instr.defs():
            def_counts[reg.id] = def_counts.get(reg.id, 0) + 1

    for block in func.blocks:
        adds: Dict[int, Tuple[int, ins.BinOp]] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, ins.BinOp) and instr.op == "add" and \
                    isinstance(instr.ty, ty.IntType) and \
                    instr.ty.bits == 64:
                adds[instr.dst.id] = (index, instr)

        # Two passes: the address add precedes its memory op, so decide
        # all folds first, then rebuild the block without the dead adds.
        skip: set = set()
        replacements: Dict[int, ins.Instr] = {}
        for index, instr in enumerate(block.instrs):
            folded = _try_fold(instr, adds, use_counts, def_counts,
                               index, skip)
            if folded is not None:
                replacements[index] = folded
                work += 1
        block.instrs = [replacements.get(i, instr)
                        for i, instr in enumerate(block.instrs)
                        if i not in skip]
    return work


def _try_fold(instr: ins.Instr, adds, use_counts, def_counts,
              index: int, skip: set):
    if isinstance(instr, (LoadIndexed, StoreIndexed, VLoadIndexed,
                          VStoreIndexed)):
        return None
    if isinstance(instr, (ins.Load, ins.VLoad)):
        addr = instr.addr
    elif isinstance(instr, (ins.Store, ins.VStore)):
        addr = instr.addr
    else:
        return None
    if not isinstance(addr, VReg):
        return None
    entry = adds.get(addr.id)
    if entry is None:
        return None
    add_index, add = entry
    if add_index >= index:
        return None
    if def_counts.get(addr.id, 0) != 1 or use_counts.get(addr.id, 0) != 1:
        return None
    skip.add(add_index)
    if isinstance(instr, ins.VLoad):
        return VLoadIndexed(instr.dst, add.a, add.b, instr.vty)
    if isinstance(instr, ins.Load):
        return LoadIndexed(instr.dst, add.a, add.b, instr.ty)
    if isinstance(instr, ins.VStore):
        return VStoreIndexed(add.a, add.b, instr.value, instr.vty)
    return StoreIndexed(add.a, add.b, instr.value, instr.ty)
