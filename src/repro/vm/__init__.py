"""The PVI virtual machine: a verifying bytecode interpreter.

This is the "runs everywhere" baseline of processor virtualization —
functional portability without target-specific performance.  The JIT
compilers in :mod:`repro.jit` share its memory model and semantics, so
interpreted and jitted executions are bit-identical (and the test suite
checks exactly that).
"""

from repro.vm.interpreter import VM

__all__ = ["VM"]
