"""The PVI virtual machine: a verifying bytecode interpreter.

This is the "runs everywhere" baseline of processor virtualization —
functional portability without target-specific performance.  The JIT
compilers in :mod:`repro.jit` share its memory model and semantics, so
interpreted and jitted executions are bit-identical (and the test suite
checks exactly that).

Two engines execute the bytecode (see :mod:`repro.engine` and
DESIGN.md §2): the default ``fast`` engine runs predecoded,
block-compiled handler closures (:mod:`repro.vm.threaded`); the
``reference`` engine is the original instruction ladder, kept as the
semantic oracle.  Select per VM with ``VM(..., engine=...)`` or
process-wide with ``PVI_ENGINE``.
"""

from repro.vm.interpreter import VM

__all__ = ["VM"]
