"""Stack-machine interpreter for PVI bytecode.

Two engines share this class (see :mod:`repro.engine`): the default
``fast`` engine dispatches through per-function predecoded handler
closures (:mod:`repro.vm.threaded`); the ``reference`` engine is the
original if/elif ladder in :meth:`VM._run`, kept verbatim as the
semantic oracle the differential suite compares against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode.module import (
    BytecodeFunction, BytecodeModule, is_vector_local, vector_elem_tag,
)
from repro.bytecode.opcodes import BIN_OPS, UN_OPS, type_of
from repro.bytecode.verifier import verify_module
from repro.engine import (
    REFERENCE, TIER2, osr_enabled, resolve_engine,
    osr_threshold as engine_osr_threshold,
)
from repro.semantics import (
    Memory, TrapError, eval_binop, eval_cast, eval_cmp, eval_unop,
    round_float, vec_binop, vec_reduce, vec_splat,
)
from repro.lang import types as ty
from repro.vm import threaded

DEFAULT_FUEL = 50_000_000


class VM:
    """Loads (and verifies) a bytecode module, then executes it."""

    def __init__(self, module: BytecodeModule,
                 memory: Optional[Memory] = None,
                 verify: bool = True,
                 fuel: int = DEFAULT_FUEL,
                 engine: Optional[str] = None,
                 osr: Optional[bool] = None,
                 osr_threshold: Optional[int] = None):
        if verify:
            verify_module(module)
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.fuel = fuel
        self.instructions_executed = 0
        self.engine = resolve_engine(engine)
        #: tier-2 promotion policy: the ``tier2`` engine forces the
        #: whole-function compiler for every function; the default
        #: ``fast`` engine promotes only hotness-hinted functions
        self._tier2_all = self.engine == TIER2
        #: on-stack replacement: a call spinning in the block tier
        #: enters tier-2 at a hot loop header (and a deopted call may
        #: re-enter the same way).  ``None`` defers to ``PVI_OSR``.
        self._osr = self.engine != REFERENCE and \
            (osr_enabled() if osr is None else bool(osr))
        self._osr_threshold = engine_osr_threshold() \
            if osr_threshold is None else max(1, int(osr_threshold))
        #: tiering observability: calls entered via tier-2 at pc 0,
        #: successful mid-call OSR entries, and the subset of OSR
        #: entries that re-entered after an earlier tier-2 deopt in
        #: the same call
        self.tier2_promotions = 0
        self.osr_entries = 0
        self.deopt_reentries = 0
        #: per-VM memo of validated predecodes, keyed by function name
        self._predecoded: Dict[str, threaded.PredecodedFunction] = {}

    def tiering_stats(self) -> Dict[str, int]:
        """The tiering counters in machine-readable form (bench JSON
        attaches these so BENCH files prove the policy fired)."""
        return {"tier2_promotions": self.tier2_promotions,
                "osr_entries": self.osr_entries,
                "deopt_reentries": self.deopt_reentries}

    def call(self, name: str, args: List):
        func = self.module.functions.get(name)
        if func is None:
            raise TrapError(f"no such function {name!r}")
        if len(args) != func.num_params:
            raise TrapError(f"{name} expects {func.num_params} args, "
                            f"got {len(args)}")
        coerced = [_coerce(tag, value)
                   for tag, value in zip(func.param_types, args)]
        if self.engine == REFERENCE:
            return self._run(func, coerced)
        # Revalidate the entry function's predecode against its content
        # token at every public call, so in-place edits between calls
        # are picked up even on a reused VM (callees revalidate at
        # their own public calls or on a fresh VM — the name memo keeps
        # recursive dispatch O(1)).
        self._predecoded[func.name] = threaded.predecode(func,
                                                         self.module)
        return self._run_fast(func, coerced)

    # -- fast engine: predecoded closure threading ----------------------------

    def _predecode(self, func: BytecodeFunction):
        pre = self._predecoded.get(func.name)
        if pre is None:
            pre = threaded.predecode(func, self.module)
            self._predecoded[func.name] = pre
        return pre

    def _run_fast(self, func: BytecodeFunction, args: List):
        pre = self._predecode(func)
        locals_: List = list(pre.scalar_defaults)
        for index, lanes in pre.vector_locals:
            locals_[index] = [0] * lanes
        stack: List = []
        memory = self.memory
        frame_size = pre.frame_size
        frame_base = memory.push_frame(frame_size) if frame_size else 0
        handlers = pre.handlers
        pc = 0
        deopted = False
        t2 = None
        try:
            if self._tier2_all or pre.tier2_hot:
                t2 = pre.tier2()
                if t2 is not None:
                    # Whole-function tier: runs to completion (-1) or
                    # deopts by returning a block leader — undebited —
                    # for the block-threaded trampoline below to
                    # continue from (which re-debits and meters the
                    # fuel trap exactly as usual).
                    self.tier2_promotions += 1
                    pc = t2(stack, locals_, args, frame_base, memory,
                            self)
                    deopted = pc >= 0
            if pc >= 0 and self._osr and pre.osr_leaders:
                pc = self._run_osr(pre, t2, pc, deopted, stack,
                                   locals_, args, frame_base)
            while pc >= 0:
                try:
                    pc = handlers[pc](stack, locals_, args, frame_base,
                                      memory, self)
                except threaded.MeterTrip as trip:
                    pc = self._run_metered(trip.pc, pre.raw, stack,
                                           locals_, args, frame_base)
        finally:
            if frame_size:
                memory.pop_frame(frame_base, frame_size)
        if pre.has_ret:
            return stack.pop()
        return None

    #: per-call counter value that retires an OSR leader (a declined
    #: entry can never succeed later in the same call — the counter is
    #: parked so far negative it cannot re-cross the threshold)
    _OSR_DISABLED = -(1 << 62)

    def _run_osr(self, pre, t2, pc: int, deopted: bool, stack, locals_,
                 args, frame_base) -> int:
        """Block-tier trampoline with back-edge hotness counters.

        Identical to the plain loop in :meth:`_run_fast` except that
        every backward transfer to a candidate loop header is counted;
        at the threshold the live frame — operand stack, locals, args,
        ``instructions_executed`` — *is* the snapshot, and ``_t2`` is
        entered at that leader (on-stack replacement).  The tier-2
        prologue revalidates its entered-once facts from the snapshot
        and declines by returning the entry pc untouched, in which
        case that leader is retired for the rest of the call.  A
        deopted call keeps counting, so hot deopt sites re-enter
        ``_t2`` instead of finishing the call in the block tier.
        Entries and deopts are undebited: instruction counts and traps
        stay byte-identical to the plain loop."""
        memory = self.memory
        handlers = pre.handlers
        threshold = self._osr_threshold
        leaders = pre.osr_leaders
        counts: Dict[int, int] = {}
        while pc >= 0:
            try:
                new_pc = handlers[pc](stack, locals_, args, frame_base,
                                      memory, self)
            except threaded.MeterTrip as trip:
                new_pc = self._run_metered(trip.pc, pre.raw, stack,
                                           locals_, args, frame_base)
            if 0 <= new_pc <= pc and new_pc in leaders:
                count = counts.get(new_pc, 0) + 1
                if count < threshold:
                    counts[new_pc] = count
                else:
                    counts[new_pc] = 0
                    if t2 is None:
                        t2 = pre.tier2()
                        if t2 is None:      # build declined: the call
                            leaders = ()    # stops counting entirely
                            pc = new_pc
                            continue
                    entered = new_pc
                    new_pc = t2(stack, locals_, args, frame_base,
                                memory, self, entered)
                    if new_pc == entered:
                        counts[entered] = self._OSR_DISABLED
                    else:
                        self.osr_entries += 1
                        if deopted:
                            self.deopt_reentries += 1
                        deopted = new_pc >= 0
            pc = new_pc
        return pc

    def _run_metered(self, pc: int, raw, stack, locals_, args,
                     frame_base) -> int:
        """Per-instruction execution with exact fuel accounting — the
        fallback once a block-entry debit crosses the limit.  In
        practice it always ends in a trap within the current block."""
        memory = self.memory
        end = len(raw) - 1
        while pc >= 0:
            if pc >= end:
                # falling off the code end is not a counted instruction
                raw[end](stack, locals_, args, frame_base, memory, self)
            executed = self.instructions_executed + 1
            self.instructions_executed = executed
            if executed > self.fuel:
                raise TrapError("VM fuel exhausted")
            pc = raw[pc](stack, locals_, args, frame_base, memory, self)
        return pc

    # -- reference engine ------------------------------------------------------

    def _run(self, func: BytecodeFunction, args: List):
        code = func.code
        locals_: List = [_default(tag) for tag in func.local_types]
        stack: List = []
        frame_size = func.frame_size()
        frame_base = self.memory.push_frame(frame_size) if frame_size else 0
        slot_offsets = func.frame_offsets()
        memory = self.memory
        pc = 0

        try:
            while True:
                if pc >= len(code) or pc < 0:
                    raise TrapError(f"{func.name}: fell off code end")
                self.instructions_executed += 1
                if self.instructions_executed > self.fuel:
                    raise TrapError("VM fuel exhausted")
                instr = code[pc]
                op = instr.op

                if op == "ldloc":
                    stack.append(locals_[instr.arg])
                elif op == "ldarg":
                    stack.append(args[instr.arg])
                elif op == "stloc":
                    locals_[instr.arg] = stack.pop()
                elif op == "const":
                    stack.append(instr.arg)
                elif op in BIN_OPS:
                    b = stack.pop()
                    a = stack.pop()
                    stack.append(eval_binop(op, type_of(instr.ty), a, b))
                elif op == "cmp":
                    b = stack.pop()
                    a = stack.pop()
                    stack.append(eval_cmp(instr.arg, type_of(instr.ty),
                                          a, b))
                elif op in UN_OPS:
                    a = stack.pop()
                    stack.append(eval_unop(op, type_of(instr.ty), a))
                elif op == "cast":
                    a = stack.pop()
                    stack.append(eval_cast(a, type_of(instr.arg),
                                           type_of(instr.ty)))
                elif op == "select":
                    b = stack.pop()
                    a = stack.pop()
                    cond = stack.pop()
                    stack.append(a if cond != 0 else b)
                elif op == "load":
                    addr = stack.pop()
                    stack.append(memory.load(type_of(instr.ty), addr))
                elif op == "store":
                    value = stack.pop()
                    addr = stack.pop()
                    memory.store(type_of(instr.ty), addr, value)
                elif op == "frame":
                    stack.append(frame_base + slot_offsets[instr.arg])
                elif op == "br":
                    pc = instr.arg
                    continue
                elif op == "brif":
                    cond = stack.pop()
                    if cond != 0:
                        pc = instr.arg
                        continue
                elif op == "call":
                    callee = self.module.functions[instr.arg]
                    count = callee.num_params
                    call_args = stack[len(stack) - count:]
                    del stack[len(stack) - count:]
                    result = self._run(callee, call_args)
                    if callee.ret_type is not None:
                        stack.append(result)
                elif op == "ret":
                    if func.ret_type is not None:
                        return stack.pop()
                    return None
                elif op == "pop":
                    stack.pop()
                elif op == "vec.load":
                    addr = stack.pop()
                    elem = type_of(instr.ty)
                    lanes = 16 // ty.sizeof(elem)
                    stack.append(memory.load_vec(elem, lanes, addr))
                elif op == "vec.store":
                    value = stack.pop()
                    addr = stack.pop()
                    memory.store_vec(type_of(instr.ty), addr, value)
                elif op.startswith("vec.") and op[4:] in BIN_OPS:
                    b = stack.pop()
                    a = stack.pop()
                    stack.append(vec_binop(op[4:], type_of(instr.ty), a, b))
                elif op == "vec.splat":
                    scalar = stack.pop()
                    elem = type_of(instr.ty)
                    lanes = 16 // ty.sizeof(elem)
                    stack.append(vec_splat(scalar, lanes))
                elif op == "vec.reduce":
                    reduce_op, acc_tag = instr.arg
                    vec = stack.pop()
                    elem = type_of(instr.ty)
                    acc_ty = type_of(acc_tag)
                    widened = [eval_cast(lane, elem, acc_ty)
                               for lane in vec]
                    stack.append(vec_reduce(reduce_op, acc_ty, widened))
                else:
                    raise TrapError(f"unknown opcode {op!r}")
                pc += 1
        finally:
            if frame_size:
                self.memory.pop_frame(frame_base, frame_size)


def _default(tag: str):
    if is_vector_local(tag):
        elem = type_of(vector_elem_tag(tag))
        return [0] * (16 // ty.sizeof(elem))
    if tag in ("f32", "f64"):
        return 0.0
    return 0


def _coerce(tag: str, value):
    if is_vector_local(tag):
        return list(value)
    lang_ty = type_of(tag)
    if isinstance(lang_ty, ty.IntType):
        return ty.wrap_int(int(value), lang_ty)
    return round_float(float(value), lang_ty)
