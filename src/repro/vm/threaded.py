"""Predecoded, block-threaded execution core for the PVI VM.

The reference interpreter (``VM._run``) re-decodes every instruction
through a string if/elif ladder and re-dispatches every ALU op through
``isinstance`` checks.  This module translates a
:class:`~repro.bytecode.module.BytecodeFunction` **once** into a tuple
of specialized handler closures, resolving opcodes, operand types (as
:mod:`repro.semantics.kernels` kernels), immediates and frame offsets
at decode time.  Execution is a tight trampoline::

    while pc >= 0:
        pc = handlers[pc](stack, locals_, args, frame_base, memory, vm)

Two handler tiers exist:

* **Compiled blocks** — every *fuel block* (a maximal straight-line
  run ending at a branch, ``ret`` or ``call``) is compiled to one
  Python function: stack traffic inside the block collapses onto
  Python locals, and only kernel/memory operations remain as calls.
  Control transfers only ever land on block leaders, so the whole
  block executes (or traps) exactly as the reference would.
* **Raw per-instruction closures** — one per pc.  They back the
  *metered* fuel path and any block whose code generation bails
  (malformed instructions defer their error to execution time, like
  the reference engine).

Fuel is debited per block on entry.  Blocks execute linearly to their
terminator and calls end blocks, so successful runs produce exactly
the reference engine's per-instruction totals.  When a debit crosses
the limit the block re-runs instruction-by-instruction
(:class:`repro.engine.MeterTrip` -> ``VM._run_metered``), so the fuel
trap lands on precisely the instruction the reference engine traps on
— and an earlier non-fuel trap inside the block still wins.

The predecoded form is cached on the function object
(``BytecodeFunction.cached_predecode``) keyed by a structural content
token: VM construction stays cheap, and in-place code edits
invalidate by content.

When the module is *frozen* (``BytecodeModule.freeze()`` — the
offline compiler freezes everything it emits), ``call`` targets are
resolved once at predecode time: the callee function object, its
arity and return shape are bound directly into the handlers (per-call
inline caching), removing the per-call name lookup.  The cache
records the binding module, so a VM over a different module sharing
the same function object rebuilds instead of calling into the wrong
table, and content-token invalidation works unchanged.
"""

from __future__ import annotations

from typing import Callable, List

from repro.bytecode.module import (
    BytecodeFunction, is_vector_local, vector_elem_tag,
)
from repro.bytecode.opcodes import BIN_OPS, UN_OPS, type_of
from repro.engine import (
    CodegenEnv, MASK64_LITERAL, MeterTrip, fuel_blocks,
    normalize_branch_target,
)
from repro.lang import types as ty
from repro.semantics.errors import TrapError
from repro.semantics.kernels import (
    binop_kernel, cast_kernel, cmp_kernel, identity_kernel, unop_kernel,
    vec_binop_kernel,
)
from repro.semantics.memory import (
    NULL_GUARD, PACK_COERCE_ERRORS, scalar_struct, vector_struct,
)

#: handler-returned pc meaning "the function returned"
RETURN = -1

Handler = Callable


class PredecodedFunction:
    """One function's decoded form: block-compiled handlers at fuel
    block leaders, raw per-instruction handlers (the metered path),
    and the per-call initialization data."""

    __slots__ = ("token", "handlers", "raw", "frame_size",
                 "scalar_defaults", "vector_locals", "has_ret")

    def __init__(self, token, handlers, raw, frame_size,
                 scalar_defaults, vector_locals, has_ret):
        self.token = token
        self.handlers = handlers
        self.raw = raw
        self.frame_size = frame_size
        self.scalar_defaults = scalar_defaults
        self.vector_locals = vector_locals
        self.has_ret = has_ret


def predecode(func: BytecodeFunction,
              module=None) -> PredecodedFunction:
    """The (cached) predecoded form of ``func``.

    With a *frozen* ``module`` supplied, ``call`` targets are resolved
    once here — the callee function object, its arity and whether it
    returns a value are bound directly into the handlers (per-call
    inline caching) instead of being looked up per executed call.
    The cache records the binding module, and in-place code edits
    still invalidate via the existing content token.
    """
    binding = module if module is not None and \
        getattr(module, "frozen", False) else None
    token = func.content_token()
    cached = func.cached_predecode(token, binding)
    if cached is not None:
        return cached
    pre = _build(func, token, binding)
    func.store_predecode(token, pre, binding)
    return pre


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------

def _build(func: BytecodeFunction, token,
           binding=None) -> PredecodedFunction:
    code = func.code
    n = len(code)
    name = func.name
    frame_offsets = func.frame_offsets()

    def tail(s, lo, ar, fb, mem, vm):
        raise TrapError(f"{name}: fell off code end")

    raw: List[Handler] = [None] * (n + 1)
    raw[n] = tail
    for pc, instr in enumerate(code):
        try:
            raw[pc] = _make_raw_handler(pc, instr, frame_offsets, n,
                                        binding)
        except Exception as exc:        # malformed instruction: the
            # reference engine only fails when it *executes* it, so
            # defer the error to execution time
            def deferred(s, lo, ar, fb, mem, vm, _exc=exc):
                raise _exc
            raw[pc] = deferred

    handlers = list(raw)
    blocks = fuel_blocks(code)
    env = {"TrapError": TrapError, "MeterTrip": MeterTrip,
           "_PE": PACK_COERCE_ERRORS}
    sources = []
    compiled = {}
    for leader, length in blocks.items():
        try:
            sources.append(
                _gen_block(code, leader, length, frame_offsets, env,
                           binding))
            compiled[leader] = f"_b{leader}"
        except Exception:
            handlers[leader] = _interp_block(raw, leader, length)
    if sources:
        try:
            exec(compile("\n".join(sources), f"<pvi:{name}>", "exec"),
                 env)
            for leader, block_name in compiled.items():
                handlers[leader] = env[block_name]
        except Exception:       # defensive: a codegen bug must degrade
            # to the interpreted blocks, never break execution
            for leader in compiled:
                handlers[leader] = _interp_block(raw, leader,
                                                 blocks[leader])

    scalar_defaults: List = []
    vector_locals: List = []
    for index, tag in enumerate(func.local_types):
        if is_vector_local(tag):
            scalar_defaults.append(None)
            elem = type_of(vector_elem_tag(tag))
            vector_locals.append((index, 16 // ty.sizeof(elem)))
        elif tag in ("f32", "f64"):
            scalar_defaults.append(0.0)
        else:
            scalar_defaults.append(0)

    return PredecodedFunction(
        token, handlers, raw, func.frame_size(), scalar_defaults,
        vector_locals, func.ret_type is not None)


def _interp_block(raw, leader: int, length: int) -> Handler:
    """Fallback block handler: fuel debit + the raw closures, for
    blocks whose code generation bailed."""
    def block(s, lo, ar, fb, mem, vm):
        executed = vm.instructions_executed + length
        vm.instructions_executed = executed
        if executed > vm.fuel:
            vm.instructions_executed = executed - length
            raise MeterTrip(leader)
        pc = leader
        step = length - 1
        try:
            for step in range(length):
                pc = raw[pc](s, lo, ar, fb, mem, vm)
        except Exception:
            # roll the debit back to the trapping instruction
            vm.instructions_executed -= length - step - 1
            raise
        return pc
    return block


# ---------------------------------------------------------------------------
# block code generation
# ---------------------------------------------------------------------------

def _resolved_callee(binding, name):
    """The callee bound at predecode time, or ``None`` to fall back to
    the dynamic per-call lookup (no frozen module, or a call to a
    missing function — which must keep failing at execution time,
    exactly like the reference engine)."""
    if binding is None:
        return None
    return binding.functions.get(name)


def _gen_block(code, leader: int, length: int, frame_offsets,
               env_dict, binding=None) -> str:
    env = CodegenEnv(env_dict)
    lines: List[str] = []
    vstack: List[str] = []          # expressions for virtual stack slots
    counter = [0]

    def newt() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    def emit(text: str, indent: str = "") -> None:
        lines.append(indent + text)

    def push(expr: str) -> None:
        """Materialize ``expr`` now (order/side-effect preserving)."""
        t = newt()
        emit(f"{t} = {expr}")
        vstack.append(t)

    def push_atom(atom: str) -> None:
        """Defer a *pure* expression (const, frame address)."""
        vstack.append(atom)

    def pop() -> str:
        if vstack:
            return vstack.pop()
        t = newt()
        emit(f"{t} = s.pop()")
        return t

    def flush() -> None:
        for atom in vstack:
            emit(f"s.append({atom})")
        del vstack[:]

    def mask_addr(expr: str) -> str:
        t = newt()
        emit(f"{t} = ({expr}) & {MASK64_LITERAL}")
        return t

    def bounds(addr_var: str, size: int) -> None:
        emit(f"if {addr_var} < {NULL_GUARD} or "
             f"{addr_var} + {size} > mem.size:")
        emit('raise TrapError(f"memory access out of bounds: '
             'addr={' + addr_var + ':#x} size=' + str(size) + '")',
             "    ")

    exit_pc = leader + length

    for pc in range(leader, exit_pc):
        instr = code[pc]
        op = instr.op
        # Progress marker: if this instruction traps mid-block, the
        # except clause rolls the block-entry fuel debit back to
        # exactly the reference engine's per-instruction count.
        marker_at = len(lines)

        if op == "ldloc":
            push(f"lo[{instr.arg}]")
        elif op == "ldarg":
            push(f"ar[{instr.arg}]")
        elif op == "stloc":
            emit(f"lo[{instr.arg}] = {pop()}")
        elif op == "const":
            value = instr.arg
            if type(value) is int:
                push_atom(f"({value!r})")
            else:
                push_atom(env.bind(value, "c"))
        elif op in BIN_OPS:
            kernel = env.bind(binop_kernel(op, type_of(instr.ty)), "k")
            b = pop()
            a = pop()
            push(f"{kernel}({a}, {b})")
        elif op == "cmp":
            kernel = env.bind(cmp_kernel(instr.arg, type_of(instr.ty)),
                              "k")
            b = pop()
            a = pop()
            push(f"{kernel}({a}, {b})")
        elif op in UN_OPS:
            kernel = env.bind(unop_kernel(op, type_of(instr.ty)), "k")
            push(f"{kernel}({pop()})")
        elif op == "cast":
            kernel = cast_kernel(type_of(instr.arg), type_of(instr.ty))
            if kernel is not identity_kernel:    # elide no-op widenings
                push(f"{env.bind(kernel, 'k')}({pop()})")
        elif op == "select":
            b = pop()
            a = pop()
            cond = pop()
            push(f"({a}) if ({cond}) != 0 else ({b})")
        elif op == "load":
            packer = scalar_struct(type_of(instr.ty))
            unpack = env.bind(packer.unpack_from, "u")
            addr = mask_addr(pop())
            bounds(addr, packer.size)
            push(f"{unpack}(mem.data, {addr})[0]")
        elif op == "store":
            value_ty = type_of(instr.ty)
            packer = scalar_struct(value_ty)
            pack = env.bind(packer.pack_into, "p")
            if isinstance(value_ty, ty.IntType):
                coerce = env.bind(
                    lambda v, _t=value_ty: ty.wrap_int(int(v), _t), "w")
            else:
                coerce = "float"
            value = pop()
            addr = mask_addr(pop())
            bounds(addr, packer.size)
            emit("try:")
            emit(f"{pack}(mem.data, {addr}, {value})", "    ")
            emit("except _PE:")
            emit(f"{pack}(mem.data, {addr}, {coerce}({value}))", "    ")
        elif op == "frame":
            push_atom(f"(fb + {frame_offsets[instr.arg]})")
        elif op == "br":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            flush()
            emit(f"return {target}")
        elif op == "brif":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            cond = pop()
            flush()
            emit(f"return {target} if ({cond}) != 0 else {exit_pc}")
        elif op == "call":
            flush()
            resolved = _resolved_callee(binding, instr.arg)
            if resolved is not None:
                # Inline cache: the frozen module pins the callee, so
                # its identity, arity and return shape are constants.
                f = env.bind(resolved, "f")
                count = len(resolved.param_types)
                a, r = newt(), newt()
                if count:
                    emit(f"{a} = s[-{count}:]")
                    emit(f"del s[-{count}:]")
                else:
                    emit(f"{a} = []")
                emit(f"{r} = vm._run_fast({f}, {a})")
                if resolved.ret_type is not None:
                    emit(f"s.append({r})")
                emit(f"return {exit_pc}")
            else:
                callee = env.bind(instr.arg, "n")
                f, c, a, r = newt(), newt(), newt(), newt()
                emit(f"{f} = vm.module.functions[{callee}]")
                emit(f"{c} = len({f}.param_types)")
                emit(f"if {c}:")
                emit(f"{a} = s[-{c}:]", "    ")
                emit(f"del s[-{c}:]", "    ")
                emit("else:")
                emit(f"{a} = []", "    ")
                emit(f"{r} = vm._run_fast({f}, {a})")
                emit(f"if {f}.ret_type is not None:")
                emit(f"s.append({r})", "    ")
                emit(f"return {exit_pc}")
        elif op == "ret":
            flush()
            emit("return -1")
        elif op == "pop":
            if vstack:
                vstack.pop()
            else:
                emit("s.pop()")
        elif op == "vec.load":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            packer = vector_struct(elem, lanes)
            unpack = env.bind(packer.unpack_from, "u")
            addr = mask_addr(pop())
            bounds(addr, packer.size)
            push(f"list({unpack}(mem.data, {addr}))")
        elif op == "vec.store":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            packer = vector_struct(elem, lanes)
            pack = env.bind(packer.pack_into, "p")
            elem_name = env.bind(elem, "e")
            value = pop()
            addr = mask_addr(pop())
            emit(f"if len({value}) == {lanes} and {addr} >= {NULL_GUARD} "
                 f"and {addr} + {packer.size} <= mem.size:")
            emit("try:", "    ")
            emit(f"{pack}(mem.data, {addr}, *{value})", "        ")
            emit("except _PE:", "    ")
            emit(f"mem.store_vec({elem_name}, {addr}, {value})",
                 "        ")
            emit("else:")
            emit(f"mem.store_vec({elem_name}, {addr}, {value})", "    ")
        elif op.startswith("vec.") and op[4:] in BIN_OPS:
            kernel = env.bind(vec_binop_kernel(op[4:], type_of(instr.ty)),
                              "v")
            b = pop()
            a = pop()
            push(f"{kernel}({a}, {b})")
        elif op == "vec.splat":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            push(f"[{pop()}] * {lanes}")
        elif op == "vec.reduce":
            reduce_op, acc_tag = instr.arg
            if reduce_op not in ("add", "max", "min"):
                raise ValueError("undefined reduce op")   # -> fallback
            elem = type_of(instr.ty)
            acc_ty = type_of(acc_tag)
            widen = env.bind(cast_kernel(elem, acc_ty), "k")
            fold = env.bind(binop_kernel(reduce_op, acc_ty), "k")
            vec = pop()
            acc, lane = newt(), newt()
            emit(f"if not {vec}:")
            emit("raise TrapError('reduce of empty vector')", "    ")
            emit(f"{acc} = {widen}({vec}[0])")
            emit(f"for {lane} in {vec}[1:]:")
            emit(f"{acc} = {fold}({acc}, {widen}({lane}))", "    ")
            push_atom(acc)
        else:
            raise ValueError(f"unknown opcode {op!r}")    # -> fallback

        if len(lines) > marker_at:       # instruction emits real code
            lines.insert(marker_at, f"_i = {pc - leader}")

    if not lines or not lines[-1].lstrip().startswith("return"):
        flush()
        emit(f"return {exit_pc}")

    body = "\n".join("        " + line for line in lines)
    return (f"def _b{leader}(s, lo, ar, fb, mem, vm):\n"
            f"    executed = vm.instructions_executed + {length}\n"
            f"    vm.instructions_executed = executed\n"
            f"    if executed > vm.fuel:\n"
            f"        vm.instructions_executed = executed - {length}\n"
            f"        raise MeterTrip({leader})\n"
            f"    _i = {length - 1}\n"
            f"    try:\n"
            f"{body}\n"
            f"    except Exception:\n"
            f"        # roll the debit back to the trapping instruction\n"
            f"        vm.instructions_executed -= {length} - _i - 1\n"
            f"        raise\n")


# ---------------------------------------------------------------------------
# raw per-instruction handlers (metered path + codegen fallback)
# ---------------------------------------------------------------------------

def _make_raw_handler(pc: int, instr, frame_offsets,
                      n: int, binding=None) -> Handler:
    op = instr.op
    nxt = pc + 1

    if op == "ldloc":
        index = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            s.append(lo[index])
            return nxt
    elif op == "ldarg":
        index = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            s.append(ar[index])
            return nxt
    elif op == "stloc":
        index = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            lo[index] = s.pop()
            return nxt
    elif op == "const":
        value = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            s.append(value)
            return nxt
    elif op in BIN_OPS:
        kernel = binop_kernel(op, type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            s[-1] = kernel(s[-1], b)
            return nxt
    elif op == "cmp":
        kernel = cmp_kernel(instr.arg, type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            s[-1] = kernel(s[-1], b)
            return nxt
    elif op in UN_OPS:
        kernel = unop_kernel(op, type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = kernel(s[-1])
            return nxt
    elif op == "cast":
        kernel = cast_kernel(type_of(instr.arg), type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = kernel(s[-1])
            return nxt
    elif op == "select":
        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            a = s.pop()
            s[-1] = a if s[-1] != 0 else b
            return nxt
    elif op == "load":
        value_ty = type_of(instr.ty)

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = mem.load(value_ty, s[-1])
            return nxt
    elif op == "store":
        value_ty = type_of(instr.ty)

        def handler(s, lo, ar, fb, mem, vm):
            value = s.pop()
            mem.store(value_ty, s.pop(), value)
            return nxt
    elif op == "frame":
        offset = frame_offsets[instr.arg]

        def handler(s, lo, ar, fb, mem, vm):
            s.append(fb + offset)
            return nxt
    elif op == "br":
        target = normalize_branch_target(instr.arg, n)

        def handler(s, lo, ar, fb, mem, vm):
            return target
    elif op == "brif":
        target = normalize_branch_target(instr.arg, n)

        def handler(s, lo, ar, fb, mem, vm):
            return target if s.pop() != 0 else nxt
    elif op == "call":
        callee_name = instr.arg
        resolved = _resolved_callee(binding, callee_name)
        if resolved is not None:
            count = len(resolved.param_types)
            has_ret = resolved.ret_type is not None

            def handler(s, lo, ar, fb, mem, vm, _callee=resolved,
                        _count=count, _has_ret=has_ret):
                if _count:
                    call_args = s[-_count:]
                    del s[-_count:]
                else:
                    call_args = []
                result = vm._run_fast(_callee, call_args)
                if _has_ret:
                    s.append(result)
                return nxt
        else:
            def handler(s, lo, ar, fb, mem, vm):
                callee = vm.module.functions[callee_name]
                count = len(callee.param_types)
                if count:
                    call_args = s[-count:]
                    del s[-count:]
                else:
                    call_args = []
                result = vm._run_fast(callee, call_args)
                if callee.ret_type is not None:
                    s.append(result)
                return nxt
    elif op == "ret":
        def handler(s, lo, ar, fb, mem, vm):
            return RETURN
    elif op == "pop":
        def handler(s, lo, ar, fb, mem, vm):
            s.pop()
            return nxt
    elif op == "vec.load":
        elem = type_of(instr.ty)
        lanes = 16 // ty.sizeof(elem)

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = mem.load_vec(elem, lanes, s[-1])
            return nxt
    elif op == "vec.store":
        elem = type_of(instr.ty)

        def handler(s, lo, ar, fb, mem, vm):
            value = s.pop()
            mem.store_vec(elem, s.pop(), value)
            return nxt
    elif op.startswith("vec.") and op[4:] in BIN_OPS:
        kernel = vec_binop_kernel(op[4:], type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            s[-1] = kernel(s[-1], b)
            return nxt
    elif op == "vec.splat":
        elem = type_of(instr.ty)
        lanes = 16 // ty.sizeof(elem)

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = [s[-1]] * lanes
            return nxt
    elif op == "vec.reduce":
        reduce_op, acc_tag = instr.arg
        elem = type_of(instr.ty)
        acc_ty = type_of(acc_tag)
        widen = cast_kernel(elem, acc_ty)
        if reduce_op in ("add", "max", "min"):
            fold = binop_kernel(reduce_op, acc_ty)

            def handler(s, lo, ar, fb, mem, vm):
                vec = s[-1]
                if not vec:
                    raise TrapError("reduce of empty vector")
                acc = widen(vec[0])
                for lane in vec[1:]:
                    acc = fold(acc, widen(lane))
                s[-1] = acc
                return nxt
        else:
            def handler(s, lo, ar, fb, mem, vm):
                raise TrapError(f"reduce op {reduce_op!r} undefined")
    else:
        def handler(s, lo, ar, fb, mem, vm):
            raise TrapError(f"unknown opcode {op!r}")

    return handler
