"""Predecoded, block-threaded execution core for the PVI VM.

The reference interpreter (``VM._run``) re-decodes every instruction
through a string if/elif ladder and re-dispatches every ALU op through
``isinstance`` checks.  This module translates a
:class:`~repro.bytecode.module.BytecodeFunction` **once** into a tuple
of specialized handler closures, resolving opcodes, operand types (as
:mod:`repro.semantics.kernels` kernels), immediates and frame offsets
at decode time.  Execution is a tight trampoline::

    while pc >= 0:
        pc = handlers[pc](stack, locals_, args, frame_base, memory, vm)

Two handler tiers exist:

* **Compiled blocks** — every *fuel block* (a maximal straight-line
  run ending at a branch, ``ret`` or ``call``) is compiled to one
  Python function: stack traffic inside the block collapses onto
  Python locals, and only kernel/memory operations remain as calls.
  Control transfers only ever land on block leaders, so the whole
  block executes (or traps) exactly as the reference would.
* **Raw per-instruction closures** — one per pc.  They back the
  *metered* fuel path and any block whose code generation bails
  (malformed instructions defer their error to execution time, like
  the reference engine).

Fuel is debited per block on entry.  Blocks execute linearly to their
terminator and calls end blocks, so successful runs produce exactly
the reference engine's per-instruction totals.  When a debit crosses
the limit the block re-runs instruction-by-instruction
(:class:`repro.engine.MeterTrip` -> ``VM._run_metered``), so the fuel
trap lands on precisely the instruction the reference engine traps on
— and an earlier non-fuel trap inside the block still wins.

The predecoded form is cached on the function object
(``BytecodeFunction.cached_predecode``) keyed by a structural content
token: VM construction stays cheap, and in-place code edits
invalidate by content.

When the module is *frozen* (``BytecodeModule.freeze()`` — the
offline compiler freezes everything it emits), ``call`` targets are
resolved once at predecode time: the callee function object, its
arity and return shape are bound directly into the handlers (per-call
inline caching), removing the per-call name lookup.  The cache
records the binding module, so a VM over a different module sharing
the same function object rebuilds instead of calling into the wrong
table, and content-token invalidation works unchanged.
"""

from __future__ import annotations

import re
from typing import Callable, List

from repro.analysis.facts import bytecode_facts
from repro.bytecode.module import (
    BytecodeFunction, is_vector_local, vector_elem_tag,
)
from repro.bytecode.opcodes import BIN_OPS, UN_OPS, type_of
from repro.engine import (
    CodegenEnv, MASK64_LITERAL, MeterTrip, _ARITH_SYMS, _F32_QUAD,
    backedge_targets, fuel_blocks, inline_binop, inline_cast,
    inline_cmp, inline_unop, keep_osr_guards, normalize_branch_target,
)
from repro.lang import types as ty
from repro.semantics.errors import TrapError
from repro.semantics.kernels import (
    binop_kernel, cast_kernel, cmp_kernel, identity_kernel, unop_kernel,
    vec_binop_kernel,
)
from repro.semantics.memory import (
    NULL_GUARD, PACK_COERCE_ERRORS, scalar_struct, vector_struct,
)

#: handler-returned pc meaning "the function returned"
RETURN = -1

Handler = Callable


#: "tier-2 code not built yet" sentinel (distinct from None = "build
#: failed or declined; stay block-threaded")
_TIER2_UNBUILT = object()

#: tier-2 build-site accounting: ``warm`` builds happen off the hot
#: path (``warm_bytecode_module`` / the backend ``warm`` hook twin in
#: :mod:`repro.targets.dispatch`); ``request`` builds happen inside a
#: serving call.  A warmed image should keep the request bucket at
#: zero — the bench/CI stat that proves warming actually prepays
#: whole-function codegen.  ``facts_warm``/``facts_request`` count
#: fresh dataflow-plane analyses by the same build-site split (facts
#: provenance: a warmed image should also have its facts prepaid),
#: and ``guards_elided``/``guards_kept`` count OSR prologue fact
#: guards the analysis proved redundant (kept only under
#: ``PVI_OSR_GUARDS=1``).
TIER2_BUILDS = {"warm": 0, "request": 0,
                "facts_warm": 0, "facts_request": 0,
                "guards_elided": 0, "guards_kept": 0}


def tier2_build_stats() -> dict:
    """Copy of the tier-2 build-site counters (see TIER2_BUILDS)."""
    return dict(TIER2_BUILDS)


def reset_tier2_build_stats() -> None:
    for key in TIER2_BUILDS:
        TIER2_BUILDS[key] = 0


class PredecodedFunction:
    """One function's decoded form: block-compiled handlers at fuel
    block leaders, raw per-instruction handlers (the metered path),
    the per-call initialization data, and the lazily built tier-2
    whole-function translation."""

    __slots__ = ("token", "handlers", "raw", "frame_size",
                 "scalar_defaults", "vector_locals", "has_ret",
                 "tier2_hot", "osr_leaders", "_tier2", "_tier2_args")

    def __init__(self, token, handlers, raw, frame_size,
                 scalar_defaults, vector_locals, has_ret,
                 tier2_hot=False, osr_leaders=frozenset(),
                 tier2_args=(None, None)):
        self.token = token
        self.handlers = handlers
        self.raw = raw
        self.frame_size = frame_size
        self.scalar_defaults = scalar_defaults
        self.vector_locals = vector_locals
        self.has_ret = has_ret
        #: did the binding module's hotness annotations clear the
        #: adaptive threshold for this function?  (the default engine's
        #: tier-2 promotion gate; ``engine="tier2"`` ignores it)
        self.tier2_hot = tier2_hot
        #: back-edge target leaders — the candidate on-stack
        #: replacement entry points the trampoline counts visits at.
        #: The generated ``_t2`` carries its own (possibly narrower)
        #: entry whitelist and validates the snapshot itself; this set
        #: only gates whether counting is worth doing at all.
        self.osr_leaders = osr_leaders
        self._tier2 = _TIER2_UNBUILT
        self._tier2_args = tier2_args

    def tier2(self, warm: bool = False):
        """The whole-function tier-2 translation, built on first
        request and cached with the predecode (so it rides the same
        content-token invalidation).  ``None`` means the build failed
        or was declined — callers stay on the block-threaded tier.
        ``warm`` marks a build happening off the serving path (the
        warm hooks), for the build-site stats."""
        t2 = self._tier2
        if t2 is _TIER2_UNBUILT:
            func, binding = self._tier2_args
            if func is None:
                t2 = self._tier2 = None
            else:
                TIER2_BUILDS["warm" if warm else "request"] += 1
                t2 = self._tier2 = _build_tier2(func, binding,
                                                warm=warm)
            self._tier2_args = (None, None)
        return t2


def predecode(func: BytecodeFunction,
              module=None) -> PredecodedFunction:
    """The (cached) predecoded form of ``func``.

    With a *frozen* ``module`` supplied, ``call`` targets are resolved
    once here — the callee function object, its arity and whether it
    returns a value are bound directly into the handlers (per-call
    inline caching) instead of being looked up per executed call.
    The cache records the binding module, and in-place code edits
    still invalidate via the existing content token.
    """
    binding = module if module is not None and \
        getattr(module, "frozen", False) else None
    token = func.content_token()
    cached = func.cached_predecode(token, binding)
    if cached is not None:
        return cached
    pre = _build(func, token, binding, module)
    func.store_predecode(token, pre, binding)
    return pre


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------

def _build(func: BytecodeFunction, token, binding=None,
           module=None) -> PredecodedFunction:
    code = func.code
    n = len(code)
    name = func.name
    frame_offsets = func.frame_offsets()

    def tail(s, lo, ar, fb, mem, vm):
        raise TrapError(f"{name}: fell off code end")

    raw: List[Handler] = [None] * (n + 1)
    raw[n] = tail
    for pc, instr in enumerate(code):
        try:
            raw[pc] = _make_raw_handler(pc, instr, frame_offsets, n,
                                        binding)
        except Exception as exc:        # malformed instruction: the
            # reference engine only fails when it *executes* it, so
            # defer the error to execution time
            def deferred(s, lo, ar, fb, mem, vm, _exc=exc):
                raise _exc
            raw[pc] = deferred

    handlers = list(raw)
    blocks = fuel_blocks(code)
    env = {"TrapError": TrapError, "MeterTrip": MeterTrip,
           "_PE": PACK_COERCE_ERRORS}
    sources = []
    compiled = {}
    for leader, length in blocks.items():
        try:
            sources.append(
                _gen_block(code, leader, length, frame_offsets, env,
                           binding))
            compiled[leader] = f"_b{leader}"
        except Exception:
            handlers[leader] = _interp_block(raw, leader, length)
    if sources:
        try:
            exec(compile("\n".join(sources), f"<pvi:{name}>", "exec"),
                 env)
            for leader, block_name in compiled.items():
                handlers[leader] = env[block_name]
        except Exception:       # defensive: a codegen bug must degrade
            # to the interpreted blocks, never break execution
            for leader in compiled:
                handlers[leader] = _interp_block(raw, leader,
                                                 blocks[leader])

    scalar_defaults: List = []
    vector_locals: List = []
    for index, tag in enumerate(func.local_types):
        if is_vector_local(tag):
            scalar_defaults.append(None)
            elem = type_of(vector_elem_tag(tag))
            vector_locals.append((index, 16 // ty.sizeof(elem)))
        elif tag in ("f32", "f64"):
            scalar_defaults.append(0.0)
        else:
            scalar_defaults.append(0)

    return PredecodedFunction(
        token, handlers, raw, func.frame_size(), scalar_defaults,
        vector_locals, func.ret_type is not None,
        tier2_hot=_tier2_hot(func, module),
        osr_leaders=backedge_targets(code, blocks),
        tier2_args=(func, binding))


def warm_bytecode_module(module) -> None:
    """Predecode every function of a bytecode module and pre-build the
    tier-2 translation wherever a serving call could want it — the
    hotness-promoted functions and every OSR candidate (any function
    with a loop header).  The VM twin of
    :func:`repro.targets.dispatch.warm_module`: after this, calls
    never run whole-function codegen in-request
    (:func:`tier2_build_stats` proves it)."""
    for func in module.functions.values():
        pre = predecode(func, module)
        if pre.tier2_hot or pre.osr_leaders:
            pre.tier2(warm=True)


def _tier2_hot(func, module) -> bool:
    """Does the module's hotness profile promote ``func`` to tier 2?

    Unlike the online-analysis gate (where *unprofiled* counts as
    hot), tier-2 promotion requires an explicit annotation: whole-
    function translation is the one online stage expensive enough
    that we only spend it where the offline profile says it pays.
    """
    if module is None:
        return False
    weight = getattr(module, "max_hotness", lambda _n: None)(func.name)
    if weight is None:
        return False
    from repro.flows import ADAPTIVE_HOTNESS_THRESHOLD
    return weight >= ADAPTIVE_HOTNESS_THRESHOLD


def _interp_block(raw, leader: int, length: int) -> Handler:
    """Fallback block handler: fuel debit + the raw closures, for
    blocks whose code generation bailed."""
    def block(s, lo, ar, fb, mem, vm):
        executed = vm.instructions_executed + length
        vm.instructions_executed = executed
        if executed > vm.fuel:
            vm.instructions_executed = executed - length
            raise MeterTrip(leader)
        pc = leader
        step = length - 1
        try:
            for step in range(length):
                pc = raw[pc](s, lo, ar, fb, mem, vm)
        except Exception:
            # roll the debit back to the trapping instruction
            vm.instructions_executed -= length - step - 1
            raise
        return pc
    return block


# ---------------------------------------------------------------------------
# block code generation
# ---------------------------------------------------------------------------

def _resolved_callee(binding, name):
    """The callee bound at predecode time, or ``None`` to fall back to
    the dynamic per-call lookup (no frozen module, or a call to a
    missing function — which must keep failing at execution time,
    exactly like the reference engine)."""
    if binding is None:
        return None
    return binding.functions.get(name)


def _gen_block(code, leader: int, length: int, frame_offsets,
               env_dict, binding=None) -> str:
    env = CodegenEnv(env_dict)
    lines = _gen_block_lines(code, leader, length, frame_offsets, env,
                             binding)
    body = "\n".join("        " + line for line in lines)
    return (f"def _b{leader}(s, lo, ar, fb, mem, vm):\n"
            f"    executed = vm.instructions_executed + {length}\n"
            f"    vm.instructions_executed = executed\n"
            f"    if executed > vm.fuel:\n"
            f"        vm.instructions_executed = executed - {length}\n"
            f"        raise MeterTrip({leader})\n"
            f"    _i = {length - 1}\n"
            f"    try:\n"
            f"{body}\n"
            f"    except Exception:\n"
            f"        # roll the debit back to the trapping instruction\n"
            f"        vm.instructions_executed -= {length} - _i - 1\n"
            f"        raise\n")


_EMPTY_DEPS = frozenset()
_EMPTY_LANES: dict = {}

#: vstack meta for a wrapped-u64 inline result — feeding one into an
#: address slot skips the redundant 64-bit re-mask
_MASKED64_META = {"masked64": True}


def _scalar_meta(value_ty):
    if isinstance(value_ty, ty.IntType) and value_ty.bits == 64 \
            and not value_ty.signed:
        return _MASKED64_META
    return None


def _gen_block_lines(code, leader: int, length: int, frame_offsets,
                     env: CodegenEnv, binding=None,
                     local_fmt: str = "lo[{0}]",
                     goto_fmt: str = "return {0}",
                     ret_lines=("return -1",),
                     tier2: bool = False,
                     safe_args: int = 0,
                     tuple_locals: frozenset = _EMPTY_DEPS,
                     lane_locals: dict = _EMPTY_LANES,
                     info=None) -> List[str]:
    """Emit one fuel block's body as source lines.

    The same per-op lowering serves two tiers: the block-threaded
    engine (``local_fmt``/``goto_fmt`` defaults — locals stay in the
    ``lo`` list, transfers return the next leader to the trampoline)
    and the tier-2 whole-function compiler (locals lowered to Python
    locals, transfers assign ``pc`` inside the generated dispatcher,
    ``ret`` may need to flush a local fuel counter first).

    ``tier2`` additionally turns on the optimizations the trampoline
    tier cannot use: kernel calls inlined as expressions (see
    :func:`repro.engine.inline_binop`), pure values *deferred* on the
    virtual stack so statements fuse, ``mem.data``/``mem.size`` read
    from the dispatcher's hoisted ``_md``/``_ms`` locals, and the
    per-instruction ``_i`` progress marker emitted only before
    instructions that can actually raise (deferral tracks which local
    each pending expression reads, so a ``stloc`` materializes the
    values it would clobber).
    """
    lines: List[str] = []
    vstack: List[str] = []          # expressions for virtual stack slots
    vdeps: List[frozenset] = []     # local indices each deferred
    #                                 expression reads (temps: empty)
    vmeta: List = []                # static vector facts per slot, or
    #                                 None: {"lanes": k or None,
    #                                 "tuple": bool, "float": bool}
    local_meta: dict = {}           # tier-2: vector facts proven for a
    #                                 local by a ``stloc`` in this block
    counter = [0]
    impure = [False]                # current instruction emitted code
    #                                 that can raise (forces its marker)
    proven_bounds: set = set()      # (addr name, width) pairs already
    #                                 range-checked in this block, valid
    #                                 until the name is reassigned
    data = "_md" if tier2 else "mem.data"
    size = "_ms" if tier2 else "mem.size"

    def newt() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    def emit(text: str, indent: str = "") -> None:
        lines.append(indent + text)

    def push(expr: str, meta=None) -> None:
        """Materialize ``expr`` now (order/side-effect preserving)."""
        t = newt()
        emit(f"{t} = {expr}")
        vstack.append(t)
        vdeps.append(_EMPTY_DEPS)
        vmeta.append(meta)

    def push_atom(atom: str, deps: frozenset = _EMPTY_DEPS,
                  meta=None) -> None:
        """Defer a *pure* expression (const, frame address, or — in
        tier-2 — any inlined arithmetic that cannot raise)."""
        vstack.append(atom)
        vdeps.append(deps)
        vmeta.append(meta)

    def popm():
        """(expr, deps, meta) — the raw slot, tuple-ness visible only
        through ``meta``; callers that let the value escape to an
        engine-observable place must go through :func:`popd`."""
        if vstack:
            return vstack.pop(), vdeps.pop(), vmeta.pop()
        impure[0] = True            # s.pop() can IndexError
        t = newt()
        emit(f"{t} = s.pop()")
        return t, _EMPTY_DEPS, None

    def popd():
        """(expr, deps) with vector values normalized to lists —
        tier-2 keeps vec temporaries as tuples internally, but every
        value the reference engine could observe must be a list."""
        expr, deps, meta = popm()
        if meta is not None and meta.get("tuple"):
            expr = f"list({expr})"
        return expr, deps

    def pop() -> str:
        return popd()[0]

    def flush() -> None:
        for j, atom in enumerate(vstack):
            meta = vmeta[j]
            if meta is not None and meta.get("tuple"):
                atom = f"list({atom})"
            emit(f"s.append({atom})")
        del vstack[:]
        del vdeps[:]
        del vmeta[:]

    def spill_local(index: int) -> None:
        """A deferred expression still reads local ``index``:
        materialize it before the pending store clobbers the value it
        closed over."""
        for j, deps in enumerate(vdeps):
            if index in deps:
                t = newt()
                emit(f"{t} = {vstack[j]}")
                vstack[j] = t
                vdeps[j] = _EMPTY_DEPS

    def mask_addr(expr: str) -> str:
        t = newt()
        emit(f"{t} = ({expr}) & {MASK64_LITERAL}")
        return t

    def pop_addr() -> str:
        """Pop an address, skipping the 64-bit re-mask when the
        expression is a wrapped-u64 inline result (already in range)."""
        expr, _, meta = popm()
        if meta is not None and meta.get("masked64"):
            if expr.isidentifier():     # already a single-eval name
                return expr
            t = newt()
            emit(f"{t} = {expr}")
            return t
        if meta is not None and meta.get("tuple"):
            expr = f"list({expr})"      # same TypeError as the lists
        return mask_addr(expr)

    def bound_limit(size_bytes: int) -> str:
        """The upper-bound operand for a ``size_bytes`` access: the
        tier-2 dispatcher hoists ``_ms - size`` into a local, so the
        per-check add disappears from hot loops."""
        if tier2 and info is not None:
            info.setdefault("bounds_sizes", set()).add(size_bytes)
            return f"_ms{size_bytes}"
        return None

    def bounds(addr_var: str, size_bytes: int) -> None:
        if tier2 and (addr_var, size_bytes) in proven_bounds:
            # An earlier check in this block already raised on this
            # exact (address, width) pair and the address name has
            # not been reassigned since — re-checking is dead code.
            return
        limit = bound_limit(size_bytes)
        if limit is not None:
            emit(f"if {addr_var} < {NULL_GUARD} or "
                 f"{addr_var} > {limit}:")
        else:
            emit(f"if {addr_var} < {NULL_GUARD} or "
                 f"{addr_var} + {size_bytes} > {size}:")
        emit('raise TrapError(f"memory access out of bounds: '
             'addr={' + addr_var + ':#x} size=' + str(size_bytes) + '")',
             "    ")
        if tier2:
            proven_bounds.add((addr_var, size_bytes))

    exit_pc = leader + length

    for pc in range(leader, exit_pc):
        instr = code[pc]
        op = instr.op
        # Progress marker: if this instruction traps mid-block, the
        # except clause rolls the block-entry fuel debit back to
        # exactly the reference engine's per-instruction count.
        # Tier-2 elides the marker for instructions whose generated
        # code cannot raise.
        marker_at = len(lines)
        impure[0] = not tier2

        if op == "ldloc":
            if tier2:
                if instr.arg in local_meta:
                    meta = local_meta[instr.arg]
                elif instr.arg in tuple_locals:
                    # Some block keeps a vec tuple in this local; at
                    # entry we only know "possibly a tuple" — plus the
                    # lane count when every store preserves it.
                    meta = {"lanes": lane_locals.get(instr.arg),
                            "tuple": True, "float": False}
                elif instr.arg in lane_locals:
                    # Whole-function lane fact: the local starts as a
                    # fresh ``[0] * lanes`` vector and every ``stloc``
                    # anywhere keeps the count (see the fixed point in
                    # ``_gen_tier2``), so the length guard is proven.
                    meta = {"lanes": lane_locals[instr.arg],
                            "tuple": False, "float": False}
                else:
                    meta = None
                push_atom(local_fmt.format(instr.arg),
                          frozenset((instr.arg,)), meta=meta)
            else:
                push(local_fmt.format(instr.arg))
        elif op == "ldarg":
            if instr.arg < safe_args:
                # The dispatcher's entry guard proved ``ar`` holds at
                # least ``safe_args`` values, so the read cannot raise
                # — and hoisted it into local ``a{k}`` (args have no
                # store op, so the binding never goes stale).
                push_atom(f"a{instr.arg}")
            else:
                impure[0] = True    # short args IndexError here, like
                push(f"ar[{instr.arg}]")    # the reference's args[i]
        elif op == "stloc":
            value, _, meta = popm()
            if meta is not None and meta.get("tuple"):
                if tier2 and info is not None:
                    # Keep the tuple: the whole-function writeback
                    # normalizes tuple-bearing locals back to lists
                    # at every engine-observable boundary.
                    info["tuple_stores"].add(instr.arg)
                else:
                    value = f"list({value})"
                    meta = dict(meta, tuple=False)
            if tier2:
                if instr.arg in lane_locals and info is not None \
                        and (meta is None
                             or meta.get("lanes")
                             != lane_locals[instr.arg]):
                    # This store may change the lane count: the local
                    # loses its whole-function lane fact.
                    info["lane_breaks"].add(instr.arg)
                spill_local(instr.arg)
                local_meta[instr.arg] = meta
            target = local_fmt.format(instr.arg)
            proven_bounds.difference_update(
                {pb for pb in proven_bounds if pb[0] == target})
            if tier2 and lines and re.fullmatch(r"t\d+", value) \
                    and lines[-1].startswith(f"{value} = "):
                # The value is a single-use temp defined on the line
                # just emitted: fold the store into the defining
                # statement (the temp has no other reader — temps are
                # single-assignment and this ``stloc`` consumed its
                # only stack slot).  A trap while evaluating the
                # right-hand side still belongs to the defining
                # instruction's progress marker, exactly as before.
                lines[-1] = f"{target} = {lines[-1][len(value) + 3:]}"
            else:
                emit(f"{target} = {value}")
        elif op == "const":
            value = instr.arg
            if type(value) is int:
                push_atom(f"({value!r})")
            else:
                push_atom(env.bind(value, "c"))
        elif op in BIN_OPS:
            value_ty = type_of(instr.ty)
            tmpl = inline_binop(op, value_ty, env) if tier2 else None
            b, bdeps = popd()
            a, adeps = popd()
            if tmpl is not None:
                expr, pure = tmpl
                expr = expr.format(a=a, b=b)
                if pure:
                    push_atom(expr, adeps | bdeps,
                              meta=_scalar_meta(value_ty))
                else:
                    impure[0] = True
                    push(expr)
            else:
                impure[0] = True    # div/rem trap; fallback kernels too
                kernel = env.bind(binop_kernel(op, value_ty), "k")
                push(f"{kernel}({a}, {b})")
        elif op == "cmp":
            value_ty = type_of(instr.ty)
            tmpl = inline_cmp(instr.arg, value_ty) if tier2 else None
            b, bdeps = popd()
            a, adeps = popd()
            if tmpl is not None:
                push_atom(tmpl.format(a=a, b=b), adeps | bdeps)
            else:
                impure[0] = True    # undefined predicates trap
                kernel = env.bind(cmp_kernel(instr.arg, value_ty), "k")
                push(f"{kernel}({a}, {b})")
        elif op in UN_OPS:
            value_ty = type_of(instr.ty)
            tmpl = inline_unop(op, value_ty, env) if tier2 else None
            a, adeps = popd()
            if tmpl is not None:
                expr, pure = tmpl
                expr = expr.format(a=a)
                if pure:
                    push_atom(expr, adeps)
                else:
                    impure[0] = True
                    push(expr)
            else:
                impure[0] = True
                kernel = env.bind(unop_kernel(op, value_ty), "k")
                push(f"{kernel}({a})")
        elif op == "cast":
            from_ty = type_of(instr.arg)
            to_ty = type_of(instr.ty)
            kernel = cast_kernel(from_ty, to_ty)
            if kernel is not identity_kernel:    # elide no-op widenings
                tmpl = inline_cast(from_ty, to_ty, env) if tier2 \
                    else None
                a, adeps = popd()
                if tmpl is not None:
                    expr, pure = tmpl
                    expr = expr.format(a=a)
                    if pure:
                        push_atom(expr, adeps,
                                  meta=_scalar_meta(to_ty))
                    else:
                        impure[0] = True
                        push(expr)
                else:
                    impure[0] = True
                    push(f"{env.bind(kernel, 'k')}({a})")
        elif op == "select":
            b, bdeps = popd()
            a, adeps = popd()
            cond, cdeps = popd()
            expr = f"({a}) if ({cond}) != 0 else ({b})"
            if tier2:
                push_atom(expr, adeps | bdeps | cdeps)
            else:
                push(expr)
        elif op == "load":
            impure[0] = True
            packer = scalar_struct(type_of(instr.ty))
            unpack = env.bind(packer.unpack_from, "u")
            addr = pop_addr()
            bounds(addr, packer.size)
            push(f"{unpack}({data}, {addr})[0]")
        elif op == "store":
            impure[0] = True
            value_ty = type_of(instr.ty)
            packer = scalar_struct(value_ty)
            pack = env.bind(packer.pack_into, "p")
            if isinstance(value_ty, ty.IntType):
                coerce = env.bind(
                    lambda v, _t=value_ty: ty.wrap_int(int(v), _t), "w")
            else:
                coerce = "float"
            value = pop()
            addr = pop_addr()
            bounds(addr, packer.size)
            emit("try:")
            emit(f"{pack}({data}, {addr}, {value})", "    ")
            emit("except _PE:")
            emit(f"{pack}({data}, {addr}, {coerce}({value}))", "    ")
        elif op == "frame":
            push_atom(f"(fb + {frame_offsets[instr.arg]})")
        elif op == "br":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            flush()
            emit(goto_fmt.format(target))
        elif op == "brif":
            target = normalize_branch_target(instr.arg, len(code))
            if not isinstance(target, int):
                raise ValueError("non-integer branch target")  # -> raw
            cond = pop()
            flush()
            # An inlined comparison pushes ``(1 if X else 0)``; testing
            # that against zero is just ``X``.
            folded = re.fullmatch(r"\(1 if (.+) else 0\)", cond)
            test = folded.group(1) if folded else f"({cond}) != 0"
            emit(goto_fmt.format(
                f"{target} if {test} else {exit_pc}"))
        elif op == "call":
            impure[0] = True
            flush()
            resolved = _resolved_callee(binding, instr.arg)
            if resolved is not None:
                # Inline cache: the frozen module pins the callee, so
                # its identity, arity and return shape are constants.
                f = env.bind(resolved, "f")
                count = len(resolved.param_types)
                a, r = newt(), newt()
                if count:
                    emit(f"{a} = s[-{count}:]")
                    emit(f"del s[-{count}:]")
                else:
                    emit(f"{a} = []")
                emit(f"{r} = vm._run_fast({f}, {a})")
                if resolved.ret_type is not None:
                    emit(f"s.append({r})")
                emit(goto_fmt.format(exit_pc))
            else:
                callee = env.bind(instr.arg, "n")
                f, c, a, r = newt(), newt(), newt(), newt()
                emit(f"{f} = vm.module.functions[{callee}]")
                emit(f"{c} = len({f}.param_types)")
                emit(f"if {c}:")
                emit(f"{a} = s[-{c}:]", "    ")
                emit(f"del s[-{c}:]", "    ")
                emit("else:")
                emit(f"{a} = []", "    ")
                emit(f"{r} = vm._run_fast({f}, {a})")
                emit(f"if {f}.ret_type is not None:")
                emit(f"s.append({r})", "    ")
                emit(goto_fmt.format(exit_pc))
        elif op == "ret":
            flush()
            for line in ret_lines:
                emit(line)
        elif op == "pop":
            if vstack:
                vstack.pop()
                vdeps.pop()
                vmeta.pop()
            else:
                impure[0] = True
                emit("s.pop()")
        elif op == "vec.load":
            impure[0] = True
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            packer = vector_struct(elem, lanes)
            unpack = env.bind(packer.unpack_from, "u")
            addr = pop_addr()
            bounds(addr, packer.size)
            if tier2:
                # Keep the unpacked tuple: downstream lane-wise
                # consumers read it directly, and ``popd``/``flush``
                # re-list it wherever the value becomes observable.
                push(f"{unpack}({data}, {addr})",
                     meta={"lanes": lanes, "tuple": True,
                           "float": isinstance(elem, ty.FloatType)})
            else:
                push(f"list({unpack}({data}, {addr}))")
        elif op == "vec.store":
            impure[0] = True
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            packer = vector_struct(elem, lanes)
            pack = env.bind(packer.pack_into, "p")
            elem_name = env.bind(elem, "e")
            value, _, meta = popm()
            static4 = meta is not None and meta.get("lanes") == lanes
            proven_float = static4 and meta.get("float") \
                and isinstance(elem, ty.FloatType)
            # Store-pack fusion: when the value being stored is an
            # inlined f32 quad result whose defining line was emitted
            # just above (``X = qu(qp(lane exprs))``), the store packs
            # the raw lane expressions directly — ``pack`` applies the
            # identical <4f> rounding, so the stored bytes match the
            # round-tripped tuple bit for bit.  The local (if any)
            # then reads its rounded lanes back out of memory, and the
            # out-of-bounds arm recomputes the tuple before trapping,
            # keeping the deopt writeback value intact.
            fused_rhs = cores = None
            if tier2 and proven_float and lines:
                fold = re.fullmatch(
                    rf"{re.escape(value)} = "
                    rf"(qu\d+)\((qp\d+)\((.+)\)\)", lines[-1])
                if fold is not None:
                    cores = fold.group(3)
                    fused_rhs = f"{fold.group(1)}({fold.group(2)}" \
                        f"({cores}))"
                    lines.pop()
                    marker_at = min(marker_at, len(lines))
            addr = pop_addr()
            if tier2 and static4 \
                    and (addr, packer.size) in proven_bounds:
                # A raise-check in this block already proved this
                # exact (address, width) in range: the store's guard
                # is always true and its out-of-bounds arm is dead.
                if cores is not None:
                    emit(f"{pack}({data}, {addr}, {cores})")
                    if re.fullmatch(r"l\d+", value):
                        readback = env.bind(packer.unpack_from, "u")
                        emit(f"{value} = {readback}({data}, {addr})")
                elif proven_float:
                    emit(f"{pack}({data}, {addr}, *{value})")
                else:
                    emit("try:")
                    emit(f"{pack}({data}, {addr}, *{value})", "    ")
                    emit("except _PE:")
                    emit(f"mem.store_vec({elem_name}, {addr}, "
                         f"{value})", "    ")
            else:
                limit = bound_limit(packer.size)
                upper = f"{addr} <= {limit}" if limit is not None \
                    else f"{addr} + {packer.size} <= {size}"
                guard = "" if static4 \
                    else f"len({value}) == {lanes} and "
                emit(f"if {guard}{addr} >= {NULL_GUARD} and {upper}:")
                if cores is not None:
                    emit(f"{pack}({data}, {addr}, {cores})", "    ")
                    if re.fullmatch(r"l\d+", value):
                        readback = env.bind(packer.unpack_from, "u")
                        emit(f"{value} = {readback}({data}, {addr})",
                             "    ")
                    emit("else:")
                    emit(f"{value} = {fused_rhs}", "    ")
                    emit(f"mem.store_vec({elem_name}, {addr}, "
                         f"{value})", "    ")
                elif proven_float:
                    # Lanes produced by the same pack/unpack round
                    # trip the store would apply — already genuine
                    # in-range floats, so the coercion fallback is
                    # unreachable.
                    emit(f"{pack}({data}, {addr}, *{value})", "    ")
                    emit("else:")
                    emit(f"mem.store_vec({elem_name}, {addr}, "
                         f"{value})", "    ")
                else:
                    emit("try:", "    ")
                    emit(f"{pack}({data}, {addr}, *{value})",
                         "        ")
                    emit("except _PE:", "    ")
                    emit(f"mem.store_vec({elem_name}, {addr}, "
                         f"{value})", "        ")
                    emit("else:")
                    emit(f"mem.store_vec({elem_name}, {addr}, "
                         f"{value})", "    ")
        elif op.startswith("vec.") and op[4:] in BIN_OPS:
            impure[0] = True            # lane-count mismatch traps
            bop = op[4:]
            elem = type_of(instr.ty)
            kernel = env.bind(vec_binop_kernel(bop, elem), "v")
            if not (tier2 and isinstance(elem, ty.FloatType)
                    and elem.bits == 32
                    and bop in ("add", "sub", "mul", "min", "max")):
                b = pop()
                a = pop()
                push(f"{kernel}({a}, {b})")
            else:
                # Inline the 4-lane f32 kernel: raw lane results, one
                # <4f> pack/unpack round trip — exactly the quad
                # kernel's arithmetic, minus the call.  Operands whose
                # lane count the block hasn't proven guard into the
                # kernel (generic lanes, exact mismatch trap).
                b, _, bm = popm()
                a, _, am = popm()
                # Fuse a just-materialized 4-lane temp (typically a
                # vec.load's unpack) straight into the lane unpack —
                # the temp's defining line is dropped and its pure
                # right-hand side moves to the point of use.  Only
                # single-use *temps* fuse: a local whose store
                # happens to be the last emitted line must keep that
                # line, because the local outlives this use (deopt
                # writeback, later blocks).  Only proven-4-lane
                # operands fuse (never re-evaluated by a guard).
                for operand, m in ((b, bm), (a, am)):
                    if m is not None and m.get("lanes") == 4 \
                            and lines \
                            and re.fullmatch(r"t\d+", operand) \
                            and lines[-1].startswith(f"{operand} = "):
                        fusedexpr = f"({lines.pop()[len(operand) + 3:]})"
                        if operand == b:
                            b = fusedexpr
                        else:
                            a = fusedexpr
                        marker_at -= 1
                quad = env.bind(_F32_QUAD.pack, "qp"), \
                    env.bind(_F32_QUAD.unpack, "qu")
                sym = _ARITH_SYMS.get(bop)
                if sym:
                    cores = ", ".join(f"_a{i} {sym} _b{i}"
                                      for i in range(4))
                else:
                    cores = ", ".join(f"{bop}(_a{i}, _b{i})"
                                      for i in range(4))
                guards = [f"len({operand}) == 4"
                          for operand, m in ((a, am), (b, bm))
                          if m is None or m.get("lanes") != 4]
                result = newt()
                pad = ""
                if guards:
                    emit(f"if {' and '.join(guards)}:")
                    pad = "    "
                emit(f"_a0, _a1, _a2, _a3 = {a}", pad)
                emit(f"_b0, _b1, _b2, _b3 = {b}", pad)
                emit(f"{result} = {quad[1]}({quad[0]}({cores}))", pad)
                if guards:
                    emit("else:")
                    emit(f"{result} = {kernel}({a}, {b})", "    ")
                vstack.append(result)
                vdeps.append(_EMPTY_DEPS)
                # With a 4-lane operand the kernel fallback can only
                # trap (lane mismatch), so any value that flows past
                # this op has 4 lanes; only when both operands are
                # dynamic can the generic path yield other counts.
                proven = len(guards) < 2
                vmeta.append({"lanes": 4 if proven else None,
                              "tuple": True, "float": True})
        elif op == "vec.splat":
            elem = type_of(instr.ty)
            lanes = 16 // ty.sizeof(elem)
            x, xdeps = popd()
            if tier2:
                push_atom(f"([{x}] * {lanes})", xdeps,
                          meta={"lanes": lanes, "tuple": False,
                                "float": False})
            else:
                push(f"[{x}] * {lanes}")
        elif op == "vec.reduce":
            impure[0] = True            # empty-vector trap
            reduce_op, acc_tag = instr.arg
            if reduce_op not in ("add", "max", "min"):
                raise ValueError("undefined reduce op")   # -> fallback
            elem = type_of(instr.ty)
            acc_ty = type_of(acc_tag)
            widen_kernel = cast_kernel(elem, acc_ty)
            widen_tpl = fold_tpl = None
            if tier2:
                if widen_kernel is identity_kernel:
                    widen_tpl = ("{a}", True)
                else:
                    widen_tpl = inline_cast(elem, acc_ty, env)
                fold_tpl = inline_binop(reduce_op, acc_ty, env)
            vec = popm()[0]             # tuples index/iterate the same
            acc, lane = newt(), newt()
            emit(f"if not {vec}:")
            emit("raise TrapError('reduce of empty vector')", "    ")
            if widen_tpl is not None and widen_tpl[1] \
                    and fold_tpl is not None and fold_tpl[1]:
                # Inline the whole fold: no kernel call per lane.
                wexpr = widen_tpl[0]
                emit(f"{acc} = {wexpr.format(a=f'{vec}[0]')}")
                emit(f"for {lane} in {vec}[1:]:")
                emit(f"{acc} = "
                     f"{fold_tpl[0].format(a=acc, b=wexpr.format(a=lane))}",
                     "    ")
            else:
                widen = env.bind(widen_kernel, "k")
                fold = env.bind(binop_kernel(reduce_op, acc_ty), "k")
                emit(f"{acc} = {widen}({vec}[0])")
                emit(f"for {lane} in {vec}[1:]:")
                emit(f"{acc} = {fold}({acc}, {widen}({lane}))", "    ")
            push_atom(acc)
        else:
            raise ValueError(f"unknown opcode {op!r}")    # -> fallback

        if len(lines) > marker_at and impure[0]:
            if tier2 and info is not None:
                # Tier-2 keeps the hot path marker-free: the caller
                # builds a source-line -> instruction-offset table
                # from these records and the except clause maps the
                # trapping line back through the exception traceback.
                info.setdefault("marks", []).append(
                    (marker_at, pc - leader))
            else:
                lines.insert(marker_at, f"_i = {pc - leader}")

    if code[exit_pc - 1].op not in ("br", "brif", "ret", "call"):
        # fall-through block: transfer to the next leader explicitly
        flush()
        emit(goto_fmt.format(exit_pc))
    return lines


# ---------------------------------------------------------------------------
# tier-2: whole-function translation
# ---------------------------------------------------------------------------
#
# One generated Python function covers every fuel block of the
# function: a ``while 1`` dispatcher over block leaders, VM locals
# lowered to Python locals, and the same per-op lowering as the
# block tier (shared via ``_gen_block_lines``).  The contract matches
# a block handler exactly — ``_t2(s, lo, ar, fb, mem, vm) -> pc`` —
# so the trampoline in ``VM._run_fast`` can treat its return value
# like any block's:
#
# * ``-1``   — the function returned (result flushed onto ``s``);
# * leader pc — a *deopt*: a fuel debit would cross the limit, or the
#   block resisted translation.  The tier-2 code writes its lowered
#   locals back into ``lo``, leaves the block **undebited** and hands
#   the leader to the block-threaded trampoline, which re-debits and
#   (on fuel exhaustion) meters per instruction — so instruction
#   counts and trap messages stay byte-identical to the reference.
#
# Fuel accounting comes in two shapes: functions containing calls
# keep ``vm.instructions_executed`` live at every block debit (the
# callee's debits must interleave with the caller's exactly as
# per-instruction accounting would), while call-free functions carry
# the counter in a local and flush it on every exit path.

def _build_tier2(func: BytecodeFunction, binding=None,
                 warm: bool = False):
    """Compile the whole-function tier-2 form of ``func``, or ``None``
    when the translation fails to build — a build failure is never an
    execution failure, callers just stay on the block-threaded tier.

    The lane/tuple/bounds facts come from the dataflow plane
    (:func:`repro.analysis.facts.bytecode_facts`); a function the
    plane declines gets no tier-2 at all."""
    facts, fresh = bytecode_facts(func, binding)
    if fresh:
        TIER2_BUILDS["facts_warm" if warm else "facts_request"] += 1
    if facts is None:
        return None
    try:
        source, env = _gen_tier2(func, binding, facts)
        exec(compile(source, f"<pvi-t2:{func.name}>", "exec"), env)
        t2 = env["_t2"]
        #: the per-leader entry whitelist, for introspection/tests
        t2.osr_entries = env.get("_OSR_ENTRIES", frozenset())
        t2.guards_elided = env.get("_GUARDS_ELIDED", 0)
        t2.guards_kept = env.get("_GUARDS_KEPT", 0)
        TIER2_BUILDS["guards_elided"] += t2.guards_elided
        TIER2_BUILDS["guards_kept"] += t2.guards_kept
        return t2
    except Exception:
        return None


def _gen_tier2(func: BytecodeFunction, binding=None, facts=None):
    """Source + exec environment for the tier-2 translation, under the
    proven facts of the dataflow plane (computed here when the caller
    has none; raises if the plane declines the function)."""
    code = func.code
    n = len(code)
    frame_offsets = func.frame_offsets()
    env_dict = {"TrapError": TrapError, "_PE": PACK_COERCE_ERRORS}
    env = CodegenEnv(env_dict)
    blocks = fuel_blocks(code)
    nlocals = len(func.local_types)
    has_calls = any(instr.op == "call" for instr in code)

    load_locals = "; ".join(f"l{i} = lo[{i}]" for i in range(nlocals))
    writeback = ["; ".join(f"lo[{i}] = l{i}" for i in range(nlocals))] \
        if nlocals else []
    if has_calls:
        counter_flush = []
        ret_lines = ("return -1",)
    else:
        counter_flush = ["vm.instructions_executed = executed"]
        ret_lines = ("vm.instructions_executed = executed", "return -1")

    out: List[str] = []

    def w(line: str, indent: int = 0) -> None:
        out.append(" " * indent + line)

    num_params = len(func.param_types)

    # Loop blocks head the dispatch ladder: every block inside a
    # back-edge span (the leaders a loop iterates over) is checked
    # before the straight-line entry/exit blocks, so iterations match
    # on the first arms instead of scanning the whole elif chain once
    # per transfer (which made short-block loops slower than the
    # trampoline's O(1) handler indexing).
    hot = set()
    for src, instr in enumerate(code):
        if instr.op in ("br", "brif") and isinstance(instr.arg, int) \
                and 0 <= instr.arg <= src:
            hot.update(b for b in blocks if instr.arg <= b <= src)
    ordered = [b for b in blocks if b in hot] \
        + [b for b in blocks if b not in hot]

    # Pre-translate every block; an untranslatable block keeps no
    # dispatch arm — its leader falls through to the else arm, a
    # per-block deopt point.  The two whole-function facts the blocks
    # are generated under — locals that may ever hold a deferred vec
    # *tuple*, and vector locals whose lane count every ``stloc``
    # provably preserves — used to be re-discovered here by
    # regenerating all blocks to a fixed point; they now come proven
    # from the dataflow plane (``repro.analysis.passes.lane_fixpoint``
    # runs the same abstract meta rules to the same fixpoint), so one
    # generation pass suffices.  The pass still records what it sees,
    # and any disagreement with the facts (a drift bug between emitter
    # and analysis) aborts the build rather than risk a miscompile.
    if facts is None:
        facts, _ = bytecode_facts(func, binding)
        if facts is None:
            raise ValueError(
                f"analysis declined {func.name!r}; no tier-2 facts")
    tuple_locals = facts.tuple_locals
    lane_locals = dict(facts.lane_locals)
    bodies = {}
    marks_by = {}
    info = {"tuple_stores": set(), "lane_breaks": set()}
    for leader in blocks:
        try:
            bodies[leader] = _gen_block_lines(
                code, leader, blocks[leader], frame_offsets, env,
                binding, local_fmt="l{0}", goto_fmt="pc = {0}",
                ret_lines=ret_lines, tier2=True,
                safe_args=num_params, tuple_locals=tuple_locals,
                lane_locals=lane_locals, info=info)
        except Exception:
            bodies[leader] = None
        marks_by[leader] = info.pop("marks", [])
    if info["lane_breaks"] or not info["tuple_stores"] <= tuple_locals \
            or not info.get("bounds_sizes", set()) <= facts.access_widths:
        raise ValueError(
            f"dataflow facts for {func.name!r} disagree with codegen")

    # Deopt writeback: tuple-bearing locals normalize back to lists
    # at every engine-observable boundary — the block tier and the
    # reference only ever store lists in the frame.
    if tuple_locals:
        writeback = ["; ".join(
            f"lo[{i}] = list(l{i}) if type(l{i}) is tuple else l{i}"
            if i in tuple_locals else f"lo[{i}] = l{i}"
            for i in range(nlocals))]

    # Two-block natural loops — a header ending in ``brif`` and a
    # lone latch ending in ``br header`` — run as a native ``while``
    # inside the header's dispatch arm, so loop iterations pay no
    # dispatch at all.  Fuel checks, debits and deopt returns stay
    # per block, byte-identical to the ladder form.  (Any *other*
    # entry into a fused latch lands in the else arm — a deopt,
    # correct but slower; real loop latches have no such entries.)
    loops = {}
    dropped = set()
    for src, instr in enumerate(code):
        if instr.op != "br" or not isinstance(instr.arg, int):
            continue
        header = instr.arg
        if header not in blocks or header > src:
            continue
        latch = max(b for b in blocks if b <= src)
        if latch == header or src != latch + blocks[latch] - 1:
            continue
        hbody, lbody = bodies.get(header), bodies.get(latch)
        if not hbody or not lbody or lbody[-1] != f"pc = {header}":
            continue
        branch = re.fullmatch(r"pc = (\d+) if (.+) else (\d+)",
                              hbody[-1])
        if branch is None:
            continue
        taken, fall = int(branch.group(1)), int(branch.group(3))
        if taken == fall or latch not in (taken, fall):
            continue
        if header in loops:
            dropped.add(header)     # two latches: keep the ladder form
        loops[header] = (latch, branch.group(2), taken, fall)
    for header in dropped:
        del loops[header]
    loops = {header: entry for header, entry in loops.items()
             if header not in {e[0] for e in loops.values()}
             and entry[0] not in loops}
    fused_latches = {entry[0] for entry in loops.values()}

    # On-stack replacement entry points: translated back-edge targets
    # (loop headers) outside fused latches.  The trampoline may call
    # ``_t2`` with ``pc`` at one of these, handing over the live
    # block-tier frame mid-call; the prologue below re-establishes
    # every entered-once fact from that snapshot or declines the
    # entry by returning ``pc`` untouched (nothing debited, nothing
    # written — the block tier just continues).
    osr_entries = frozenset(
        t for t in backedge_targets(code, blocks)
        if bodies.get(t) and t not in fused_latches)
    env_dict["_OSR_ENTRIES"] = osr_entries

    w("def _t2(s, lo, ar, fb, mem, vm, pc=0):")
    if num_params:
        # Entry arity guard: deopt (undebited, before touching any
        # state) when the caller passed fewer args than the signature
        # names, so the block tier raises the reference's IndexError
        # on exactly the right ``ldarg``.  Past the guard, every
        # in-signature ``ar[k]`` read is provably safe, which lets the
        # emitter defer them as pure expressions.
        w(f"if len(ar) < {num_params}:", 4)
        w("return pc", 8)
        w("; ".join(f"a{k} = ar[{k}]" for k in range(num_params)), 4)
    w("fuel = vm.fuel", 4)
    w("_md = mem.data; _ms = mem.size", 4)
    bounds_sizes = sorted(facts.access_widths)
    if bounds_sizes:
        # Bounds-check upper limits, hoisted: ``mem.size`` is already
        # proven loop-invariant across ``_t2`` (``_ms``), so each
        # access width's limit folds to one compare per check.  The
        # widths are the analysis plane's ``access_widths`` fact — a
        # superset of what this pass's checks reference (proven
        # ``vec.store`` forms skip the re-check entirely).
        w("; ".join(f"_ms{n} = _ms - {n}" for n in bounds_sizes), 4)
    if load_locals:
        w(load_locals, 4)
    # OSR entry guard: only whitelisted leaders may enter mid-call.
    # The lane facts are whole-function invariants over *every*
    # ``stloc`` — the analysis proves them for any state the block
    # tier can hand over (it only ever stores plain lists, and a
    # partially executed block ends the call rather than reach a
    # leader) — so the per-entry re-checks the prologue used to emit
    # are always true and are elided.  ``PVI_OSR_GUARDS=1`` keeps
    # them (differential escape hatch: both modes must observe
    # byte-identical runs); either way the counts are surfaced in
    # ``tier2_build_stats()``.
    if osr_entries:
        osr_name = env.bind(osr_entries, "osr")
        lane_checks = " and ".join(
            f"type(l{index}) is list and len(l{index}) == {lanes}"
            for index, lanes in sorted(lane_locals.items()))
        if lane_checks and keep_osr_guards():
            env_dict["_GUARDS_KEPT"] = len(lane_locals)
        elif lane_checks:
            env_dict["_GUARDS_ELIDED"] = len(lane_locals)
            lane_checks = ""
        w("if pc:", 4)
        if lane_checks:
            w(f"if pc not in {osr_name} or not ({lane_checks}):", 8)
        else:
            w(f"if pc not in {osr_name}:", 8)
        w("return pc", 12)
    else:
        w("if pc:", 4)
        w("return pc", 8)
    if not has_calls:
        w("executed = vm.instructions_executed", 4)
    w("while 1:", 4)

    def emit_deopt(leader: int, base: int) -> None:
        for line in writeback:
            w(line, base)
        if not has_calls:
            w("vm.instructions_executed = executed", base)
        w(f"return {leader}", base)

    def emit_body(leader: int, base: int, body, marks) -> None:
        """Block body at indent ``base``.  A block with no marks has
        no instruction that can raise — no rollback handler at all.
        Otherwise the body runs under one ``try`` whose except clause
        maps the trapping *source line* (via the exception traceback)
        back to the instruction offset whose progress marker would
        have been active there — the hot path stays free of the
        per-instruction ``_i`` stores the block tier pays."""
        length = blocks[leader]
        if not marks:
            for line in body:
                w(line, base)
            return
        owners = []
        position, active = 0, length - 1
        for index in range(len(body)):
            while position < len(marks) and marks[position][0] <= index:
                active = marks[position][1]
                position += 1
            owners.append(active)
        table = {}
        w("try:", base)
        for index, line in enumerate(body):
            table[len(out) + 1] = owners[index]
            w(line, base + 4)
        name = env.bind(table, "lm")
        w("except Exception as _e:", base)
        # roll the debit back to the trapping instruction, exactly
        # like the block tier's except clause
        w(f"_i = {name}.get(_e.__traceback__.tb_lineno, "
          f"{length - 1})", base + 4)
        if has_calls:
            w(f"vm.instructions_executed -= {length} - _i - 1",
              base + 4)
        else:
            w("vm.instructions_executed = "
              f"executed - ({length} - _i - 1)", base + 4)
        w("raise", base + 4)

    def emit_block(leader: int, base: int, body, marks) -> None:
        """Fuel check + (possibly trap-mapped) body at ``base``."""
        length = blocks[leader]
        if has_calls:
            w(f"executed = vm.instructions_executed + {length}", base)
            w("if executed > fuel:", base)
            emit_deopt(leader, base + 4)
            w("vm.instructions_executed = executed", base)
        else:
            w(f"executed += {length}", base)
            w("if executed > fuel:", base)
            w(f"executed -= {length}", base + 4)
            emit_deopt(leader, base + 4)
        emit_body(leader, base, body, marks)

    keyword = "if"
    for leader in ordered:
        body = bodies[leader]
        if body is None or leader in fused_latches:
            continue
        w(f"{keyword} pc == {leader}:", 8)
        keyword = "elif"
        if leader not in loops:
            emit_block(leader, 12, body, marks_by[leader])
            continue
        latch, cond, taken, fall = loops[leader]
        if latch == taken:
            exit_test, exit_target = f"not ({cond})", fall
        else:
            exit_test, exit_target = cond, taken
        header_len, latch_len = blocks[leader], blocks[latch]
        w("while 1:", 12)
        if not has_calls and len(body) == 1 and not marks_by[leader]:
            # Empty-header loop (the condition is one pure deferred
            # expression): both block debits merge into one charge at
            # the loop top.  Exit refunds the latch's share, and when
            # the merged charge crosses the fuel limit the loop falls
            # back to the ladder's per-block debit order — so deopt
            # pcs, fuel traps and final counts stay byte-identical.
            w(f"executed += {header_len + latch_len}", 16)
            w("if executed > fuel:", 16)
            w(f"executed -= {header_len + latch_len}", 20)
            w(f"executed += {header_len}", 20)
            w("if executed > fuel:", 20)
            w(f"executed -= {header_len}", 24)
            emit_deopt(leader, 24)
            w(f"if {exit_test}:", 20)
            w(f"pc = {exit_target}", 24)
            w("break", 24)
            w(f"executed += {latch_len}", 20)
            w("if executed > fuel:", 20)
            w(f"executed -= {latch_len}", 24)
            emit_deopt(latch, 24)
            w(f"elif {exit_test}:", 16)
            w(f"executed -= {latch_len}", 20)
            w(f"pc = {exit_target}", 20)
            w("break", 20)
            emit_body(latch, 16, bodies[latch][:-1], marks_by[latch])
        else:
            # The header's terminal branch becomes the loop exit; the
            # latch's terminal ``pc = header`` becomes the implicit
            # back edge.
            exits = [f"if {exit_test}:", f"    pc = {exit_target}",
                     "    break"]
            emit_block(leader, 16, body[:-1] + exits,
                       marks_by[leader])
            emit_block(latch, 16, bodies[latch][:-1],
                       marks_by[latch])

    fell = env.bind(f"{func.name}: fell off code end", "m")
    w(f"{keyword} pc == {n}:", 8)
    for line in counter_flush:
        w(line, 12)
    w(f"raise TrapError({fell})", 12)
    w("else:", 8)
    for line in writeback:
        w(line, 12)
    for line in counter_flush:
        w(line, 12)
    w("return pc", 12)

    return "\n".join(out), env_dict


# ---------------------------------------------------------------------------
# raw per-instruction handlers (metered path + codegen fallback)
# ---------------------------------------------------------------------------

def _make_raw_handler(pc: int, instr, frame_offsets,
                      n: int, binding=None) -> Handler:
    op = instr.op
    nxt = pc + 1

    if op == "ldloc":
        index = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            s.append(lo[index])
            return nxt
    elif op == "ldarg":
        index = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            s.append(ar[index])
            return nxt
    elif op == "stloc":
        index = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            lo[index] = s.pop()
            return nxt
    elif op == "const":
        value = instr.arg

        def handler(s, lo, ar, fb, mem, vm):
            s.append(value)
            return nxt
    elif op in BIN_OPS:
        kernel = binop_kernel(op, type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            s[-1] = kernel(s[-1], b)
            return nxt
    elif op == "cmp":
        kernel = cmp_kernel(instr.arg, type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            s[-1] = kernel(s[-1], b)
            return nxt
    elif op in UN_OPS:
        kernel = unop_kernel(op, type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = kernel(s[-1])
            return nxt
    elif op == "cast":
        kernel = cast_kernel(type_of(instr.arg), type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = kernel(s[-1])
            return nxt
    elif op == "select":
        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            a = s.pop()
            s[-1] = a if s[-1] != 0 else b
            return nxt
    elif op == "load":
        value_ty = type_of(instr.ty)

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = mem.load(value_ty, s[-1])
            return nxt
    elif op == "store":
        value_ty = type_of(instr.ty)

        def handler(s, lo, ar, fb, mem, vm):
            value = s.pop()
            mem.store(value_ty, s.pop(), value)
            return nxt
    elif op == "frame":
        offset = frame_offsets[instr.arg]

        def handler(s, lo, ar, fb, mem, vm):
            s.append(fb + offset)
            return nxt
    elif op == "br":
        target = normalize_branch_target(instr.arg, n)

        def handler(s, lo, ar, fb, mem, vm):
            return target
    elif op == "brif":
        target = normalize_branch_target(instr.arg, n)

        def handler(s, lo, ar, fb, mem, vm):
            return target if s.pop() != 0 else nxt
    elif op == "call":
        callee_name = instr.arg
        resolved = _resolved_callee(binding, callee_name)
        if resolved is not None:
            count = len(resolved.param_types)
            has_ret = resolved.ret_type is not None

            def handler(s, lo, ar, fb, mem, vm, _callee=resolved,
                        _count=count, _has_ret=has_ret):
                if _count:
                    call_args = s[-_count:]
                    del s[-_count:]
                else:
                    call_args = []
                result = vm._run_fast(_callee, call_args)
                if _has_ret:
                    s.append(result)
                return nxt
        else:
            def handler(s, lo, ar, fb, mem, vm):
                callee = vm.module.functions[callee_name]
                count = len(callee.param_types)
                if count:
                    call_args = s[-count:]
                    del s[-count:]
                else:
                    call_args = []
                result = vm._run_fast(callee, call_args)
                if callee.ret_type is not None:
                    s.append(result)
                return nxt
    elif op == "ret":
        def handler(s, lo, ar, fb, mem, vm):
            return RETURN
    elif op == "pop":
        def handler(s, lo, ar, fb, mem, vm):
            s.pop()
            return nxt
    elif op == "vec.load":
        elem = type_of(instr.ty)
        lanes = 16 // ty.sizeof(elem)

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = mem.load_vec(elem, lanes, s[-1])
            return nxt
    elif op == "vec.store":
        elem = type_of(instr.ty)

        def handler(s, lo, ar, fb, mem, vm):
            value = s.pop()
            mem.store_vec(elem, s.pop(), value)
            return nxt
    elif op.startswith("vec.") and op[4:] in BIN_OPS:
        kernel = vec_binop_kernel(op[4:], type_of(instr.ty))

        def handler(s, lo, ar, fb, mem, vm):
            b = s.pop()
            s[-1] = kernel(s[-1], b)
            return nxt
    elif op == "vec.splat":
        elem = type_of(instr.ty)
        lanes = 16 // ty.sizeof(elem)

        def handler(s, lo, ar, fb, mem, vm):
            s[-1] = [s[-1]] * lanes
            return nxt
    elif op == "vec.reduce":
        reduce_op, acc_tag = instr.arg
        elem = type_of(instr.ty)
        acc_ty = type_of(acc_tag)
        widen = cast_kernel(elem, acc_ty)
        if reduce_op in ("add", "max", "min"):
            fold = binop_kernel(reduce_op, acc_ty)

            def handler(s, lo, ar, fb, mem, vm):
                vec = s[-1]
                if not vec:
                    raise TrapError("reduce of empty vector")
                acc = widen(vec[0])
                for lane in vec[1:]:
                    acc = fold(acc, widen(lane))
                s[-1] = acc
                return nxt
        else:
            def handler(s, lo, ar, fb, mem, vm):
                raise TrapError(f"reduce op {reduce_op!r} undefined")
    else:
        def handler(s, lo, ar, fb, mem, vm):
            raise TrapError(f"unknown opcode {op!r}")

    return handler
