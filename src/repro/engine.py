"""Execution-engine selection for the VM and the target simulators.

Three engines execute everything in this reproduction:

* ``fast`` (the default) — predecode + closure threading: a one-time
  per-function pass translates the code into a tuple of specialized
  handler closures (opcode, types and operand locations resolved at
  decode time), fed by the type-specialized semantics kernels of
  :mod:`repro.semantics.kernels`.  Functions carrying a hotness
  annotation that clears the adaptive threshold (or an explicit
  ``JITOptions(tier2=True)`` hint) are additionally promoted to the
  tier-2 whole-function compiler below.  Independently of call-entry
  promotion, on-stack replacement (``PVI_OSR``, on by default) lets a
  call already spinning in the block tier enter the tier-2
  translation at a hot loop header — see DESIGN.md §2c.
* ``tier2`` — whole-function translation: the fuel blocks of a
  function are lowered into one generated Python function (virtual
  stack / register file in Python locals, block transfers as real
  control flow), compiled once and cached on the predecoded form.
  Anything the emitter cannot prove deopts back to the block-threaded
  engine at the enclosing block leader, with identical instruction
  and cycle counts.  Selecting ``tier2`` as *the* engine forces the
  promotion for every function (the differential suite runs this way);
  under ``fast`` only hinted functions are promoted.
* ``reference`` — the original string-ladder interpreters
  (``VM._run`` / ``Simulator._call``), kept verbatim as the semantic
  oracle.  The differential suite asserts byte-identical values,
  traps and cycle/instruction counts across all engines.

The process-wide default comes from the ``PVI_ENGINE`` environment
variable; ``VM(..., engine=...)`` and ``Simulator(..., engine=...)``
override it per instance.
"""

from __future__ import annotations

import os
import struct
from typing import Optional

FAST = "fast"
REFERENCE = "reference"
TIER2 = "tier2"
ENGINES = (FAST, REFERENCE, TIER2)

#: environment variable naming the process-wide default engine
ENGINE_ENV = "PVI_ENGINE"

#: environment gate for predecoding JIT output eagerly at compile time
JIT_PREDECODE_ENV = "PVI_JIT_PREDECODE"

#: environment gate for on-stack replacement (default: enabled)
OSR_ENV = "PVI_OSR"

#: environment override for the OSR back-edge promotion threshold
OSR_THRESHOLD_ENV = "PVI_OSR_THRESHOLD"

#: environment gate forcing the tier-2 OSR prologues to keep the
#: per-entry fact guards the static analysis has proven redundant
OSR_GUARDS_ENV = "PVI_OSR_GUARDS"

#: back-edge visits at one leader before a call is promoted mid-loop
DEFAULT_OSR_THRESHOLD = 64


def default_engine() -> str:
    """The engine named by ``PVI_ENGINE`` (``fast`` when unset)."""
    value = os.environ.get(ENGINE_ENV, "").strip().lower()
    if not value:
        return FAST
    if value in ENGINES:
        return value
    raise ValueError(f"{ENGINE_ENV} must be one of {ENGINES}, "
                     f"got {value!r}")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Validate an explicit engine choice; ``None`` means the
    process-wide default."""
    if engine is None:
        return default_engine()
    if engine in ENGINES:
        return engine
    raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


def predecode_at_jit() -> bool:
    """Should the JIT warm the machine-code predecode cache eagerly at
    compile time?  Off by default: predecode is lazy and cached on the
    function object, so the first simulation pays it exactly once per
    image anyway — eager warming only moves that cost onto the cold
    compile path (latency-sensitive deployments that want decode-free
    first dispatch opt in, or call ``repro.targets.warm_module``)."""
    value = os.environ.get(JIT_PREDECODE_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def osr_enabled() -> bool:
    """Is on-stack replacement on for the fast engines?  On by
    default: a call spinning in the block-threaded tier promotes into
    the tier-2 translation at a hot loop header instead of finishing
    the whole call there (and a deopted call can re-enter the same
    way).  ``PVI_OSR=0`` turns the policy off process-wide;
    ``VM(..., osr=...)`` / ``Simulator(..., osr=...)`` override per
    instance.  Purely a speed policy — instruction/cycle counts and
    traps are identical either way."""
    value = os.environ.get(OSR_ENV, "").strip().lower()
    return value not in ("0", "false", "no", "off")


def keep_osr_guards() -> bool:
    """Should tier-2 OSR prologues keep the per-entry fact guards?

    Off by default: the dataflow plane (:mod:`repro.analysis`) proves
    the facts those guards re-checked — vector-local lane counts for
    the VM, must-written registers for the simulator — hold at *every*
    block-tier program point, so the checks are always true and the
    prologue elides them (counted in ``tier2_build_stats()`` as
    ``guards_elided``).  ``PVI_OSR_GUARDS=1`` keeps the guards
    (counted as ``guards_kept``) — a differential escape hatch: both
    modes must produce byte-identical observations."""
    value = os.environ.get(OSR_GUARDS_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on", "keep")


def osr_threshold() -> int:
    """Back-edge visits at a single loop header before the running
    call enters tier-2 there.  Counters reset on every entry, so a
    loop that keeps deopting re-pays the threshold between attempts —
    bounding ping-pong overhead to ``1/threshold``."""
    value = os.environ.get(OSR_THRESHOLD_ENV, "").strip()
    if not value:
        return DEFAULT_OSR_THRESHOLD
    threshold = int(value)
    if threshold < 1:
        raise ValueError(f"{OSR_THRESHOLD_ENV} must be >= 1, "
                         f"got {threshold}")
    return threshold


class MeterTrip(Exception):
    """Internal to the fast engines: a block-entry fuel debit crossed
    the limit.  The dispatch loop catches it and re-executes the block
    instruction-by-instruction (the *metered* path), so the fuel trap
    lands on exactly the instruction the reference engine would have
    trapped on — and an earlier non-fuel trap inside the block still
    wins, as it would per-instruction."""

    def __init__(self, pc: int):
        super().__init__(pc)
        self.pc = pc


# ---------------------------------------------------------------------------
# shared predecode machinery (used by repro.vm.threaded and
# repro.targets.dispatch — one copy, so the fuel-block partitioning
# and the debit/rollback pattern can never drift between the engines)
# ---------------------------------------------------------------------------

#: 64-bit address mask literal for generated code
MASK64_LITERAL = "0xFFFFFFFFFFFFFFFF"


def fuel_blocks(code) -> dict:
    """leader pc -> block length over a flat instruction list.

    Fuel blocks are maximal straight-line runs: they end at branches,
    ``ret`` *and* ``call`` (inclusive), so a callee's fuel debits
    interleave with the caller's exactly as per-instruction accounting
    would.  Both instruction forms use ``op``/``arg`` identically for
    the ops that matter here.
    """
    n = len(code)
    leaders = {0}
    for index, instr in enumerate(code):
        op = instr.op
        if op in ("br", "brif"):
            target = instr.arg
            if isinstance(target, int) and 0 <= target < n:
                leaders.add(target)
            leaders.add(index + 1)
        elif op in ("ret", "call"):
            leaders.add(index + 1)
    ordered = sorted(leader for leader in leaders if leader < n)
    lengths = {}
    for position, leader in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) else n
        lengths[leader] = end - leader
    return lengths


def backedge_targets(code, blocks) -> frozenset:
    """Block leaders targeted by a backward branch — the loop headers
    a running call may on-stack-replace at.  Shared by both fast
    engines so the candidate sets can never drift."""
    targets = set()
    for src, instr in enumerate(code):
        if instr.op in ("br", "brif") and isinstance(instr.arg, int) \
                and 0 <= instr.arg <= src:
            targets.add(instr.arg)
    return frozenset(targets & set(blocks))


class CodegenEnv:
    """Names codegen-time constants into an exec environment."""

    def __init__(self, env: dict):
        self.env = env

    def bind(self, value, prefix: str = "g") -> str:
        name = f"{prefix}{len(self.env)}"
        self.env[name] = value
        return name


# ---------------------------------------------------------------------------
# tier-2 inline expression templates
# ---------------------------------------------------------------------------
#
# The tier-2 whole-function compilers replace semantics-kernel *calls*
# with the kernel's arithmetic inlined as a Python expression wherever
# the result is provably identical for every input — including the
# wrap/sign-decode of out-of-range operands, and IEEE unordered-NaN
# comparison results, which Python's own comparison operators share.
# Ops with trap semantics (integer div/rem, unknown predicates) and
# float division (IEEE zero-divide special cases) keep the kernel
# call.  Templates carry ``{a}``/``{b}`` operand slots; the second
# element of each result marks expressions that cannot raise (f32
# results round through the same struct pack as the kernel, which can
# overflow on absurd inputs, so they stay marked impure).

#: the f32 rounding round-trip the scalar kernels use
_F32_ROUND = struct.Struct("<f")

#: the 4-lane batch round trip the quad vec kernels use
_F32_QUAD = struct.Struct("<4f")

_ARITH_SYMS = {"add": "+", "sub": "-", "mul": "*"}
_BIT_SYMS = {"and": "&", "or": "|", "xor": "^"}
_CMP_SYMS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
             "gt": ">", "ge": ">="}


def _int_wrap(core: str, int_ty) -> str:
    """Wrap ``core`` into ``int_ty``'s range exactly like the kernels:
    mask, then sign-decode via the xor trick for signed types."""
    mask = (1 << int_ty.bits) - 1
    if int_ty.signed:
        sign = 1 << (int_ty.bits - 1)
        return f"(((({core}) & {mask}) ^ {sign}) - {sign})"
    return f"(({core}) & {mask})"


def inline_binop(op: str, value_ty, env: "CodegenEnv"):
    """``(template, pure)`` inlining the binop kernel for
    ``value_ty``, or ``None`` when the op must stay a kernel call."""
    from repro.lang import types as ty
    if isinstance(value_ty, ty.IntType):
        mask = (1 << value_ty.bits) - 1
        sm = value_ty.bits - 1
        if op in _ARITH_SYMS:
            return _int_wrap(f"{{a}} {_ARITH_SYMS[op]} {{b}}",
                             value_ty), True
        if op in _BIT_SYMS:
            core = f"({{a}} & {mask}) {_BIT_SYMS[op]} ({{b}} & {mask})"
            if value_ty.signed:
                return _int_wrap(core, value_ty), True
            return f"({core})", True       # masked operands: in range
        if op == "shl":
            return _int_wrap(f"{{a}} << ({{b}} & {sm})", value_ty), True
        if op == "shr":
            if value_ty.signed:
                return _int_wrap(f"{{a}} >> ({{b}} & {sm})",
                                 value_ty), True
            return f"(({{a}} & {mask}) >> ({{b}} & {sm}))", True
        if op in ("min", "max"):
            return _int_wrap(f"{op}({{a}}, {{b}})", value_ty), True
        return None                        # div/rem trap on zero
    if isinstance(value_ty, ty.FloatType):
        if op in _ARITH_SYMS:
            core = f"{{a}} {_ARITH_SYMS[op]} {{b}}"
        elif op in ("min", "max"):
            core = f"{op}({{a}}, {{b}})"
        else:
            return None                    # div: IEEE special cases
        if value_ty.bits == 32:
            p = env.bind(_F32_ROUND.pack, "p")
            u = env.bind(_F32_ROUND.unpack, "u")
            return f"{u}({p}({core}))[0]", False
        return f"({core})", True
    return None


def inline_cmp(pred: str, value_ty):
    """A pure template inlining the cmp kernel, or ``None`` for
    predicates the kernel traps on."""
    from repro.lang import types as ty
    sym = _CMP_SYMS.get(pred)
    if sym is None:
        return None
    if isinstance(value_ty, ty.IntType) and not value_ty.signed:
        mask = (1 << value_ty.bits) - 1
        return (f"(1 if (({{a}}) & {mask}) {sym} (({{b}}) & {mask}) "
                f"else 0)")
    # Signed ints compare directly; Python float comparisons share
    # IEEE's unordered-NaN results (all False except ``!=``), exactly
    # the kernel's NaN handling.
    return f"(1 if ({{a}}) {sym} ({{b}}) else 0)"


def inline_cast(from_ty, to_ty, env: "CodegenEnv"):
    """``(template, pure)`` inlining a non-identity cast kernel, or
    ``None`` (float->int keeps the kernel: NaN/inf special cases)."""
    from repro.lang import types as ty
    if isinstance(to_ty, ty.IntType):
        if isinstance(from_ty, ty.IntType):
            return _int_wrap("{a}", to_ty), True
        return None
    if not isinstance(to_ty, ty.FloatType):
        return None
    if to_ty.bits == 32:
        p = env.bind(_F32_ROUND.pack, "p")
        u = env.bind(_F32_ROUND.unpack, "u")
        return f"{u}({p}(float({{a}})))[0]", False
    return "(float({a}))", False       # float(huge int) can overflow


def inline_unop(op: str, value_ty, env: "CodegenEnv"):
    """``(template, pure)`` inlining the unop kernel, or ``None``."""
    from repro.lang import types as ty
    if isinstance(value_ty, ty.IntType):
        if op == "neg":
            return _int_wrap("-({a})", value_ty), True
        if op == "not":
            return _int_wrap("~({a})", value_ty), True
        return None
    if op != "neg" or not isinstance(value_ty, ty.FloatType):
        return None
    if value_ty.bits == 32:
        p = env.bind(_F32_ROUND.pack, "p")
        u = env.bind(_F32_ROUND.unpack, "u")
        return f"{u}({p}(-({{a}})))[0]", False
    return "(-({a}))", True


def normalize_branch_target(target, n: int):
    """Clamp an out-of-range branch target to ``n`` (the tail handler,
    which raises the fell-off-code-end trap).

    Machine code has no verifier, so malformed targets must not slip
    through the fast engine's ``pc >= 0`` dispatch check: a negative
    target would silently end the call and a target past the tail
    would IndexError.  Both reference ladders trap out-of-range pcs
    with "fell off code end", so redirecting to the tail preserves
    exact trap parity.  Non-int targets pass through untouched — they
    fail at dispatch time in both engines.
    """
    if isinstance(target, int) and not 0 <= target <= n:
        return n
    return target
