"""Execution-engine selection for the VM and the target simulators.

Two engines execute everything in this reproduction:

* ``fast`` (the default) — predecode + closure threading: a one-time
  per-function pass translates the code into a tuple of specialized
  handler closures (opcode, types and operand locations resolved at
  decode time), fed by the type-specialized semantics kernels of
  :mod:`repro.semantics.kernels`.
* ``reference`` — the original string-ladder interpreters
  (``VM._run`` / ``Simulator._call``), kept verbatim as the semantic
  oracle.  The differential suite asserts byte-identical values,
  traps and cycle/instruction counts between the two.

The process-wide default comes from the ``PVI_ENGINE`` environment
variable; ``VM(..., engine=...)`` and ``Simulator(..., engine=...)``
override it per instance.
"""

from __future__ import annotations

import os
from typing import Optional

FAST = "fast"
REFERENCE = "reference"
ENGINES = (FAST, REFERENCE)

#: environment variable naming the process-wide default engine
ENGINE_ENV = "PVI_ENGINE"

#: environment gate for predecoding JIT output eagerly at compile time
JIT_PREDECODE_ENV = "PVI_JIT_PREDECODE"


def default_engine() -> str:
    """The engine named by ``PVI_ENGINE`` (``fast`` when unset)."""
    value = os.environ.get(ENGINE_ENV, "").strip().lower()
    if not value:
        return FAST
    if value in ENGINES:
        return value
    raise ValueError(f"{ENGINE_ENV} must be one of {ENGINES}, "
                     f"got {value!r}")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Validate an explicit engine choice; ``None`` means the
    process-wide default."""
    if engine is None:
        return default_engine()
    if engine in ENGINES:
        return engine
    raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


def predecode_at_jit() -> bool:
    """Should the JIT warm the machine-code predecode cache eagerly at
    compile time?  Off by default: predecode is lazy and cached on the
    function object, so the first simulation pays it exactly once per
    image anyway — eager warming only moves that cost onto the cold
    compile path (latency-sensitive deployments that want decode-free
    first dispatch opt in, or call ``repro.targets.warm_module``)."""
    value = os.environ.get(JIT_PREDECODE_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


class MeterTrip(Exception):
    """Internal to the fast engines: a block-entry fuel debit crossed
    the limit.  The dispatch loop catches it and re-executes the block
    instruction-by-instruction (the *metered* path), so the fuel trap
    lands on exactly the instruction the reference engine would have
    trapped on — and an earlier non-fuel trap inside the block still
    wins, as it would per-instruction."""

    def __init__(self, pc: int):
        super().__init__(pc)
        self.pc = pc


# ---------------------------------------------------------------------------
# shared predecode machinery (used by repro.vm.threaded and
# repro.targets.dispatch — one copy, so the fuel-block partitioning
# and the debit/rollback pattern can never drift between the engines)
# ---------------------------------------------------------------------------

#: 64-bit address mask literal for generated code
MASK64_LITERAL = "0xFFFFFFFFFFFFFFFF"


def fuel_blocks(code) -> dict:
    """leader pc -> block length over a flat instruction list.

    Fuel blocks are maximal straight-line runs: they end at branches,
    ``ret`` *and* ``call`` (inclusive), so a callee's fuel debits
    interleave with the caller's exactly as per-instruction accounting
    would.  Both instruction forms use ``op``/``arg`` identically for
    the ops that matter here.
    """
    n = len(code)
    leaders = {0}
    for index, instr in enumerate(code):
        op = instr.op
        if op in ("br", "brif"):
            target = instr.arg
            if isinstance(target, int) and 0 <= target < n:
                leaders.add(target)
            leaders.add(index + 1)
        elif op in ("ret", "call"):
            leaders.add(index + 1)
    ordered = sorted(leader for leader in leaders if leader < n)
    lengths = {}
    for position, leader in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) else n
        lengths[leader] = end - leader
    return lengths


class CodegenEnv:
    """Names codegen-time constants into an exec environment."""

    def __init__(self, env: dict):
        self.env = env

    def bind(self, value, prefix: str = "g") -> str:
        name = f"{prefix}{len(self.env)}"
        self.env[name] = value
        return name


def normalize_branch_target(target, n: int):
    """Clamp an out-of-range branch target to ``n`` (the tail handler,
    which raises the fell-off-code-end trap).

    Machine code has no verifier, so malformed targets must not slip
    through the fast engine's ``pc >= 0`` dispatch check: a negative
    target would silently end the call and a target past the tail
    would IndexError.  Both reference ladders trap out-of-range pcs
    with "fell off code end", so redirecting to the tail preserves
    exact trap parity.  Non-int targets pass through untouched — they
    fail at dispatch time in both engines.
    """
    if isinstance(target, int) and not 0 <= target <= n:
        return n
    return target
